"""The pod scheduler: predicates + priorities, like kube-scheduler.

Filtering (predicates)
    node is Ready, node selector matches, and the pod's total resource
    requests fit in the node's free allocatable capacity.

Scoring (priorities)
    ``LEAST_ALLOCATED`` (default, spreads load), ``MOST_ALLOCATED``
    (bin-packs), or ``BALANCED`` (minimises the CPU/memory utilisation skew).

The scheduler is event-driven: every Pod or Node change triggers a scheduling
pass over the pending queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cluster.apiserver import ApiServer, WatchEvent
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.quantity import Quantity

__all__ = [
    "SchedulingPolicy",
    "Scheduler",
    "SchedulingDecision",
    "ShardAutoscaler",
    "ScalingDecision",
]


class SchedulingPolicy(str, Enum):
    """Node scoring policy."""

    LEAST_ALLOCATED = "least-allocated"
    MOST_ALLOCATED = "most-allocated"
    BALANCED = "balanced"


@dataclass
class SchedulingDecision:
    """Record of one scheduling attempt (kept for observability and tests)."""

    pod_name: str
    node_name: Optional[str]
    reason: str
    time: float


class Scheduler:
    """Assigns pending pods to nodes."""

    def __init__(
        self,
        api: ApiServer,
        policy: "SchedulingPolicy | str" = SchedulingPolicy.LEAST_ALLOCATED,
        clock=None,
    ) -> None:
        self.api = api
        self.policy = SchedulingPolicy(policy)
        self._clock = clock or (lambda: 0.0)
        self.decisions: list[SchedulingDecision] = []
        self.scheduled_count = 0
        self.unschedulable_count = 0
        api.watch(Pod.KIND, self._on_change, replay_existing=True)
        api.watch(Node.KIND, self._on_change, replay_existing=False)

    # -- watch handling -----------------------------------------------------------

    def _on_change(self, event: WatchEvent) -> None:
        self.reconcile()

    # -- public API -----------------------------------------------------------------

    def reconcile(self) -> int:
        """Try to schedule every pending, unbound pod; returns how many were bound."""
        pending = [
            pod for pod in self.api.list(Pod.KIND)
            if pod.phase == PodPhase.PENDING and not pod.is_scheduled
        ]
        # Highest priority first, then FIFO by creation time.
        pending.sort(key=lambda pod: (-pod.spec.priority, pod.metadata.creation_time))
        bound = 0
        for pod in pending:
            if self._schedule_one(pod):
                bound += 1
        return bound

    def node_free_capacity(self, node: Node) -> Quantity:
        """Allocatable capacity minus requests of non-terminal pods bound to the node."""
        used = Quantity()
        for pod in self.api.list(Pod.KIND):
            if pod.node_name == node.name and not pod.is_terminal:
                used = used + pod.total_requests()
        free = node.allocatable - used
        return Quantity(cpu=max(0.0, free.cpu), memory=max(0, free.memory))

    def feasible_nodes(self, pod: Pod) -> list[Node]:
        """Nodes passing every predicate for ``pod``."""
        requests = pod.total_requests()
        feasible = []
        for node in self.api.list(Node.KIND):
            if not node.is_schedulable:
                continue
            if pod.spec.node_selector and not node.matches_selector(pod.spec.node_selector):
                continue
            if not requests.fits_within(self.node_free_capacity(node)):
                continue
            feasible.append(node)
        return feasible

    # -- internals ---------------------------------------------------------------------

    def _schedule_one(self, pod: Pod) -> bool:
        feasible = self.feasible_nodes(pod)
        if not feasible:
            self.unschedulable_count += 1
            self.decisions.append(
                SchedulingDecision(
                    pod_name=pod.name, node_name=None,
                    reason="Unschedulable: no node with sufficient resources",
                    time=self._clock(),
                )
            )
            self.api.record_event(
                Pod.KIND, pod.metadata, "FailedScheduling",
                f"0/{self.api.count(Node.KIND)} nodes available for {pod.total_requests()}",
            )
            return False
        best = self._pick(pod, feasible)
        pod.node_name = best.name
        self.scheduled_count += 1
        self.decisions.append(
            SchedulingDecision(
                pod_name=pod.name, node_name=best.name,
                reason=f"Scheduled by {self.policy.value}", time=self._clock(),
            )
        )
        self.api.record_event(Pod.KIND, pod.metadata, "Scheduled", f"Bound to {best.name}")
        self.api.touch(Pod.KIND, pod)
        return True

    def _pick(self, pod: Pod, feasible: list[Node]) -> Node:
        requests = pod.total_requests()
        scored = [(self._score(node, requests), node.name, node) for node in feasible]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return scored[0][2]

    def _score(self, node: Node, requests: Quantity) -> float:
        allocatable = node.allocatable
        free = self.node_free_capacity(node)
        free_after = free - requests
        cpu_util = 1.0 - (free_after.cpu / allocatable.cpu if allocatable.cpu else 0.0)
        mem_util = 1.0 - (free_after.memory / allocatable.memory if allocatable.memory else 0.0)
        if self.policy == SchedulingPolicy.LEAST_ALLOCATED:
            return 1.0 - (cpu_util + mem_util) / 2.0
        if self.policy == SchedulingPolicy.MOST_ALLOCATED:
            return (cpu_util + mem_util) / 2.0
        # BALANCED: prefer nodes where CPU and memory utilisation stay close.
        return 1.0 - abs(cpu_util - mem_util)

    # -- reporting ----------------------------------------------------------------------

    def utilization(self) -> dict[str, dict[str, float]]:
        """Per-node CPU/memory utilisation fractions."""
        report: dict[str, dict[str, float]] = {}
        for node in self.api.list(Node.KIND):
            allocatable = node.allocatable
            free = self.node_free_capacity(node)
            report[node.name] = {
                "cpu": 1.0 - (free.cpu / allocatable.cpu if allocatable.cpu else 0.0),
                "memory": 1.0 - (free.memory / allocatable.memory if allocatable.memory else 0.0),
            }
        return report


# ----------------------------------------------------------- shard autoscaling


@dataclass
class ScalingDecision:
    """Record of one shard-count change made by the autoscaler."""

    at: float
    reason: str
    old_shards: int
    new_shards: int
    rate_per_shard: float


class ShardAutoscaler:
    """Drives a sharded gateway's shard count from its observed load.

    The data-plane counterpart of the horizontal pod autoscaler: a periodic
    control loop samples the gateway node's ``packets_dispatched`` counter,
    converts the delta to a per-shard dispatch rate, and calls
    ``node.resize()`` when the rate crosses a watermark — scaling *up* above
    ``high_watermark`` packets/s/shard and *down* below ``low_watermark``,
    bounded by ``min_shards``/``max_shards`` with a ``cooldown_s`` gap
    between changes so a rebalance can settle before the next decision.

    ``node`` is anything with the :class:`~repro.ndn.shard.ShardedForwarder`
    resize surface (``metrics``, ``num_shards``, ``resize``); the layering
    stays duck-typed so the k8s control plane never imports the data plane.

    Failure signals (:meth:`signal_failure` — wired by chaos drivers or
    gateway health checks) take priority over the rate: the next evaluation
    after a failure scales up for headroom even with a quiet dispatch
    counter, because a crash-looping shard under-reports its own load.

    When ``deployment`` (a ``(DeploymentController, Deployment)`` pair,
    e.g. the cluster's ``gateway-nfd`` system deployment) is given, every
    shard-count change is mirrored into the deployment's replica count —
    the k8s view of the same scaling decision.
    """

    def __init__(
        self,
        env,
        node,
        interval_s: float = 1.0,
        high_watermark: float = 100.0,
        low_watermark: float = 10.0,
        min_shards: int = 1,
        max_shards: int = 8,
        cooldown_s: float = 5.0,
        deployment: "tuple | None" = None,
        start: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"autoscaler interval must be positive, got {interval_s}")
        if not 1 <= min_shards <= max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got {min_shards}..{max_shards}"
            )
        if low_watermark >= high_watermark:
            raise ValueError(
                f"low watermark {low_watermark} must sit below high {high_watermark}"
            )
        self.env = env
        self.node = node
        self.interval_s = interval_s
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.cooldown_s = cooldown_s
        self._deployment = deployment
        self._dispatched = node.metrics.counter("packets_dispatched")
        self._last_value = self._dispatched.value
        self._last_scaled_at: Optional[float] = None
        self._failure_signals = 0
        self.evaluations = 0
        self.decisions: list[ScalingDecision] = []
        if start:
            env.process(self._run(), name=f"shard-autoscaler:{node.name}")

    def signal_failure(self, count: int = 1) -> None:
        """Report gateway failures; the next evaluation scales up for headroom."""
        self._failure_signals += count

    def _run(self):
        while True:
            yield self.env.timeout(self.interval_s)
            self.evaluate()

    def evaluate(self) -> Optional[ScalingDecision]:
        """One control-loop pass; returns the decision made, if any."""
        self.evaluations += 1
        now = self.env.now
        value = self._dispatched.value
        delta = value - self._last_value
        self._last_value = value
        failures, self._failure_signals = self._failure_signals, 0
        rate_per_shard = delta / self.interval_s / max(1, self.node.num_shards)
        if (
            self._last_scaled_at is not None
            and now - self._last_scaled_at < self.cooldown_s
        ):
            return None
        old = self.node.num_shards
        target = old
        reason = None
        if failures and old < self.max_shards:
            target = old + 1
            reason = f"scale-up: {failures} failure signal(s)"
        elif rate_per_shard > self.high_watermark and old < self.max_shards:
            target = old + 1
            reason = f"scale-up: {rate_per_shard:.1f} pkt/s/shard above high watermark"
        elif rate_per_shard < self.low_watermark and old > self.min_shards:
            target = old - 1
            reason = f"scale-down: {rate_per_shard:.1f} pkt/s/shard below low watermark"
        if reason is None:
            return None
        self.node.resize(target)
        self._last_scaled_at = now
        decision = ScalingDecision(
            at=now, reason=reason, old_shards=old, new_shards=target,
            rate_per_shard=rate_per_shard,
        )
        self.decisions.append(decision)
        if self._deployment is not None:
            controller, deployment = self._deployment
            controller.scale(deployment, target)
        return decision
