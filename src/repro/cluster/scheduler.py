"""The pod scheduler: predicates + priorities, like kube-scheduler.

Filtering (predicates)
    node is Ready, node selector matches, and the pod's total resource
    requests fit in the node's free allocatable capacity.

Scoring (priorities)
    ``LEAST_ALLOCATED`` (default, spreads load), ``MOST_ALLOCATED``
    (bin-packs), or ``BALANCED`` (minimises the CPU/memory utilisation skew).

The scheduler is event-driven: every Pod or Node change triggers a scheduling
pass over the pending queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cluster.apiserver import ApiServer, WatchEvent
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase
from repro.cluster.quantity import Quantity

__all__ = ["SchedulingPolicy", "Scheduler", "SchedulingDecision"]


class SchedulingPolicy(str, Enum):
    """Node scoring policy."""

    LEAST_ALLOCATED = "least-allocated"
    MOST_ALLOCATED = "most-allocated"
    BALANCED = "balanced"


@dataclass
class SchedulingDecision:
    """Record of one scheduling attempt (kept for observability and tests)."""

    pod_name: str
    node_name: Optional[str]
    reason: str
    time: float


class Scheduler:
    """Assigns pending pods to nodes."""

    def __init__(
        self,
        api: ApiServer,
        policy: "SchedulingPolicy | str" = SchedulingPolicy.LEAST_ALLOCATED,
        clock=None,
    ) -> None:
        self.api = api
        self.policy = SchedulingPolicy(policy)
        self._clock = clock or (lambda: 0.0)
        self.decisions: list[SchedulingDecision] = []
        self.scheduled_count = 0
        self.unschedulable_count = 0
        api.watch(Pod.KIND, self._on_change, replay_existing=True)
        api.watch(Node.KIND, self._on_change, replay_existing=False)

    # -- watch handling -----------------------------------------------------------

    def _on_change(self, event: WatchEvent) -> None:
        self.reconcile()

    # -- public API -----------------------------------------------------------------

    def reconcile(self) -> int:
        """Try to schedule every pending, unbound pod; returns how many were bound."""
        pending = [
            pod for pod in self.api.list(Pod.KIND)
            if pod.phase == PodPhase.PENDING and not pod.is_scheduled
        ]
        # Highest priority first, then FIFO by creation time.
        pending.sort(key=lambda pod: (-pod.spec.priority, pod.metadata.creation_time))
        bound = 0
        for pod in pending:
            if self._schedule_one(pod):
                bound += 1
        return bound

    def node_free_capacity(self, node: Node) -> Quantity:
        """Allocatable capacity minus requests of non-terminal pods bound to the node."""
        used = Quantity()
        for pod in self.api.list(Pod.KIND):
            if pod.node_name == node.name and not pod.is_terminal:
                used = used + pod.total_requests()
        free = node.allocatable - used
        return Quantity(cpu=max(0.0, free.cpu), memory=max(0, free.memory))

    def feasible_nodes(self, pod: Pod) -> list[Node]:
        """Nodes passing every predicate for ``pod``."""
        requests = pod.total_requests()
        feasible = []
        for node in self.api.list(Node.KIND):
            if not node.is_schedulable:
                continue
            if pod.spec.node_selector and not node.matches_selector(pod.spec.node_selector):
                continue
            if not requests.fits_within(self.node_free_capacity(node)):
                continue
            feasible.append(node)
        return feasible

    # -- internals ---------------------------------------------------------------------

    def _schedule_one(self, pod: Pod) -> bool:
        feasible = self.feasible_nodes(pod)
        if not feasible:
            self.unschedulable_count += 1
            self.decisions.append(
                SchedulingDecision(
                    pod_name=pod.name, node_name=None,
                    reason="Unschedulable: no node with sufficient resources",
                    time=self._clock(),
                )
            )
            self.api.record_event(
                Pod.KIND, pod.metadata, "FailedScheduling",
                f"0/{self.api.count(Node.KIND)} nodes available for {pod.total_requests()}",
            )
            return False
        best = self._pick(pod, feasible)
        pod.node_name = best.name
        self.scheduled_count += 1
        self.decisions.append(
            SchedulingDecision(
                pod_name=pod.name, node_name=best.name,
                reason=f"Scheduled by {self.policy.value}", time=self._clock(),
            )
        )
        self.api.record_event(Pod.KIND, pod.metadata, "Scheduled", f"Bound to {best.name}")
        self.api.touch(Pod.KIND, pod)
        return True

    def _pick(self, pod: Pod, feasible: list[Node]) -> Node:
        requests = pod.total_requests()
        scored = [(self._score(node, requests), node.name, node) for node in feasible]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return scored[0][2]

    def _score(self, node: Node, requests: Quantity) -> float:
        allocatable = node.allocatable
        free = self.node_free_capacity(node)
        free_after = free - requests
        cpu_util = 1.0 - (free_after.cpu / allocatable.cpu if allocatable.cpu else 0.0)
        mem_util = 1.0 - (free_after.memory / allocatable.memory if allocatable.memory else 0.0)
        if self.policy == SchedulingPolicy.LEAST_ALLOCATED:
            return 1.0 - (cpu_util + mem_util) / 2.0
        if self.policy == SchedulingPolicy.MOST_ALLOCATED:
            return (cpu_util + mem_util) / 2.0
        # BALANCED: prefer nodes where CPU and memory utilisation stay close.
        return 1.0 - abs(cpu_util - mem_util)

    # -- reporting ----------------------------------------------------------------------

    def utilization(self) -> dict[str, dict[str, float]]:
        """Per-node CPU/memory utilisation fractions."""
        report: dict[str, dict[str, float]] = {}
        for node in self.api.list(Node.KIND):
            allocatable = node.allocatable
            free = self.node_free_capacity(node)
            report[node.name] = {
                "cpu": 1.0 - (free.cpu / allocatable.cpu if allocatable.cpu else 0.0),
                "memory": 1.0 - (free.memory / allocatable.memory if allocatable.memory else 0.0),
            }
        return report
