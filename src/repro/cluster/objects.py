"""API object metadata, labels and selectors."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["ObjectMeta", "LabelSelector", "generate_name"]

_name_counter = itertools.count(1)


def generate_name(prefix: str) -> str:
    """Generate a unique object name from a prefix (``blast-`` → ``blast-17``)."""
    return f"{prefix}{next(_name_counter)}"


@dataclass
class ObjectMeta:
    """Metadata shared by every API object."""

    name: str
    namespace: str = "default"
    labels: dict[str, str] = field(default_factory=dict)
    annotations: dict[str, str] = field(default_factory=dict)
    uid: str = ""
    creation_time: float = 0.0
    owner: Optional[str] = None

    def key(self) -> tuple[str, str]:
        """The (namespace, name) key used by the API server."""
        return (self.namespace, self.name)

    def has_labels(self, required: Mapping[str, str]) -> bool:
        """True when every required label is present with the right value."""
        return all(self.labels.get(key) == value for key, value in required.items())


@dataclass(frozen=True)
class LabelSelector:
    """A label equality selector (the subset Kubernetes services mostly use)."""

    match_labels: tuple[tuple[str, str], ...] = ()

    @classmethod
    def of(cls, **labels: str) -> "LabelSelector":
        return cls(match_labels=tuple(sorted(labels.items())))

    @classmethod
    def from_dict(cls, labels: Mapping[str, str]) -> "LabelSelector":
        return cls(match_labels=tuple(sorted(labels.items())))

    def matches(self, meta: "ObjectMeta | Mapping[str, str]") -> bool:
        labels = meta.labels if isinstance(meta, ObjectMeta) else meta
        return all(labels.get(key) == value for key, value in self.match_labels)

    def as_dict(self) -> dict[str, str]:
        return dict(self.match_labels)

    @property
    def empty(self) -> bool:
        return not self.match_labels
