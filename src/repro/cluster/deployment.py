"""Deployments: keep N replicas of a pod template running.

The LIDC setup runs its long-lived components — the gateway NFD, the data
lake NFD and the file server — as Deployments so that the cluster restarts
them when they fail (paper §III-A: "Kubernetes handles performance
degradation or failures").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.apiserver import ApiServer, EventType, WatchEvent
from repro.cluster.objects import LabelSelector, ObjectMeta, generate_name
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.sim.engine import Environment

__all__ = ["Deployment", "DeploymentController"]

DEPLOYMENT_LABEL = "app"


@dataclass
class Deployment:
    """A Deployment object: a replica count plus a pod template."""

    metadata: ObjectMeta
    template: PodSpec
    replicas: int = 1
    selector: LabelSelector = field(default_factory=LabelSelector)
    ready_replicas: int = 0
    generation: int = 0

    KIND = "Deployment"

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def is_ready(self) -> bool:
        return self.ready_replicas >= self.replicas


class DeploymentController:
    """Maintains the desired replica count for every Deployment."""

    def __init__(self, env: Environment, api: ApiServer) -> None:
        self.env = env
        self.api = api
        self.pods_created = 0
        self.pods_replaced = 0
        self._reconciling: set[str] = set()
        api.watch(Deployment.KIND, self._on_deployment_event, replay_existing=True)
        api.watch(Pod.KIND, self._on_pod_event, replay_existing=False)

    def create_deployment(
        self,
        template: PodSpec,
        name: Optional[str] = None,
        namespace: str = "ndnk8s",
        replicas: int = 1,
        labels: "dict[str, str] | None" = None,
    ) -> Deployment:
        """Create a Deployment; its pods carry ``app=<name>`` labels."""
        name = name or generate_name("deploy-")
        labels = dict(labels or {})
        labels.setdefault(DEPLOYMENT_LABEL, name)
        deployment = Deployment(
            metadata=ObjectMeta(name=name, namespace=namespace, labels=labels),
            template=template,
            replicas=replicas,
            selector=LabelSelector.from_dict({DEPLOYMENT_LABEL: labels[DEPLOYMENT_LABEL]}),
        )
        self.api.create(Deployment.KIND, deployment)
        return deployment

    def scale(self, deployment: Deployment, replicas: int) -> None:
        """Change the desired replica count (horizontal scaling)."""
        deployment.replicas = replicas
        deployment.generation += 1
        self.api.touch(Deployment.KIND, deployment)

    # -- watch handlers --------------------------------------------------------------

    def _on_deployment_event(self, event: WatchEvent) -> None:
        if event.type in (EventType.ADDED, EventType.MODIFIED):
            self._reconcile(event.obj)

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod: Pod = event.obj
        app = pod.metadata.labels.get(DEPLOYMENT_LABEL)
        if not app:
            return
        for deployment in self.api.list(Deployment.KIND, namespace=pod.metadata.namespace):
            if deployment.selector.matches(pod.metadata):
                self._reconcile(deployment)

    # -- reconciliation -----------------------------------------------------------------

    def _deployment_pods(self, deployment: Deployment) -> list[Pod]:
        return self.api.list(
            Pod.KIND,
            namespace=deployment.metadata.namespace,
            selector=lambda pod: deployment.selector.matches(pod.metadata),
        )

    def _reconcile(self, deployment: Deployment) -> None:
        # Creating/deleting pods triggers pod watch events that re-enter this
        # method; guard against acting on stale listings mid-change.
        key = f"{deployment.metadata.namespace}/{deployment.name}"
        if key in self._reconciling:
            return
        self._reconciling.add(key)
        try:
            pods = self._deployment_pods(deployment)
            live = [pod for pod in pods if not pod.is_terminal]
            deployment.ready_replicas = sum(1 for pod in live if pod.phase == PodPhase.RUNNING)

            # Replace failed/succeeded pods and add missing replicas.
            missing = deployment.replicas - len(live)
            for _ in range(max(0, missing)):
                self._spawn_pod(deployment)
                self.pods_replaced += 1 if pods else 0

            # Scale down: delete the newest surplus pods.
            surplus = len(live) - deployment.replicas
            if surplus > 0:
                victims = sorted(
                    live, key=lambda pod: pod.metadata.creation_time, reverse=True
                )[:surplus]
                for pod in victims:
                    if self.api.exists(Pod.KIND, pod.name, pod.namespace):
                        self.api.delete(Pod.KIND, pod.name, pod.namespace)
        finally:
            self._reconciling.discard(key)

    def _spawn_pod(self, deployment: Deployment) -> Pod:
        self.pods_created += 1
        pod = Pod(
            metadata=ObjectMeta(
                name=generate_name(f"{deployment.name}-"),
                namespace=deployment.metadata.namespace,
                labels=dict(deployment.selector.as_dict()),
                owner=deployment.name,
            ),
            spec=deployment.template,
        )
        self.api.create(Pod.KIND, pod)
        return pod
