"""A Kubernetes-equivalent cluster orchestrator, built for simulation.

LIDC uses Kubernetes for five things (paper §III-A): named service endpoints
resolved through cluster DNS, NodePort exposure of the gateway NFD, spawning
Jobs with CPU/memory requests, PVC-mounted storage for the data lake, and
horizontal scaling.  This package implements each of those mechanisms from
scratch on top of the simulation kernel:

* :mod:`repro.cluster.quantity` — ``4Gi`` / ``500m`` resource quantities;
* :mod:`repro.cluster.objects` — object metadata, labels and selectors;
* :mod:`repro.cluster.apiserver` — the API object store with watches and
  events;
* :mod:`repro.cluster.node` / :mod:`repro.cluster.kubelet` — nodes and the
  agent that runs pods on them;
* :mod:`repro.cluster.pod` — pod and container specifications and lifecycle;
* :mod:`repro.cluster.scheduler` — a predicates + priorities bin-packing
  scheduler;
* :mod:`repro.cluster.job` — the Job controller (the object LIDC's gateway
  creates for every computation request);
* :mod:`repro.cluster.deployment` — Deployments / ReplicaSets for
  long-running services such as the gateway NFD and the file server;
* :mod:`repro.cluster.service` / :mod:`repro.cluster.dns` — Services
  (ClusterIP and NodePort) and cluster DNS;
* :mod:`repro.cluster.storage` — PersistentVolumes, PersistentVolumeClaims
  and an NFS-style provisioner backing the data lake;
* :mod:`repro.cluster.cluster` — the :class:`~repro.cluster.cluster.Cluster`
  facade wiring everything together.
"""

from repro.cluster.quantity import Quantity, parse_cpu, parse_memory, format_memory
from repro.cluster.objects import ObjectMeta, LabelSelector
from repro.cluster.apiserver import ApiServer, WatchEvent, EventType
from repro.cluster.node import Node, NodeStatus
from repro.cluster.pod import Container, Pod, PodPhase, PodSpec, ResourceRequirements
from repro.cluster.scheduler import Scheduler, SchedulingPolicy
from repro.cluster.kubelet import Kubelet
from repro.cluster.job import Job, JobController, JobSpec, JobStatus
from repro.cluster.deployment import Deployment, DeploymentController
from repro.cluster.service import Service, ServiceType, Endpoints
from repro.cluster.dns import ClusterDNS
from repro.cluster.storage import (
    NFSServer,
    PersistentVolume,
    PersistentVolumeClaim,
    StorageClass,
    StorageController,
)
from repro.cluster.cluster import Cluster, ClusterSpec

__all__ = [
    "Quantity",
    "parse_cpu",
    "parse_memory",
    "format_memory",
    "ObjectMeta",
    "LabelSelector",
    "ApiServer",
    "WatchEvent",
    "EventType",
    "Node",
    "NodeStatus",
    "Pod",
    "PodSpec",
    "PodPhase",
    "Container",
    "ResourceRequirements",
    "Scheduler",
    "SchedulingPolicy",
    "Kubelet",
    "Job",
    "JobSpec",
    "JobStatus",
    "JobController",
    "Deployment",
    "DeploymentController",
    "Service",
    "ServiceType",
    "Endpoints",
    "ClusterDNS",
    "PersistentVolume",
    "PersistentVolumeClaim",
    "StorageClass",
    "StorageController",
    "NFSServer",
    "Cluster",
    "ClusterSpec",
]
