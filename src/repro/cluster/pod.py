"""Pods: the smallest schedulable unit.

A pod carries one or more containers, each with resource *requests* (used by
the scheduler for placement) and *limits*.  The pod's workload — what it
actually does once running — is represented either by a fixed duration or by
a callable returning the duration, which is how the genomics runtime model
plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Union

from repro.cluster.objects import ObjectMeta
from repro.cluster.quantity import Quantity, parse_cpu, parse_memory

__all__ = ["PodPhase", "ResourceRequirements", "Container", "PodSpec", "Pod", "WorkloadResult"]


class PodPhase(str, Enum):
    """Pod lifecycle phases (mirrors Kubernetes)."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"
    UNKNOWN = "Unknown"

    def is_terminal(self) -> bool:
        return self in (PodPhase.SUCCEEDED, PodPhase.FAILED)


@dataclass
class ResourceRequirements:
    """Requested and limit quantities for one container."""

    requests: Quantity = field(default_factory=Quantity)
    limits: Optional[Quantity] = None

    @classmethod
    def of(cls, cpu: Union[str, int, float] = 0, memory: Union[str, int, float] = 0,
           limit_cpu: Union[str, int, float, None] = None,
           limit_memory: Union[str, int, float, None] = None) -> "ResourceRequirements":
        requests = Quantity(cpu=parse_cpu(cpu), memory=parse_memory(memory))
        limits = None
        if limit_cpu is not None or limit_memory is not None:
            limits = Quantity(
                cpu=parse_cpu(limit_cpu if limit_cpu is not None else cpu),
                memory=parse_memory(limit_memory if limit_memory is not None else memory),
            )
        return cls(requests=requests, limits=limits)


@dataclass
class WorkloadResult:
    """What a container's workload produced (duration plus artefacts)."""

    duration_s: float
    output: dict = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


#: A workload is a fixed duration, or a callable taking the pod and returning
#: either a duration or a full :class:`WorkloadResult`.
Workload = Union[float, int, Callable[["Pod"], Union[float, WorkloadResult]]]


@dataclass
class Container:
    """One container in a pod."""

    name: str
    image: str = "busybox:latest"
    resources: ResourceRequirements = field(default_factory=ResourceRequirements)
    command: list[str] = field(default_factory=list)
    env: dict[str, str] = field(default_factory=dict)
    workload: Workload = 0.0
    startup_delay_s: float = 0.5

    def run_workload(self, pod: "Pod") -> WorkloadResult:
        """Evaluate the workload (called by the kubelet once the pod runs)."""
        if callable(self.workload):
            outcome = self.workload(pod)
        else:
            outcome = float(self.workload)
        if isinstance(outcome, WorkloadResult):
            return outcome
        return WorkloadResult(duration_s=float(outcome))


@dataclass
class PodSpec:
    """Desired state of a pod."""

    containers: list[Container] = field(default_factory=list)
    node_selector: dict[str, str] = field(default_factory=dict)
    restart_policy: str = "Never"
    volumes: list[str] = field(default_factory=list)  # PVC names mounted by the pod
    priority: int = 0
    termination_grace_period_s: float = 0.0

    def total_requests(self) -> Quantity:
        total = Quantity()
        for container in self.containers:
            total = total + container.resources.requests
        return total


@dataclass
class Pod:
    """A pod object: metadata, spec and status."""

    metadata: ObjectMeta
    spec: PodSpec
    phase: PodPhase = PodPhase.PENDING
    node_name: Optional[str] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    message: str = ""
    results: list[WorkloadResult] = field(default_factory=list)

    KIND = "Pod"

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def namespace(self) -> str:
        return self.metadata.namespace

    @property
    def is_scheduled(self) -> bool:
        return self.node_name is not None

    @property
    def is_terminal(self) -> bool:
        return self.phase.is_terminal()

    def total_requests(self) -> Quantity:
        return self.spec.total_requests()

    def runtime(self) -> Optional[float]:
        """Wall-clock (simulated) runtime, when the pod has finished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def output(self) -> dict:
        """Merged workload outputs from every container."""
        merged: dict = {}
        for result in self.results:
            merged.update(result.output)
        return merged
