"""Jobs: run-to-completion workloads.

The LIDC gateway translates every accepted computation Interest into exactly
one Job (paper §IV: "The gateway node then runs a Kubernetes job with the
specified resources").  The Job controller creates the pods, tracks their
completion, applies the backoff limit on failures and exposes a completion
event that the gateway waits on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.apiserver import ApiServer, EventType, WatchEvent
from repro.cluster.objects import ObjectMeta, generate_name
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.sim.engine import Environment, Event

__all__ = ["JobSpec", "JobStatus", "Job", "JobController"]

JOB_LABEL = "job-name"


@dataclass
class JobSpec:
    """Desired state of a Job."""

    template: PodSpec
    completions: int = 1
    parallelism: int = 1
    backoff_limit: int = 0
    active_deadline_s: Optional[float] = None


@dataclass
class JobStatus:
    """Observed state of a Job."""

    active: int = 0
    succeeded: int = 0
    failed: int = 0
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    condition: str = "Pending"  # Pending | Running | Complete | Failed
    message: str = ""


@dataclass
class Job:
    """A Job object."""

    metadata: ObjectMeta
    spec: JobSpec
    status: JobStatus = field(default_factory=JobStatus)
    #: Event triggered when the job reaches a terminal condition.
    completion: Optional[Event] = None

    KIND = "Job"

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def is_complete(self) -> bool:
        return self.status.condition == "Complete"

    @property
    def is_failed(self) -> bool:
        return self.status.condition == "Failed"

    @property
    def is_terminal(self) -> bool:
        return self.is_complete or self.is_failed

    def duration(self) -> Optional[float]:
        if self.status.start_time is None or self.status.completion_time is None:
            return None
        return self.status.completion_time - self.status.start_time


class JobController:
    """Creates pods for Jobs and rolls pod results up into job status."""

    def __init__(self, env: Environment, api: ApiServer) -> None:
        self.env = env
        self.api = api
        self.jobs_created = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        api.watch(Job.KIND, self._on_job_event, replay_existing=True)
        api.watch(Pod.KIND, self._on_pod_event, replay_existing=False)

    # -- job creation helper --------------------------------------------------------

    def create_job(
        self,
        template: PodSpec,
        name: Optional[str] = None,
        namespace: str = "ndnk8s",
        labels: "dict[str, str] | None" = None,
        completions: int = 1,
        parallelism: int = 1,
        backoff_limit: int = 0,
        active_deadline_s: Optional[float] = None,
    ) -> Job:
        """Create a Job object in the API server and return it."""
        job = Job(
            metadata=ObjectMeta(
                name=name or generate_name("job-"),
                namespace=namespace,
                labels=dict(labels or {}),
            ),
            spec=JobSpec(
                template=template,
                completions=completions,
                parallelism=parallelism,
                backoff_limit=backoff_limit,
                active_deadline_s=active_deadline_s,
            ),
            completion=self.env.event(name="job-completion"),
        )
        self.api.create(Job.KIND, job)
        self.jobs_created += 1
        return job

    # -- watch handlers ----------------------------------------------------------------

    def _on_job_event(self, event: WatchEvent) -> None:
        if event.type == EventType.ADDED:
            job: Job = event.obj
            self._reconcile_job(job)
            if job.spec.active_deadline_s is not None:
                self.env.process(self._deadline_watch(job), name=f"deadline:{job.name}")

    def _deadline_watch(self, job: Job):
        """Fail the job (and stop its pods) once the active deadline passes."""
        assert job.spec.active_deadline_s is not None
        yield self.env.timeout(job.spec.active_deadline_s)
        if job.is_terminal:
            return
        for pod in self._job_pods(job):
            if not pod.is_terminal and self.api.exists(Pod.KIND, pod.name, pod.namespace):
                self.api.delete(Pod.KIND, pod.name, pod.namespace)
        self._complete(job, "Failed", "active deadline exceeded")

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod: Pod = event.obj
        job_name = pod.metadata.labels.get(JOB_LABEL)
        if not job_name:
            return
        job = self.api.try_get(Job.KIND, job_name, pod.metadata.namespace)
        if job is not None and not job.is_terminal:
            self._reconcile_job(job)

    # -- reconciliation ------------------------------------------------------------------

    def _job_pods(self, job: Job) -> list[Pod]:
        return self.api.list(
            Pod.KIND,
            namespace=job.metadata.namespace,
            selector=lambda pod: pod.metadata.labels.get(JOB_LABEL) == job.name,
        )

    def _reconcile_job(self, job: Job) -> None:
        if job.is_terminal:
            return
        pods = self._job_pods(job)
        succeeded = sum(1 for pod in pods if pod.phase == PodPhase.SUCCEEDED)
        failed = sum(1 for pod in pods if pod.phase == PodPhase.FAILED)
        active = sum(1 for pod in pods if not pod.is_terminal)
        job.status.succeeded = succeeded
        job.status.failed = failed
        job.status.active = active
        if job.status.start_time is None and pods:
            job.status.start_time = job.metadata.creation_time

        if succeeded >= job.spec.completions:
            self._complete(job, "Complete", "job reached its completion count")
            return
        if failed > job.spec.backoff_limit:
            self._complete(job, "Failed", f"backoff limit exceeded ({failed} failures)")
            return
        if (
            job.spec.active_deadline_s is not None
            and job.status.start_time is not None
            and self.env.now - job.status.start_time > job.spec.active_deadline_s
        ):
            self._complete(job, "Failed", "active deadline exceeded")
            return

        # Create pods until we have enough active/succeeded to reach completions,
        # bounded by the allowed parallelism.
        needed = job.spec.completions - succeeded
        to_create = min(job.spec.parallelism, needed) - active
        for _ in range(max(0, to_create)):
            self._spawn_pod(job)
        if active > 0 or to_create > 0:
            job.status.condition = "Running"

    def _spawn_pod(self, job: Job) -> Pod:
        index = job.status.succeeded + job.status.failed + job.status.active
        pod = Pod(
            metadata=ObjectMeta(
                name=f"{job.name}-pod-{index}-{job.metadata.uid or 'x'}",
                namespace=job.metadata.namespace,
                labels={**job.metadata.labels, JOB_LABEL: job.name},
                owner=job.name,
            ),
            spec=job.spec.template,
        )
        self.api.create(Pod.KIND, pod)
        job.status.active += 1
        return pod

    def _complete(self, job: Job, condition: str, message: str) -> None:
        job.status.condition = condition
        job.status.message = message
        job.status.completion_time = self.env.now
        if job.status.start_time is None:
            job.status.start_time = job.metadata.creation_time
        if condition == "Complete":
            self.jobs_completed += 1
        else:
            self.jobs_failed += 1
        self.api.record_event(Job.KIND, job.metadata, condition, message)
        self.api.touch(Job.KIND, job)
        if job.completion is not None and not job.completion.triggered:
            job.completion.succeed(job)

    # -- queries -------------------------------------------------------------------------

    def pods_for(self, job: Job) -> list[Pod]:
        """All pods created for ``job``."""
        return self._job_pods(job)
