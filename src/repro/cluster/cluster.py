"""The Cluster facade: one object wiring the whole orchestrator together.

A :class:`Cluster` is the reproduction's equivalent of one MicroK8s
installation from the paper's testbed: an API server, nodes with kubelets, a
scheduler, the Job / Deployment / Service controllers, cluster DNS and the
storage controller with its NFS server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.exceptions import ClusterError
from repro.cluster.apiserver import ApiServer
from repro.cluster.deployment import Deployment, DeploymentController
from repro.cluster.dns import ClusterDNS
from repro.cluster.job import Job, JobController
from repro.cluster.kubelet import Kubelet
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.quantity import Quantity, parse_cpu, parse_memory
from repro.cluster.scheduler import Scheduler, SchedulingPolicy
from repro.cluster.service import Service, ServiceController, ServiceType
from repro.cluster.storage import NFSServer, PersistentVolumeClaim, StorageController
from repro.sim.engine import Environment

__all__ = ["ClusterSpec", "Cluster"]


@dataclass
class ClusterSpec:
    """Declarative description of a cluster (size, location, node shape)."""

    name: str
    region: str = "us-central1"
    node_count: int = 1
    node_cpu: Union[str, int, float] = 8
    node_memory: Union[str, int] = "32Gi"
    scheduler_policy: "SchedulingPolicy | str" = SchedulingPolicy.LEAST_ALLOCATED
    nfs_capacity: Union[str, int] = "1Ti"
    labels: dict[str, str] = field(default_factory=dict)

    def total_capacity(self) -> Quantity:
        return Quantity(
            cpu=parse_cpu(self.node_cpu) * self.node_count,
            memory=parse_memory(self.node_memory) * self.node_count,
        )


class Cluster:
    """One orchestrated compute cluster."""

    def __init__(self, env: Environment, spec: ClusterSpec) -> None:
        self.env = env
        self.spec = spec
        self.name = spec.name
        self.region = spec.region
        self.api = ApiServer(clock=lambda: env.now)
        self.scheduler = Scheduler(self.api, policy=spec.scheduler_policy, clock=lambda: env.now)
        self.nfs = NFSServer(name=f"{spec.name}-nfs", capacity=spec.nfs_capacity)
        self.storage = StorageController(self.api, default_server=self.nfs)
        self.jobs = JobController(env, self.api)
        self.deployments = DeploymentController(env, self.api)
        self.services = ServiceController(self.api, cluster_name=spec.name)
        self.dns = ClusterDNS(self.api)
        self._kubelets: dict[str, Kubelet] = {}
        for index in range(spec.node_count):
            self.add_node(
                name=f"{spec.name}-node-{index}",
                cpu=spec.node_cpu,
                memory=spec.node_memory,
                labels=dict(spec.labels),
            )

    # -- nodes ---------------------------------------------------------------------

    def add_node(self, name: str, cpu: Union[str, int, float] = 8,
                 memory: Union[str, int] = "32Gi",
                 labels: "dict[str, str] | None" = None) -> Node:
        """Add a worker node (vertical/horizontal scaling of the platform)."""
        if name in self._kubelets:
            raise ClusterError(f"node {name!r} already exists in cluster {self.name}")
        node = Node.build(name=name, cpu=cpu, memory=memory, labels=labels)
        self.api.create(Node.KIND, node)
        self._kubelets[name] = Kubelet(self.env, self.api, node)
        return node

    def nodes(self) -> list[Node]:
        return self.api.list(Node.KIND)

    def kubelet(self, node_name: str) -> Kubelet:
        try:
            return self._kubelets[node_name]
        except KeyError:
            raise ClusterError(f"no kubelet for node {node_name!r}") from None

    def fail_node(self, node_name: str) -> int:
        """Inject a node failure; returns the number of pods killed."""
        return self.kubelet(node_name).node_failure()

    # -- capacity ------------------------------------------------------------------------

    def total_allocatable(self) -> Quantity:
        total = Quantity()
        for node in self.nodes():
            if node.is_schedulable:
                total = total + node.allocatable
        return total

    def free_capacity(self) -> Quantity:
        free = Quantity()
        for node in self.nodes():
            if node.is_schedulable:
                free = free + self.scheduler.node_free_capacity(node)
        return free

    def can_fit(self, requests: Quantity) -> bool:
        """True when some single node could accept a pod with ``requests``."""
        for node in self.nodes():
            if not node.is_schedulable:
                continue
            if requests.fits_within(self.scheduler.node_free_capacity(node)):
                return True
        return False

    def utilization(self) -> dict[str, float]:
        """Cluster-wide CPU and memory utilisation fractions."""
        total = self.total_allocatable()
        free = self.free_capacity()
        return {
            "cpu": 1.0 - (free.cpu / total.cpu if total.cpu else 0.0),
            "memory": 1.0 - (free.memory / total.memory if total.memory else 0.0),
        }

    # -- workload helpers -------------------------------------------------------------------

    def create_job(self, template: PodSpec, name: Optional[str] = None,
                   namespace: str = "ndnk8s", labels: "dict[str, str] | None" = None,
                   backoff_limit: int = 0,
                   active_deadline_s: Optional[float] = None) -> Job:
        """Create a run-to-completion Job from a pod template."""
        return self.jobs.create_job(
            template, name=name, namespace=namespace, labels=labels,
            backoff_limit=backoff_limit, active_deadline_s=active_deadline_s,
        )

    def create_deployment(self, template: PodSpec, name: Optional[str] = None,
                          namespace: str = "ndnk8s", replicas: int = 1,
                          labels: "dict[str, str] | None" = None) -> Deployment:
        return self.deployments.create_deployment(
            template, name=name, namespace=namespace, replicas=replicas, labels=labels
        )

    def create_service(self, name: str, selector: "dict[str, str]", port: int = 6363,
                       namespace: str = "ndnk8s",
                       service_type: "ServiceType | str" = ServiceType.CLUSTER_IP,
                       node_port: Optional[int] = None) -> Service:
        return self.services.create_service(
            name=name, selector=selector, port=port, namespace=namespace,
            service_type=service_type, node_port=node_port,
        )

    def create_pvc(self, name: str, size: Union[str, int],
                   namespace: str = "ndnk8s") -> PersistentVolumeClaim:
        return self.storage.create_pvc(name=name, size=size, namespace=namespace)

    # -- queries ---------------------------------------------------------------------------------

    def pods(self, namespace: Optional[str] = None) -> list[Pod]:
        return self.api.list(Pod.KIND, namespace=namespace)

    def running_pods(self) -> list[Pod]:
        return [pod for pod in self.pods() if pod.phase == PodPhase.RUNNING]

    def job(self, name: str, namespace: str = "ndnk8s") -> Job:
        return self.api.get(Job.KIND, name, namespace)

    def service(self, name: str, namespace: str = "ndnk8s") -> Service:
        return self.api.get(Service.KIND, name, namespace)

    def stats(self) -> dict[str, object]:
        """Operational statistics for reports and benchmarks."""
        pods = self.pods()
        return {
            "name": self.name,
            "region": self.region,
            "nodes": len(self.nodes()),
            "pods_total": len(pods),
            "pods_running": sum(1 for pod in pods if pod.phase == PodPhase.RUNNING),
            "pods_succeeded": sum(1 for pod in pods if pod.phase == PodPhase.SUCCEEDED),
            "pods_failed": sum(1 for pod in pods if pod.phase == PodPhase.FAILED),
            "jobs_created": self.jobs.jobs_created,
            "jobs_completed": self.jobs.jobs_completed,
            "jobs_failed": self.jobs.jobs_failed,
            "utilization": self.utilization(),
            "scheduler_decisions": len(self.scheduler.decisions),
            "nfs_used_bytes": self.nfs.used_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster {self.name} nodes={len(self._kubelets)} region={self.region}>"
