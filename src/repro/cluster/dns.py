"""Cluster DNS (the CoreDNS add-on of the paper's MicroK8s deployment).

Resolves ``<service>.<namespace>.svc.cluster.local`` names to the service's
ClusterIP and to the names of the pods backing it — the mechanism by which
the gateway reaches named service endpoints such as
``dl-nfd.ndnk8s.svc.cluster.local``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ClusterError
from repro.cluster.apiserver import ApiServer
from repro.cluster.service import Service

__all__ = ["DnsRecord", "ClusterDNS"]

CLUSTER_DOMAIN = "cluster.local"


@dataclass(frozen=True)
class DnsRecord:
    """The answer to a DNS query."""

    fqdn: str
    cluster_ip: str
    endpoints: tuple[str, ...]
    service_name: str
    namespace: str

    @property
    def is_resolvable(self) -> bool:
        return bool(self.cluster_ip)


class ClusterDNS:
    """Service-name resolution backed by the API server."""

    def __init__(self, api: ApiServer, cluster_domain: str = CLUSTER_DOMAIN) -> None:
        self.api = api
        self.cluster_domain = cluster_domain
        self.queries = 0
        self.failures = 0

    def qualify(self, service_name: str, namespace: str = "ndnk8s") -> str:
        """The fully-qualified DNS name for a service."""
        return f"{service_name}.{namespace}.svc.{self.cluster_domain}"

    def _parse(self, fqdn: str) -> tuple[str, str]:
        suffix = f".svc.{self.cluster_domain}"
        if fqdn.endswith(suffix):
            head = fqdn[: -len(suffix)]
            parts = head.split(".")
            if len(parts) == 2:
                return parts[0], parts[1]
        # Short forms: "name" or "name.namespace".
        parts = fqdn.split(".")
        if len(parts) == 1:
            return parts[0], "ndnk8s"
        if len(parts) == 2:
            return parts[0], parts[1]
        raise ClusterError(f"cannot parse DNS name {fqdn!r}")

    def resolve(self, fqdn: str) -> DnsRecord:
        """Resolve a service DNS name; raises :class:`ClusterError` when unknown."""
        self.queries += 1
        service_name, namespace = self._parse(fqdn)
        service: Optional[Service] = self.api.try_get(Service.KIND, service_name, namespace)
        if service is None:
            self.failures += 1
            raise ClusterError(f"DNS: no service for {fqdn!r}")
        return DnsRecord(
            fqdn=self.qualify(service_name, namespace),
            cluster_ip=service.cluster_ip,
            endpoints=tuple(service.endpoints.addresses),
            service_name=service_name,
            namespace=namespace,
        )

    def try_resolve(self, fqdn: str) -> Optional[DnsRecord]:
        """Like :meth:`resolve` but returns ``None`` instead of raising."""
        try:
            return self.resolve(fqdn)
        except ClusterError:
            return None
