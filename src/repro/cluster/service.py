"""Services: stable virtual endpoints in front of pods.

Two service types matter to LIDC (paper Fig. 3):

* ``ClusterIP`` — the in-cluster DNS name (e.g.
  ``dl-nfd.ndnk8s.svc.cluster.local``) that the gateway uses to reach the
  data-lake NFD and the file server;
* ``NodePort`` — the externally reachable port (30000–32767) through which
  outside NDN clients connect to the gateway NFD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.exceptions import ClusterError
from repro.cluster.apiserver import ApiServer, EventType, WatchEvent
from repro.cluster.objects import LabelSelector, ObjectMeta
from repro.cluster.pod import Pod, PodPhase

__all__ = ["ServiceType", "ServicePort", "Endpoints", "Service", "ServiceController"]

NODE_PORT_RANGE = (30000, 32767)


class ServiceType(str, Enum):
    CLUSTER_IP = "ClusterIP"
    NODE_PORT = "NodePort"


@dataclass(frozen=True)
class ServicePort:
    """A port exposed by a service."""

    port: int
    target_port: int
    node_port: Optional[int] = None
    protocol: str = "TCP"


@dataclass
class Endpoints:
    """The pods currently backing a service."""

    service_name: str
    addresses: list[str] = field(default_factory=list)  # pod names acting as addresses
    ready: bool = False


@dataclass
class Service:
    """A Service object."""

    metadata: ObjectMeta
    selector: LabelSelector
    ports: list[ServicePort] = field(default_factory=list)
    service_type: ServiceType = ServiceType.CLUSTER_IP
    cluster_ip: str = ""
    endpoints: Endpoints = None  # type: ignore[assignment]

    KIND = "Service"

    def __post_init__(self) -> None:
        if self.endpoints is None:
            self.endpoints = Endpoints(service_name=self.metadata.name)

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def dns_name(self) -> str:
        """The cluster DNS name of this service."""
        return f"{self.metadata.name}.{self.metadata.namespace}.svc.cluster.local"

    @property
    def node_port(self) -> Optional[int]:
        for port in self.ports:
            if port.node_port is not None:
                return port.node_port
        return None

    @property
    def has_ready_endpoints(self) -> bool:
        return bool(self.endpoints.addresses)


class ServiceController:
    """Allocates cluster IPs / node ports and keeps endpoints in sync."""

    def __init__(self, api: ApiServer, cluster_name: str = "cluster") -> None:
        self.api = api
        self.cluster_name = cluster_name
        self._next_ip_octet = 1
        self._allocated_node_ports: set[int] = set()
        api.watch(Service.KIND, self._on_service_event, replay_existing=True)
        api.watch(Pod.KIND, self._on_pod_event, replay_existing=False)

    # -- creation ------------------------------------------------------------------

    def create_service(
        self,
        name: str,
        selector: "LabelSelector | dict[str, str]",
        port: int = 6363,
        target_port: Optional[int] = None,
        namespace: str = "ndnk8s",
        service_type: "ServiceType | str" = ServiceType.CLUSTER_IP,
        node_port: Optional[int] = None,
    ) -> Service:
        """Create a Service and allocate its virtual IP (and NodePort if asked)."""
        if isinstance(selector, dict):
            selector = LabelSelector.from_dict(selector)
        service_type = ServiceType(service_type)
        ports = [
            ServicePort(
                port=port,
                target_port=target_port if target_port is not None else port,
                node_port=self._allocate_node_port(node_port) if service_type == ServiceType.NODE_PORT else None,
            )
        ]
        service = Service(
            metadata=ObjectMeta(name=name, namespace=namespace),
            selector=selector,
            ports=ports,
            service_type=service_type,
            cluster_ip=self._allocate_cluster_ip(),
        )
        self.api.create(Service.KIND, service)
        return service

    def _allocate_cluster_ip(self) -> str:
        octet = self._next_ip_octet
        self._next_ip_octet += 1
        return f"10.152.{octet // 256}.{octet % 256}"

    def _allocate_node_port(self, requested: Optional[int]) -> int:
        if requested is not None:
            if not (NODE_PORT_RANGE[0] <= requested <= NODE_PORT_RANGE[1]):
                raise ClusterError(
                    f"node port {requested} outside the allowed range {NODE_PORT_RANGE}"
                )
            if requested in self._allocated_node_ports:
                raise ClusterError(f"node port {requested} already allocated")
            self._allocated_node_ports.add(requested)
            return requested
        for candidate in range(NODE_PORT_RANGE[0], NODE_PORT_RANGE[1] + 1):
            if candidate not in self._allocated_node_ports:
                self._allocated_node_ports.add(candidate)
                return candidate
        raise ClusterError("node port range exhausted")

    # -- endpoint maintenance ------------------------------------------------------------

    def _on_service_event(self, event: WatchEvent) -> None:
        if event.type in (EventType.ADDED, EventType.MODIFIED):
            self._refresh_endpoints(event.obj)

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod: Pod = event.obj
        for service in self.api.list(Service.KIND, namespace=pod.metadata.namespace):
            if service.selector.matches(pod.metadata):
                self._refresh_endpoints(service)

    def _refresh_endpoints(self, service: Service) -> None:
        backing = [
            pod.name
            for pod in self.api.list(Pod.KIND, namespace=service.metadata.namespace)
            if service.selector.matches(pod.metadata) and pod.phase == PodPhase.RUNNING
        ]
        service.endpoints.addresses = sorted(backing)
        service.endpoints.ready = bool(backing)

    # -- queries --------------------------------------------------------------------------

    def resolve_node_port(self, node_port: int) -> Optional[Service]:
        """Find the service exposed on ``node_port`` (external client entry path)."""
        for service in self.api.list(Service.KIND):
            if service.node_port == node_port:
                return service
        return None
