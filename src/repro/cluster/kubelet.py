"""The kubelet: runs pods that the scheduler binds to its node.

The kubelet owns the pod lifecycle on a node: container startup delay, the
Running phase for the duration produced by the container workloads, then
Succeeded or Failed.  Long-running services use an infinite workload duration
and simply stay Running until deleted or the node dies.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cluster.apiserver import ApiServer, EventType, WatchEvent
from repro.cluster.node import Node, NodeStatus
from repro.cluster.pod import Pod, PodPhase, WorkloadResult
from repro.exceptions import ProcessInterrupt, SimulationError
from repro.sim.engine import Environment

__all__ = ["Kubelet"]


class Kubelet:
    """Node agent: watches for pods bound to its node and runs them."""

    def __init__(self, env: Environment, api: ApiServer, node: Node) -> None:
        self.env = env
        self.api = api
        self.node = node
        self._running: dict[str, object] = {}  # pod uid -> process
        self.pods_started = 0
        self.pods_completed = 0
        self.pods_failed = 0
        api.watch(Pod.KIND, self._on_pod_event, replay_existing=True)

    # -- watch handling --------------------------------------------------------

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod: Pod = event.obj
        if pod.node_name != self.node.name:
            return
        if event.type == EventType.DELETED:
            self._stop(pod, reason="deleted")
            return
        if pod.phase == PodPhase.PENDING and pod.metadata.uid not in self._running:
            process = self.env.process(self._run_pod(pod), name=f"kubelet:{pod.name}")
            self._running[pod.metadata.uid] = process

    # -- pod execution ----------------------------------------------------------

    def _run_pod(self, pod: Pod):
        if self.node.status == NodeStatus.NOT_READY:
            self._fail(pod, "node not ready")
            return
        startup = max((c.startup_delay_s for c in pod.spec.containers), default=0.0)
        yield self.env.timeout(startup)
        if pod.is_terminal:
            return
        pod.phase = PodPhase.RUNNING
        pod.start_time = self.env.now
        self.pods_started += 1
        self.api.record_event(Pod.KIND, pod.metadata, "Started", f"Running on {self.node.name}")
        self.api.touch(Pod.KIND, pod)

        results: list[WorkloadResult] = []
        duration = 0.0
        failed_message: Optional[str] = None
        for container in pod.spec.containers:
            try:
                result = container.run_workload(pod)
            except Exception as exc:  # lint: allow[RL004] tenant workloads raise arbitrary exceptions; the pod must fail, not the kubelet
                failed_message = f"{container.name}: {exc}"
                result = WorkloadResult(duration_s=0.0, error=str(exc))
            results.append(result)
            duration = max(duration, result.duration_s)
            if result.error is not None:
                failed_message = failed_message or f"{container.name}: {result.error}"
        pod.results = results

        if math.isinf(duration):
            # Long-running service: stays Running until interrupted.
            try:
                yield self.env.event(name=f"forever:{pod.name}")
            finally:
                return
        try:
            yield self.env.timeout(duration)
        except (ProcessInterrupt, GeneratorExit):
            # Pod deleted (interrupt) or generator closed mid-run: the
            # terminal phase was already set by _stop/_fail.
            return
        if pod.is_terminal:
            return
        pod.finish_time = self.env.now
        if failed_message is not None:
            pod.phase = PodPhase.FAILED
            pod.message = failed_message
            self.pods_failed += 1
            self.api.record_event(Pod.KIND, pod.metadata, "Failed", failed_message)
        else:
            pod.phase = PodPhase.SUCCEEDED
            self.pods_completed += 1
            self.api.record_event(Pod.KIND, pod.metadata, "Completed", "All containers exited 0")
        self._running.pop(pod.metadata.uid, None)
        self.api.touch(Pod.KIND, pod)

    def _stop(self, pod: Pod, reason: str) -> None:
        process = self._running.pop(pod.metadata.uid, None)
        if process is not None and getattr(process, "is_alive", False):
            try:
                process.interrupt(reason)
            except SimulationError:  # pragma: no cover - interrupting a just-dead process
                pass

    def _fail(self, pod: Pod, message: str) -> None:
        pod.phase = PodPhase.FAILED
        pod.message = message
        pod.finish_time = self.env.now
        self.pods_failed += 1
        self.api.record_event(Pod.KIND, pod.metadata, "Failed", message)
        self.api.touch(Pod.KIND, pod)

    # -- failure injection ----------------------------------------------------------

    def node_failure(self) -> int:
        """Simulate the node dying: every non-terminal pod on it fails.

        Returns the number of pods affected.
        """
        self.node.mark_not_ready()
        affected = 0
        for pod in self.api.list(Pod.KIND):
            if pod.node_name == self.node.name and not pod.is_terminal:
                self._stop(pod, reason="node failure")
                self._fail(pod, "node failure")
                affected += 1
        self.api.touch(Node.KIND, self.node)
        return affected
