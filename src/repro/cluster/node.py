"""Cluster nodes: capacity, allocatable resources and conditions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union

from repro.cluster.objects import ObjectMeta
from repro.cluster.quantity import Quantity, parse_cpu, parse_memory

__all__ = ["NodeStatus", "Node"]


class NodeStatus(str, Enum):
    """Node readiness."""

    READY = "Ready"
    NOT_READY = "NotReady"
    CORDONED = "Cordoned"


@dataclass
class Node:
    """A worker (or combined control-plane/worker) machine."""

    metadata: ObjectMeta
    capacity: Quantity = field(default_factory=lambda: Quantity(cpu=4.0, memory=16 * 1024 ** 3))
    status: NodeStatus = NodeStatus.READY
    #: System reservation subtracted from capacity to obtain allocatable.
    system_reserved: Quantity = field(default_factory=lambda: Quantity(cpu=0.25, memory=512 * 1024 ** 2))

    KIND = "Node"

    @classmethod
    def build(cls, name: str, cpu: Union[str, int, float] = 4,
              memory: Union[str, int, float] = "16Gi",
              labels: "dict[str, str] | None" = None,
              system_reserved_cpu: Union[str, int, float] = "250m",
              system_reserved_memory: Union[str, int, float] = "512Mi") -> "Node":
        """Convenience constructor with quantity parsing."""
        return cls(
            metadata=ObjectMeta(name=name, labels=dict(labels or {})),
            capacity=Quantity(cpu=parse_cpu(cpu), memory=parse_memory(memory)),
            system_reserved=Quantity(
                cpu=parse_cpu(system_reserved_cpu), memory=parse_memory(system_reserved_memory)
            ),
        )

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def allocatable(self) -> Quantity:
        """Capacity minus the system reservation."""
        remaining = self.capacity - self.system_reserved
        return Quantity(cpu=max(0.0, remaining.cpu), memory=max(0, remaining.memory))

    @property
    def is_schedulable(self) -> bool:
        return self.status == NodeStatus.READY

    def cordon(self) -> None:
        """Mark the node unschedulable (existing pods keep running)."""
        self.status = NodeStatus.CORDONED

    def uncordon(self) -> None:
        self.status = NodeStatus.READY

    def mark_not_ready(self) -> None:
        self.status = NodeStatus.NOT_READY

    def matches_selector(self, selector: "dict[str, str]") -> bool:
        """True when the node's labels satisfy a pod's node selector."""
        return all(self.metadata.labels.get(key) == value for key, value in selector.items())
