"""Persistent storage: PVs, PVCs, storage classes and an NFS server.

The paper's testbed mounts an NFS server into MicroK8s through a PVC and
loads the genomics datasets onto it (paper §V-B).  Here the NFS server is an
in-memory object store keyed by path; a PVC bound to an NFS-backed PV exposes
read/write/stat operations against a sub-directory of that store.

Large synthetic objects can be stored either with real bytes (small tests) or
as *sized placeholders* (paper-scale datasets), so the data lake can reason
about multi-gigabyte files without allocating them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.exceptions import StorageError
from repro.cluster.apiserver import ApiServer, EventType, WatchEvent
from repro.cluster.objects import ObjectMeta, generate_name
from repro.cluster.quantity import parse_memory

__all__ = [
    "StoredObject",
    "NFSServer",
    "StorageClass",
    "PersistentVolume",
    "PersistentVolumeClaim",
    "StorageController",
]


@dataclass
class StoredObject:
    """A file-like object on the NFS server.

    ``payload`` holds real bytes for small objects; ``size_bytes`` is always
    authoritative (for placeholders it is the declared size).
    """

    path: str
    size_bytes: int
    payload: Optional[bytes] = None
    metadata: dict[str, str] = field(default_factory=dict)

    @property
    def is_placeholder(self) -> bool:
        return self.payload is None


class NFSServer:
    """A shared file store reachable from every node (the remote data lake)."""

    def __init__(self, name: str = "nfs", capacity: Union[str, int] = "1Ti") -> None:
        self.name = name
        self.capacity_bytes = parse_memory(capacity)
        self._objects: dict[str, StoredObject] = {}

    # -- writes -----------------------------------------------------------------

    def write(self, path: str, payload: "bytes | str", metadata: "dict[str, str] | None" = None) -> StoredObject:
        """Store real bytes under ``path``."""
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        obj = StoredObject(path=path, size_bytes=len(payload), payload=payload,
                           metadata=dict(metadata or {}))
        self._check_capacity(obj, replacing=self._objects.get(path))
        self._objects[path] = obj
        return obj

    def write_placeholder(self, path: str, size_bytes: int,
                          metadata: "dict[str, str] | None" = None) -> StoredObject:
        """Store a sized placeholder (no payload) under ``path``."""
        if size_bytes < 0:
            raise StorageError(f"negative object size {size_bytes}")
        obj = StoredObject(path=path, size_bytes=size_bytes, payload=None,
                           metadata=dict(metadata or {}))
        self._check_capacity(obj, replacing=self._objects.get(path))
        self._objects[path] = obj
        return obj

    def _check_capacity(self, obj: StoredObject, replacing: Optional[StoredObject]) -> None:
        used = self.used_bytes() - (replacing.size_bytes if replacing else 0)
        if used + obj.size_bytes > self.capacity_bytes:
            raise StorageError(
                f"NFS server {self.name} full: {used + obj.size_bytes} > {self.capacity_bytes}"
            )

    # -- reads ----------------------------------------------------------------------

    def read(self, path: str) -> bytes:
        obj = self.stat(path)
        if obj.payload is None:
            raise StorageError(f"{path} is a sized placeholder with no payload")
        return obj.payload

    def stat(self, path: str) -> StoredObject:
        try:
            return self._objects[path]
        except KeyError:
            raise StorageError(f"no such object: {path}") from None

    def exists(self, path: str) -> bool:
        return path in self._objects

    def listdir(self, prefix: str = "") -> list[str]:
        return sorted(path for path in self._objects if path.startswith(prefix))

    def delete(self, path: str) -> None:
        if path not in self._objects:
            raise StorageError(f"no such object: {path}")
        del self._objects[path]

    def used_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self._objects.values())

    def object_count(self) -> int:
        return len(self._objects)


@dataclass
class StorageClass:
    """A provisioner configuration (``nfs`` is the one LIDC uses)."""

    name: str
    provisioner: str = "nfs"
    server: Optional[NFSServer] = None

    KIND = "StorageClass"

    @property
    def metadata(self) -> ObjectMeta:  # API-server compatibility
        return ObjectMeta(name=self.name)


@dataclass
class PersistentVolume:
    """A provisioned volume backed by a directory on an NFS server."""

    metadata: ObjectMeta
    capacity_bytes: int
    storage_class: str
    server: NFSServer
    base_path: str
    claim_ref: Optional[str] = None

    KIND = "PersistentVolume"

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def is_bound(self) -> bool:
        return self.claim_ref is not None


@dataclass
class PersistentVolumeClaim:
    """A claim for storage; once bound it exposes file operations."""

    metadata: ObjectMeta
    requested_bytes: int
    storage_class: str = "nfs"
    volume: Optional[PersistentVolume] = None
    phase: str = "Pending"  # Pending | Bound

    KIND = "PersistentVolumeClaim"

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def is_bound(self) -> bool:
        return self.phase == "Bound" and self.volume is not None

    # -- file operations through the bound volume ------------------------------------

    def _resolve(self, path: str) -> tuple[NFSServer, str]:
        if not self.is_bound:
            raise StorageError(f"PVC {self.name} is not bound")
        assert self.volume is not None
        return self.volume.server, f"{self.volume.base_path}/{path.lstrip('/')}"

    def write(self, path: str, payload: "bytes | str", metadata: "dict[str, str] | None" = None) -> StoredObject:
        server, full_path = self._resolve(path)
        return server.write(full_path, payload, metadata)

    def write_placeholder(self, path: str, size_bytes: int,
                          metadata: "dict[str, str] | None" = None) -> StoredObject:
        server, full_path = self._resolve(path)
        return server.write_placeholder(full_path, size_bytes, metadata)

    def read(self, path: str) -> bytes:
        server, full_path = self._resolve(path)
        return server.read(full_path)

    def stat(self, path: str) -> StoredObject:
        server, full_path = self._resolve(path)
        return server.stat(full_path)

    def exists(self, path: str) -> bool:
        if not self.is_bound:
            return False
        server, full_path = self._resolve(path)
        return server.exists(full_path)

    def listdir(self, prefix: str = "") -> list[str]:
        server, base = self._resolve(prefix)
        stripped = []
        root = f"{self.volume.base_path}/"  # type: ignore[union-attr]
        for path in server.listdir(base):
            stripped.append(path[len(root):] if path.startswith(root) else path)
        return stripped

    def used_bytes(self) -> int:
        if not self.is_bound:
            return 0
        assert self.volume is not None
        root = f"{self.volume.base_path}/"
        return sum(
            self.volume.server.stat(path).size_bytes
            for path in self.volume.server.listdir(root)
        )


class StorageController:
    """Dynamic provisioner: binds PVCs to freshly provisioned NFS-backed PVs."""

    def __init__(self, api: ApiServer, default_server: Optional[NFSServer] = None) -> None:
        self.api = api
        self.default_server = default_server or NFSServer()
        self._classes: dict[str, StorageClass] = {
            "nfs": StorageClass(name="nfs", provisioner="nfs", server=self.default_server)
        }
        self.volumes_provisioned = 0
        api.watch(PersistentVolumeClaim.KIND, self._on_pvc_event, replay_existing=True)

    def add_storage_class(self, storage_class: StorageClass) -> None:
        self._classes[storage_class.name] = storage_class

    def create_pvc(self, name: str, size: Union[str, int], storage_class: str = "nfs",
                   namespace: str = "ndnk8s") -> PersistentVolumeClaim:
        """Create a claim; the controller binds it immediately (dynamic provisioning)."""
        pvc = PersistentVolumeClaim(
            metadata=ObjectMeta(name=name, namespace=namespace),
            requested_bytes=parse_memory(size),
            storage_class=storage_class,
        )
        self.api.create(PersistentVolumeClaim.KIND, pvc)
        return pvc

    def _on_pvc_event(self, event: WatchEvent) -> None:
        if event.type != EventType.ADDED:
            return
        self._bind(event.obj)

    def _bind(self, pvc: PersistentVolumeClaim) -> None:
        if pvc.is_bound:
            return
        storage_class = self._classes.get(pvc.storage_class)
        if storage_class is None or storage_class.server is None:
            raise StorageError(f"unknown storage class {pvc.storage_class!r}")
        pv = PersistentVolume(
            metadata=ObjectMeta(name=generate_name(f"pv-{pvc.name}-")),
            capacity_bytes=pvc.requested_bytes,
            storage_class=pvc.storage_class,
            server=storage_class.server,
            base_path=f"/exports/{pvc.metadata.namespace}/{pvc.name}",
            claim_ref=pvc.name,
        )
        self.api.create(PersistentVolume.KIND, pv)
        self.volumes_provisioned += 1
        pvc.volume = pv
        pvc.phase = "Bound"
        self.api.touch(PersistentVolumeClaim.KIND, pvc)
