"""Kubernetes-style resource quantities.

CPU quantities are measured in cores and accept the milli suffix (``500m``);
memory quantities are measured in bytes and accept binary (``Ki``, ``Mi``,
``Gi``, ``Ti``) and decimal (``K``/``k``, ``M``, ``G``, ``T``) suffixes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.exceptions import QuantityParseError

__all__ = ["Quantity", "parse_cpu", "parse_memory", "format_memory", "format_cpu"]

_BINARY_SUFFIXES = {
    "Ki": 1024,
    "Mi": 1024 ** 2,
    "Gi": 1024 ** 3,
    "Ti": 1024 ** 4,
    "Pi": 1024 ** 5,
}
_DECIMAL_SUFFIXES = {
    "k": 1000,
    "K": 1000,
    "M": 1000 ** 2,
    "G": 1000 ** 3,
    "T": 1000 ** 4,
    "P": 1000 ** 5,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]*)\s*$")


def parse_cpu(value: Union[str, int, float]) -> float:
    """Parse a CPU quantity into cores (``"500m"`` → 0.5, ``2`` → 2.0)."""
    if isinstance(value, (int, float)):
        if value < 0:
            raise QuantityParseError(f"negative CPU quantity {value!r}")
        return float(value)
    match = _QUANTITY_RE.match(value)
    if not match:
        raise QuantityParseError(f"malformed CPU quantity {value!r}")
    number, suffix = match.groups()
    amount = float(number)
    if suffix == "":
        return amount
    if suffix == "m":
        return amount / 1000.0
    raise QuantityParseError(f"unknown CPU suffix {suffix!r} in {value!r}")


def parse_memory(value: Union[str, int, float]) -> int:
    """Parse a memory quantity into bytes (``"4Gi"`` → 4294967296)."""
    if isinstance(value, (int, float)):
        if value < 0:
            raise QuantityParseError(f"negative memory quantity {value!r}")
        return int(value)
    match = _QUANTITY_RE.match(value)
    if not match:
        raise QuantityParseError(f"malformed memory quantity {value!r}")
    number, suffix = match.groups()
    amount = float(number)
    if suffix == "":
        scale = 1
    elif suffix in _BINARY_SUFFIXES:
        scale = _BINARY_SUFFIXES[suffix]
    elif suffix in _DECIMAL_SUFFIXES:
        scale = _DECIMAL_SUFFIXES[suffix]
    else:
        raise QuantityParseError(f"unknown memory suffix {suffix!r} in {value!r}")
    return int(amount * scale)


def format_memory(num_bytes: "int | float") -> str:
    """Format bytes using the largest exact-ish binary suffix (``"4Gi"``)."""
    num_bytes = float(num_bytes)
    for suffix in ("Pi", "Ti", "Gi", "Mi", "Ki"):
        scale = _BINARY_SUFFIXES[suffix]
        if num_bytes >= scale:
            value = num_bytes / scale
            if abs(value - round(value)) < 1e-9:
                return f"{int(round(value))}{suffix}"
            return f"{value:.2f}{suffix}"
    return f"{int(num_bytes)}"


def format_cpu(cores: float) -> str:
    """Format cores using the milli suffix when fractional (``0.5`` → ``"500m"``)."""
    if abs(cores - round(cores)) < 1e-9:
        return str(int(round(cores)))
    return f"{int(round(cores * 1000))}m"


@dataclass(frozen=True)
class Quantity:
    """A pair of CPU (cores) and memory (bytes) amounts.

    Supports addition, subtraction and the "fits within" comparison the
    scheduler uses.
    """

    cpu: float = 0.0
    memory: int = 0

    @classmethod
    def parse(cls, cpu: Union[str, int, float] = 0, memory: Union[str, int, float] = 0) -> "Quantity":
        return cls(cpu=parse_cpu(cpu), memory=parse_memory(memory))

    def __add__(self, other: "Quantity") -> "Quantity":
        return Quantity(cpu=self.cpu + other.cpu, memory=self.memory + other.memory)

    def __sub__(self, other: "Quantity") -> "Quantity":
        return Quantity(cpu=self.cpu - other.cpu, memory=self.memory - other.memory)

    def fits_within(self, other: "Quantity") -> bool:
        """True when this request fits inside ``other`` (capacity)."""
        return self.cpu <= other.cpu + 1e-9 and self.memory <= other.memory

    def is_nonnegative(self) -> bool:
        return self.cpu >= -1e-9 and self.memory >= 0

    def scaled(self, factor: float) -> "Quantity":
        return Quantity(cpu=self.cpu * factor, memory=int(self.memory * factor))

    def __str__(self) -> str:
        return f"cpu={format_cpu(self.cpu)},memory={format_memory(self.memory)}"
