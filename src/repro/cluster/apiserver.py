"""The cluster API server: a typed object store with watches and events.

Controllers (scheduler, job controller, kubelets, service endpoints) interact
with cluster state exclusively through this store, mirroring how Kubernetes
controllers work: they register watch callbacks and react to ADDED / MODIFIED
/ DELETED notifications.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Optional

from repro.exceptions import ObjectAlreadyExists, ObjectNotFound
from repro.cluster.objects import ObjectMeta

__all__ = ["EventType", "WatchEvent", "ClusterEvent", "ApiServer"]


class EventType(str, Enum):
    """Watch notification types."""

    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclass(frozen=True)
class WatchEvent:
    """A single watch notification."""

    type: EventType
    kind: str
    obj: Any


@dataclass(frozen=True)
class ClusterEvent:
    """A recorded cluster event (``kubectl get events`` equivalent)."""

    time: float
    kind: str
    name: str
    namespace: str
    reason: str
    message: str


@dataclass
class _KindStore:
    objects: dict[tuple[str, str], Any] = field(default_factory=dict)
    watchers: list[Callable[[WatchEvent], None]] = field(default_factory=list)


class ApiServer:
    """In-memory API object store keyed by (kind, namespace, name)."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._stores: dict[str, _KindStore] = {}
        self._uid_counter = itertools.count(1)
        self.events: list[ClusterEvent] = []
        self.namespaces: set[str] = {"default", "kube-system", "ndnk8s"}

    # -- namespaces -----------------------------------------------------------

    def create_namespace(self, name: str) -> None:
        self.namespaces.add(name)

    def has_namespace(self, name: str) -> bool:
        return name in self.namespaces

    # -- object CRUD ------------------------------------------------------------

    def _store(self, kind: str) -> _KindStore:
        return self._stores.setdefault(kind, _KindStore())

    def create(self, kind: str, obj: Any) -> Any:
        """Store a new object; assigns uid and creation time."""
        meta: ObjectMeta = obj.metadata
        if not self.has_namespace(meta.namespace):
            self.create_namespace(meta.namespace)
        store = self._store(kind)
        if meta.key() in store.objects:
            raise ObjectAlreadyExists(f"{kind} {meta.namespace}/{meta.name} already exists")
        meta.uid = f"{kind.lower()}-{next(self._uid_counter)}"
        meta.creation_time = self._clock()
        store.objects[meta.key()] = obj
        self._notify(kind, EventType.ADDED, obj)
        return obj

    def get(self, kind: str, name: str, namespace: str = "default") -> Any:
        store = self._store(kind)
        try:
            return store.objects[(namespace, name)]
        except KeyError:
            raise ObjectNotFound(kind, name, namespace) from None

    def try_get(self, kind: str, name: str, namespace: str = "default") -> Optional[Any]:
        return self._store(kind).objects.get((namespace, name))

    def exists(self, kind: str, name: str, namespace: str = "default") -> bool:
        return (namespace, name) in self._store(kind).objects

    def list(self, kind: str, namespace: Optional[str] = None,
             selector: Optional[Callable[[Any], bool]] = None) -> list[Any]:
        """List objects of ``kind``, optionally filtered by namespace and predicate."""
        objects: Iterable[Any] = self._store(kind).objects.values()
        if namespace is not None:
            objects = [obj for obj in objects if obj.metadata.namespace == namespace]
        if selector is not None:
            objects = [obj for obj in objects if selector(obj)]
        return list(objects)

    def update(self, kind: str, obj: Any) -> Any:
        """Replace an existing object and notify watchers."""
        meta: ObjectMeta = obj.metadata
        store = self._store(kind)
        if meta.key() not in store.objects:
            raise ObjectNotFound(kind, meta.name, meta.namespace)
        store.objects[meta.key()] = obj
        self._notify(kind, EventType.MODIFIED, obj)
        return obj

    def touch(self, kind: str, obj: Any) -> Any:
        """Notify watchers that ``obj`` changed in place (objects are mutable here)."""
        return self.update(kind, obj)

    def delete(self, kind: str, name: str, namespace: str = "default") -> Any:
        store = self._store(kind)
        try:
            obj = store.objects.pop((namespace, name))
        except KeyError:
            raise ObjectNotFound(kind, name, namespace) from None
        self._notify(kind, EventType.DELETED, obj)
        return obj

    def count(self, kind: str) -> int:
        return len(self._store(kind).objects)

    # -- watches ------------------------------------------------------------------

    def watch(self, kind: str, callback: Callable[[WatchEvent], None],
              replay_existing: bool = True) -> Callable[[], None]:
        """Subscribe to changes of ``kind``; returns an unsubscribe callable.

        When ``replay_existing`` is true the callback immediately receives an
        ``ADDED`` event for every object already stored (list+watch semantics).
        """
        store = self._store(kind)
        store.watchers.append(callback)
        if replay_existing:
            for obj in list(store.objects.values()):
                callback(WatchEvent(type=EventType.ADDED, kind=kind, obj=obj))

        def unsubscribe() -> None:
            if callback in store.watchers:
                store.watchers.remove(callback)

        return unsubscribe

    def _notify(self, kind: str, event_type: EventType, obj: Any) -> None:
        event = WatchEvent(type=event_type, kind=kind, obj=obj)
        for watcher in list(self._store(kind).watchers):
            watcher(event)

    # -- events -----------------------------------------------------------------------

    def record_event(self, kind: str, obj_meta: ObjectMeta, reason: str, message: str) -> ClusterEvent:
        """Record a cluster event (for observability and tests)."""
        event = ClusterEvent(
            time=self._clock(),
            kind=kind,
            name=obj_meta.name,
            namespace=obj_meta.namespace,
            reason=reason,
            message=message,
        )
        self.events.append(event)
        return event

    def events_for(self, name: str, kind: Optional[str] = None) -> list[ClusterEvent]:
        return [
            ev for ev in self.events
            if ev.name == name and (kind is None or ev.kind == kind)
        ]
