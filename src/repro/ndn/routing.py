"""Decentralized prefix routing (the reproduction's NLSR equivalent).

Each forwarder runs a :class:`RoutingDaemon`.  Daemons on adjacent forwarders
exchange :class:`PrefixAnnouncement` messages over their shared link; each
daemon keeps the lowest-cost advertisement per (prefix, origin) and installs a
FIB route pointing back toward the neighbour the advertisement arrived from.

This is a distance-vector protocol with sequence numbers for withdrawal —
deliberately simple, but it gives LIDC exactly what the paper needs:

* any cluster can announce ``/ndn/k8s/compute`` and become reachable from any
  client without central coordination;
* clusters joining or leaving the overlay propagate automatically
  (paper §I: "supports seamless job placement, addition and removal of
  clusters").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import NDNError
from repro.ndn.face import Face
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name

__all__ = ["PrefixAnnouncement", "RoutingDaemon", "Adjacency"]


@dataclass(frozen=True)
class PrefixAnnouncement:
    """An advertised (or withdrawn) name prefix."""

    prefix: Name
    origin: str
    cost: float = 0.0
    seq: int = 0
    withdrawn: bool = False

    def key(self) -> tuple[Name, str]:
        return (self.prefix, self.origin)


@dataclass
class Adjacency:
    """A routing adjacency to a neighbouring daemon."""

    neighbor: "RoutingDaemon"
    local_face: Face
    link_cost: float = 1.0


@dataclass
class _RibEntry:
    """Best advertisement known for one (prefix, origin) pair."""

    announcement: PrefixAnnouncement
    via_face: Optional[Face] = None  # None for locally-originated prefixes
    learned_from: Optional[str] = None
    routes: set[tuple[str, int]] = field(default_factory=set)


class RoutingDaemon:
    """Prefix advertisement and propagation for one forwarder."""

    def __init__(self, forwarder: Forwarder, node_name: Optional[str] = None) -> None:
        self.forwarder = forwarder
        self.node_name = node_name or forwarder.name
        self._adjacencies: dict[str, Adjacency] = {}
        self._rib: dict[tuple[Name, str], _RibEntry] = {}
        self._seq = 0
        self.announcements_sent = 0
        self.announcements_received = 0

    # -- adjacency management ---------------------------------------------------

    def add_adjacency(self, neighbor: "RoutingDaemon", local_face: Face, link_cost: float = 1.0) -> None:
        """Declare ``neighbor`` reachable through ``local_face``."""
        if local_face.face_id < 0:
            raise NDNError("adjacency face is not attached to the forwarder")
        self._adjacencies[neighbor.node_name] = Adjacency(
            neighbor=neighbor, local_face=local_face, link_cost=link_cost
        )
        # Share everything we already know with the new neighbour.
        for entry in list(self._rib.values()):
            self._send_to(neighbor.node_name, self._exported(entry.announcement))

    def remove_adjacency(self, neighbor_name: str) -> None:
        self._adjacencies.pop(neighbor_name, None)

    def share_rib(self, neighbor_name: str) -> None:
        """Send every RIB entry to one neighbour (full-table refresh)."""
        for entry in list(self._rib.values()):
            self._send_to(neighbor_name, self._exported(entry.announcement))

    @staticmethod
    def peer(daemon_a: "RoutingDaemon", face_a: Face, daemon_b: "RoutingDaemon", face_b: Face,
             link_cost: float = 1.0) -> None:
        """Create a symmetric adjacency between two daemons.

        Both sides exchange their full RIBs once both directions exist, so
        prefixes announced before the adjacency was formed still propagate.
        """
        daemon_a.add_adjacency(daemon_b, face_a, link_cost)
        daemon_b.add_adjacency(daemon_a, face_b, link_cost)
        daemon_a.share_rib(daemon_b.node_name)
        daemon_b.share_rib(daemon_a.node_name)

    # -- local origination --------------------------------------------------------

    def announce(self, prefix: "Name | str", cost: float = 0.0) -> PrefixAnnouncement:
        """Originate an advertisement for a locally-served prefix."""
        self._seq += 1
        announcement = PrefixAnnouncement(
            prefix=Name(prefix), origin=self.node_name, cost=cost, seq=self._seq
        )
        self._install(announcement, via_face=None, learned_from=None)
        self._flood(announcement, exclude=None)
        return announcement

    def withdraw(self, prefix: "Name | str") -> Optional[PrefixAnnouncement]:
        """Withdraw a locally-originated prefix (cluster leaving the overlay)."""
        key = (Name(prefix), self.node_name)
        entry = self._rib.get(key)
        if entry is None:
            return None
        self._seq += 1
        withdrawal = replace(entry.announcement, withdrawn=True, seq=self._seq)
        self._remove(key)
        self._flood(withdrawal, exclude=None)
        return withdrawal

    def shutdown(self) -> None:
        """Withdraw every locally-originated prefix (node going away)."""
        local = [key for key, entry in self._rib.items() if entry.via_face is None]
        for prefix, _origin in local:
            self.withdraw(prefix)

    # -- receiving advertisements ---------------------------------------------------

    def receive(self, announcement: PrefixAnnouncement, from_neighbor: str) -> None:
        """Handle an advertisement arriving from an adjacent daemon."""
        self.announcements_received += 1
        adjacency = self._adjacencies.get(from_neighbor)
        if adjacency is None:
            return
        key = announcement.key()
        existing = self._rib.get(key)

        if announcement.withdrawn:
            if existing is None or existing.announcement.seq > announcement.seq:
                return
            self._remove(key)
            self._flood(announcement, exclude=from_neighbor)
            return

        total_cost = announcement.cost + adjacency.link_cost
        effective = replace(announcement, cost=total_cost)
        if existing is not None:
            if existing.via_face is None:
                return  # we originate this prefix ourselves; ignore echoes
            if existing.announcement.seq >= announcement.seq and existing.announcement.cost <= total_cost:
                return  # nothing better
        self._install(effective, via_face=adjacency.local_face, learned_from=from_neighbor)
        self._flood(effective, exclude=from_neighbor)

    # -- internals ----------------------------------------------------------------------

    def _exported(self, announcement: PrefixAnnouncement) -> PrefixAnnouncement:
        return announcement

    def _install(self, announcement: PrefixAnnouncement, via_face: Optional[Face],
                 learned_from: Optional[str]) -> None:
        key = announcement.key()
        existing = self._rib.get(key)
        if existing is not None and existing.via_face is not None:
            # Replace the previous route for this (prefix, origin).
            self.forwarder.fib.remove_route(announcement.prefix, existing.via_face.face_id)
        entry = _RibEntry(announcement=announcement, via_face=via_face, learned_from=learned_from)
        self._rib[key] = entry
        if via_face is not None:
            self.forwarder.register_prefix(announcement.prefix, via_face, cost=announcement.cost)

    def _remove(self, key: tuple[Name, str]) -> None:
        entry = self._rib.pop(key, None)
        if entry is None:
            return
        if entry.via_face is not None:
            self.forwarder.fib.remove_route(entry.announcement.prefix, entry.via_face.face_id)

    def _flood(self, announcement: PrefixAnnouncement, exclude: Optional[str]) -> None:
        for neighbor_name in list(self._adjacencies):
            if neighbor_name == exclude:
                continue
            self._send_to(neighbor_name, announcement)

    def _send_to(self, neighbor_name: str, announcement: PrefixAnnouncement) -> None:
        adjacency = self._adjacencies.get(neighbor_name)
        if adjacency is None:
            return
        self.announcements_sent += 1
        adjacency.neighbor.receive(announcement, from_neighbor=self.node_name)

    # -- queries ---------------------------------------------------------------------------

    def known_prefixes(self) -> list[Name]:
        """Every prefix present in the RIB (locally originated or learned)."""
        return sorted({prefix for prefix, _origin in self._rib}, key=str)

    def origins_for(self, prefix: "Name | str") -> list[str]:
        """Which origins advertise ``prefix`` (exact match)."""
        prefix = Name(prefix)
        return sorted(origin for (pfx, origin) in self._rib if pfx == prefix)

    def rib_size(self) -> int:
        return len(self._rib)
