"""Content Store: the forwarder's in-network cache.

The Content Store satisfies Interests from previously-seen Data, which is the
mechanism behind the paper's future-work item on result caching: identical
computation results published under the same name are answered from the cache
without re-execution.

Eviction policies: LRU (default), LFU and FIFO.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.exceptions import NDNError
from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest

__all__ = ["CachePolicy", "ContentStore", "CsEntry"]


class CachePolicy(str, Enum):
    """Content-store eviction policy."""

    LRU = "lru"
    LFU = "lfu"
    FIFO = "fifo"


@dataclass
class CsEntry:
    """One cached Data packet plus bookkeeping."""

    data: Data
    arrival_time: float
    last_access: float
    hits: int = 0

    @property
    def name(self) -> Name:
        return self.data.name

    def is_fresh(self, now: float) -> bool:
        """Freshness per the Data's freshness period (0 = always stale)."""
        if self.data.freshness_period <= 0:
            return False
        return (now - self.arrival_time) <= self.data.freshness_period


class ContentStore:
    """A fixed-capacity cache of Data packets keyed by exact name."""

    def __init__(
        self,
        capacity: int = 1024,
        policy: "CachePolicy | str" = CachePolicy.LRU,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 0:
            raise NDNError(f"content store capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.policy = CachePolicy(policy)
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[Name, CsEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: "Name | str") -> bool:
        return Name(name) in self._entries

    # -- insertion -----------------------------------------------------------

    def insert(self, data: Data) -> None:
        """Cache ``data`` (no-op when capacity is zero)."""
        if self.capacity == 0:
            return
        now = self._clock()
        name = data.name
        if name in self._entries:
            # Refresh the existing entry.
            entry = self._entries.pop(name)
            entry.data = data
            entry.arrival_time = now
            entry.last_access = now
            self._entries[name] = entry
            return
        while len(self._entries) >= self.capacity:
            self._evict_one()
        self._entries[name] = CsEntry(data=data, arrival_time=now, last_access=now)
        self.insertions += 1

    def _evict_one(self) -> None:
        if not self._entries:
            return
        if self.policy == CachePolicy.FIFO:
            victim = next(iter(self._entries))
        elif self.policy == CachePolicy.LRU:
            victim = min(self._entries, key=lambda n: self._entries[n].last_access)
        else:  # LFU
            victim = min(
                self._entries, key=lambda n: (self._entries[n].hits, self._entries[n].last_access)
            )
        del self._entries[victim]
        self.evictions += 1

    # -- lookup ----------------------------------------------------------------

    def find(self, interest: Interest) -> Optional[Data]:
        """Return cached Data satisfying ``interest``, or ``None``.

        Exact-name lookups are O(1); prefix lookups scan the store and return
        the entry with the smallest name (deterministic choice).
        """
        now = self._clock()
        if not interest.can_be_prefix:
            entry = self._entries.get(interest.name)
            if entry is not None and self._acceptable(entry, interest, now):
                return self._hit(entry, now)
            self.misses += 1
            return None
        candidates = [
            entry
            for name, entry in self._entries.items()
            if interest.name.is_prefix_of(name) and self._acceptable(entry, interest, now)
        ]
        if not candidates:
            self.misses += 1
            return None
        best = min(candidates, key=lambda e: e.name)
        return self._hit(best, now)

    def _acceptable(self, entry: CsEntry, interest: Interest, now: float) -> bool:
        if interest.must_be_fresh and not entry.is_fresh(now):
            return False
        return True

    def _hit(self, entry: CsEntry, now: float) -> Data:
        entry.hits += 1
        entry.last_access = now
        self.hits += 1
        return entry.data

    # -- maintenance ------------------------------------------------------------

    def erase(self, prefix: "Name | str") -> int:
        """Remove every entry under ``prefix``; returns the count removed."""
        prefix = Name(prefix)
        victims = [name for name in self._entries if prefix.is_prefix_of(name)]
        for name in victims:
            del self._entries[name]
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Summary statistics used by the cache ablation benchmark."""
        return {
            "size": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_ratio": self.hit_ratio,
            "insertions": float(self.insertions),
            "evictions": float(self.evictions),
        }
