"""Content Store: the forwarder's in-network cache.

The Content Store satisfies Interests from previously-seen Data, which is the
mechanism behind the paper's future-work item on result caching: identical
computation results published under the same name are answered from the cache
without re-execution.

Eviction policies: LRU (default), LFU and FIFO.  All three evict in O(1):

* LRU/FIFO keep the entry dict in eviction order (``move_to_end`` on access
  for LRU; arrival order for FIFO) and evict with ``popitem(last=False)``.
* LFU keeps classic O(1) frequency buckets — one ordered dict per hit count,
  each ordered by recency — and evicts the least-recent entry of the lowest
  populated bucket.

``can_be_prefix`` lookups and prefix erasure descend a shared
:class:`~repro.ndn.nametree.NameTree` index instead of scanning every entry,
so their cost is bounded by the matching subtree, not the store size.

The store is transport-agnostic: entries and lookups may be decoded packets
or :class:`~repro.ndn.packet.WirePacket` views — a transiting Data is cached
and re-served as its wire buffer without ever being decoded on this node.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.exceptions import NDNError
from repro.ndn.name import Name
from repro.ndn.nametree import NameTree, as_name
from repro.ndn.packet import DataLike, InterestLike

__all__ = ["CachePolicy", "ContentStore", "CsEntry"]


class CachePolicy(str, Enum):
    """Content-store eviction policy."""

    LRU = "lru"
    LFU = "lfu"
    FIFO = "fifo"


@dataclass(slots=True)
class CsEntry:
    """One cached Data packet (object or wire view) plus bookkeeping.

    Slotted (lint rule RL006): a populated store holds one of these per
    cached Data, so the per-instance ``__dict__`` would dominate the
    store's own memory at overlay scale.
    """

    data: DataLike
    arrival_time: float
    last_access: float
    hits: int = 0

    @property
    def name(self) -> Name:
        return self.data.name

    def is_fresh(self, now: float) -> bool:
        """Freshness per the Data's freshness period (0 = always stale)."""
        if self.data.freshness_period <= 0:
            return False
        return (now - self.arrival_time) <= self.data.freshness_period


class ContentStore:
    """A fixed-capacity cache of Data packets keyed by exact name.

    ``capacity=None`` makes the store unbounded: eviction can never
    trigger, so the hit path skips recency/frequency bookkeeping entirely
    (it still maintains per-entry hit counts and access times, from which
    the eviction order is rebuilt if the store is later bounded again).
    """

    def __init__(
        self,
        capacity: "int | None" = 1024,
        policy: "CachePolicy | str" = CachePolicy.LRU,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise NDNError(f"content store capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self.policy = CachePolicy(policy)
        # Policy flags hoisted out of the hot paths: insert/find dispatch on
        # plain attribute truthiness instead of enum comparisons.  With an
        # unbounded store (capacity=None) eviction can never trigger, so the
        # hit path skips all recency/frequency bookkeeping — ``move_to_end``
        # per exact-match hit was ~8% of the insert/find microbench.
        self._is_lru = self.policy == CachePolicy.LRU
        self._is_lfu = self.policy == CachePolicy.LFU
        self._evictable = capacity is not None
        self._clock = clock or (lambda: 0.0)
        #: Entries in eviction order: recency for LRU, arrival for FIFO.
        #: (LFU eviction order lives in the frequency buckets instead.)
        self._entries: "OrderedDict[Name, CsEntry]" = OrderedDict()
        #: Prefix index over the same entries, for can_be_prefix lookups and
        #: prefix erasure.  Built lazily on the first prefix operation so
        #: exact-match-only workloads never pay for its maintenance, then
        #: kept in sync incrementally.
        self._index: Optional[NameTree] = None
        #: LFU state: hit-count -> names at that count, each in recency order.
        self._freq_buckets: dict[int, "OrderedDict[Name, None]"] = {}
        self._min_freq = 0
        #: Coherence hook: called with each Name leaving the store (capacity
        #: eviction, ``erase`` or ``clear``) so an upstream exact-match
        #: mirror — e.g. the shard dispatcher's hot cache — can drop its
        #: copy the moment this store stops vouching for it.  Refreshing an
        #: existing entry in place does not fire it.
        self.on_evict: Optional[Callable[[Name], None]] = None
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: "Name | str") -> bool:
        return as_name(name) in self._entries

    def names(self) -> list[Name]:
        """Every cached name, in eviction order (control-plane sweeps only)."""
        return list(self._entries.keys())

    # -- capacity ------------------------------------------------------------

    @property
    def capacity(self) -> "int | None":
        """Maximum entry count; ``None`` means unbounded (never evicts)."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: "int | None") -> None:
        if value is not None and value < 0:
            raise NDNError(f"content store capacity must be non-negative, got {value}")
        was_evictable = self._evictable
        self._capacity = value
        self._evictable = value is not None
        if self._evictable and not was_evictable:
            # Unbounded stores skip recency/frequency bookkeeping, so on the
            # way back to a bounded store rebuild it from the per-entry
            # counters that *are* maintained.  FIFO needs no rebuild: the
            # dict insertion order *is* the arrival order (unbounded
            # refreshes never reorder).  LRU re-sorts by access time; LFU
            # rebuilds its buckets from hit counts, recency-ordered within
            # each bucket.
            if self._is_lru:
                self._entries = OrderedDict(
                    sorted(self._entries.items(), key=lambda item: item[1].last_access)
                )
            elif self._is_lfu:
                self._freq_buckets = {}
                for name, entry in sorted(
                    self._entries.items(), key=lambda item: item[1].last_access
                ):
                    self._freq_buckets.setdefault(entry.hits, OrderedDict())[name] = None
                self._min_freq = min(self._freq_buckets, default=0)
            while len(self._entries) > value:
                self._evict_one()

    # -- insertion -----------------------------------------------------------

    def insert(self, data: DataLike) -> None:
        """Cache ``data`` (no-op when capacity is zero)."""
        if self._capacity == 0:
            return
        now = self._clock()
        name = data.name
        entries = self._entries
        if name in entries:
            entry = entries[name]
            # Refresh the existing entry in place.  FIFO keeps the original
            # arrival position: refreshing must not grant another trip through
            # the queue, or FIFO silently degrades into LRU-on-write.
            entry.data = data
            entry.arrival_time = now
            entry.last_access = now
            if not self._evictable:
                return
            if self._is_lru:
                entries.move_to_end(name)
            elif self._is_lfu:
                self._freq_buckets[entry.hits].move_to_end(name)
            # Capacity may have been lowered since this entry was cached;
            # the refresh path must honour it too.
            while len(entries) > self._capacity:
                self._evict_one()
            return
        if self._evictable:
            while len(entries) >= self._capacity:
                self._evict_one()
        entry = CsEntry(data=data, arrival_time=now, last_access=now)
        entries[name] = entry
        if self._index is not None:
            self._index.set(name, entry)
        if self._is_lfu and self._evictable:
            self._freq_buckets.setdefault(0, OrderedDict())[name] = None
            self._min_freq = 0
        self.insertions += 1

    def _evict_one(self) -> None:
        if not self._entries:
            return
        if self._is_lfu:
            victim = self._pop_lfu_victim()
            del self._entries[victim]
        else:  # LRU and FIFO both evict the front of the ordered dict
            victim, _ = self._entries.popitem(last=False)
        if self._index is not None:
            self._index.remove(victim)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(victim)

    def _pop_lfu_victim(self) -> Name:
        """Least-frequent (ties: least-recent) name, removed from its bucket."""
        bucket = self._freq_buckets.get(self._min_freq)
        if not bucket:
            # Arbitrary removals (erase/clear of other entries) can stale the
            # pointer; recompute it from the populated buckets.
            self._min_freq = min(freq for freq, names in self._freq_buckets.items() if names)
            bucket = self._freq_buckets[self._min_freq]
        victim, _ = bucket.popitem(last=False)
        if not bucket:
            del self._freq_buckets[self._min_freq]
        return victim

    def _ensure_index(self) -> NameTree:
        """The prefix index, built from the live entries on first use."""
        if self._index is None:
            self._index = NameTree()
            for name, entry in self._entries.items():
                self._index.set(name, entry)
        return self._index

    def _unindex(self, name: Name, entry: CsEntry) -> None:
        """Remove bucket bookkeeping for an entry leaving outside eviction."""
        if self._is_lfu:
            bucket = self._freq_buckets.get(entry.hits)
            if bucket is not None:
                bucket.pop(name, None)
                if not bucket:
                    del self._freq_buckets[entry.hits]

    # -- lookup ----------------------------------------------------------------

    def find(self, interest: InterestLike) -> Optional[DataLike]:
        """Return cached Data satisfying ``interest``, or ``None``.

        Exact-name lookups are O(1); prefix lookups descend the name-tree
        index and return the canonically-smallest acceptable entry
        (deterministic choice, identical to scanning for the minimum name).
        """
        now = self._clock()
        name = interest.name
        if not interest.can_be_prefix:
            entry = self._entries.get(name)
            if entry is None or not self._acceptable(entry, interest, now):
                self.misses += 1
                return None
            return self._hit(entry, now, name)
        item = self._ensure_index().first_under(
            name,
            lambda _name, entry: self._acceptable(entry, interest, now),
        )
        if item is None:
            self.misses += 1
            return None
        return self._hit(item[1], now, item[0])

    def _acceptable(self, entry: CsEntry, interest: InterestLike, now: float) -> bool:
        if interest.must_be_fresh and not entry.is_fresh(now):
            return False
        return True

    def _hit(self, entry: CsEntry, now: float, name: Name) -> DataLike:
        if not self._evictable:
            # Eviction can never trigger: recency/frequency order is
            # irrelevant, so skip the O(1)-but-not-free bookkeeping and keep
            # only the per-entry counters (cheap, and enough to rebuild the
            # order if the store is later bounded again).
            entry.hits += 1
            entry.last_access = now
            self.hits += 1
            return entry.data
        if self._is_lru:
            self._entries.move_to_end(name)
        elif self._is_lfu:
            # Promote to the next frequency bucket (appended = most recent).
            bucket = self._freq_buckets.get(entry.hits)
            if bucket is not None:
                bucket.pop(name, None)
                if not bucket:
                    del self._freq_buckets[entry.hits]
            self._freq_buckets.setdefault(entry.hits + 1, OrderedDict())[name] = None
            if self._min_freq == entry.hits and entry.hits not in self._freq_buckets:
                self._min_freq = entry.hits + 1
        entry.hits += 1
        entry.last_access = now
        self.hits += 1
        return entry.data

    def arrival(self, name: Name) -> Optional[float]:
        """When the entry under exactly ``name`` arrived, or ``None``.

        This is the store's authoritative freshness anchor: a mirror tier
        (the shard dispatcher's hot cache) must age its copy from the CS
        arrival time, not from whenever it happened to observe the Data —
        otherwise a stale re-serve would restart the freshness window.
        """
        entry = self._entries.get(name)
        return None if entry is None else entry.arrival_time

    # -- maintenance ------------------------------------------------------------

    def erase(self, prefix: "Name | str") -> int:
        """Remove every entry under ``prefix``; returns the count removed."""
        index = self._ensure_index()
        victims = list(index.items_under(prefix))
        for name, entry in victims:
            del self._entries[name]
            index.remove(name)
            self._unindex(name, entry)
            if self.on_evict is not None:
                self.on_evict(name)
        return len(victims)

    def clear(self) -> None:
        if self.on_evict is not None:
            for name in self._entries:
                self.on_evict(name)
        self._entries.clear()
        self._index = None
        self._freq_buckets.clear()
        self._min_freq = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Summary statistics used by the cache ablation benchmark."""
        return {
            "size": float(len(self._entries)),
            "capacity": float("inf") if self._capacity is None else float(self._capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_ratio": self.hit_ratio,
            "insertions": float(self.insertions),
            "evictions": float(self.evictions),
        }
