"""Type–Length–Value wire encoding.

The NDN packet format encodes everything as nested TLV blocks.  This module
implements variable-length number encoding (per the NDN packet spec) plus an
encoder/decoder used by :mod:`repro.ndn.packet`.

Type numbers follow the NDN packet format v0.3 where applicable; a few private
types (>= 1000) are used for simulation-only metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import TLVDecodeError

__all__ = [
    "TlvTypes",
    "encode_var_number",
    "decode_var_number",
    "encode_tlv",
    "decode_tlv",
    "decode_tlv_header",
    "decode_all",
    "scan_tlv_spans",
    "encode_nonneg_int",
    "decode_nonneg_int",
    "TlvBlock",
]


class TlvTypes:
    """TLV type numbers used by the packet codec."""

    INTEREST = 0x05
    DATA = 0x06
    NACK = 0x0320

    NAME = 0x07
    GENERIC_NAME_COMPONENT = 0x08

    CAN_BE_PREFIX = 0x21
    MUST_BE_FRESH = 0x12
    NONCE = 0x0A
    INTEREST_LIFETIME = 0x0C
    HOP_LIMIT = 0x22
    APPLICATION_PARAMETERS = 0x24

    META_INFO = 0x14
    CONTENT_TYPE = 0x18
    FRESHNESS_PERIOD = 0x19
    FINAL_BLOCK_ID = 0x1A
    CONTENT = 0x15

    SIGNATURE_INFO = 0x16
    SIGNATURE_TYPE = 0x1B
    KEY_LOCATOR = 0x1C
    SIGNATURE_VALUE = 0x17

    NACK_REASON = 0x0321

    # Private (simulation) range.
    SIM_SOURCE = 0x03F0
    SIM_TAG = 0x03F1


def encode_var_number(value: int) -> bytes:
    """Encode a non-negative integer as an NDN variable-length number."""
    if value < 0:
        raise TLVDecodeError(f"cannot encode negative number {value}")
    if value < 253:
        return bytes([value])
    if value <= 0xFFFF:
        return bytes([253]) + value.to_bytes(2, "big")
    if value <= 0xFFFFFFFF:
        return bytes([254]) + value.to_bytes(4, "big")
    return bytes([255]) + value.to_bytes(8, "big")


def decode_var_number(buffer: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a variable-length number; returns ``(value, next_offset)``."""
    if offset >= len(buffer):
        raise TLVDecodeError("truncated TLV: missing number")
    first = buffer[offset]
    if first < 253:
        return first, offset + 1
    if first == 253:
        width = 2
    elif first == 254:
        width = 4
    else:
        width = 8
    end = offset + 1 + width
    if end > len(buffer):
        raise TLVDecodeError("truncated TLV: number extends past buffer")
    return int.from_bytes(buffer[offset + 1:end], "big"), end


def encode_tlv(type_number: int, value: bytes) -> bytes:
    """Encode a single TLV block."""
    return encode_var_number(type_number) + encode_var_number(len(value)) + value


def decode_tlv(buffer: bytes, offset: int = 0) -> tuple[int, bytes, int]:
    """Decode one TLV block; returns ``(type, value, next_offset)``."""
    type_number, value_start, value_end = decode_tlv_header(buffer, offset)
    return type_number, buffer[value_start:value_end], value_end


def decode_tlv_header(buffer: bytes, offset: int = 0) -> tuple[int, int, int]:
    """Decode a TLV header only; returns ``(type, value_start, value_end)``.

    Unlike :func:`decode_tlv` this never slices the value out of ``buffer``,
    so callers that only need offsets (the zero-copy
    :class:`~repro.ndn.packet.WirePacket` field scan) pay no copies.
    """
    type_number, offset = decode_var_number(buffer, offset)
    length, offset = decode_var_number(buffer, offset)
    end = offset + length
    if end > len(buffer):
        raise TLVDecodeError(
            f"truncated TLV: type={type_number} wants {length} bytes, "
            f"only {len(buffer) - offset} available"
        )
    return type_number, offset, end


def scan_tlv_spans(buffer: bytes, start: int, end: int) -> dict[int, tuple[int, int, int]]:
    """Shallow-walk the TLV blocks in ``buffer[start:end]`` without copying.

    Returns ``{type: (block_start, value_start, value_end)}`` for the first
    occurrence of each type — exactly what a lazy packet view needs to answer
    header-field questions (name, nonce, freshness, ...) straight off the
    wire buffer.
    """
    spans: dict[int, tuple[int, int, int]] = {}
    offset = start
    while offset < end:
        block_start = offset
        type_number, value_start, value_end = decode_tlv_header(buffer, offset)
        if value_end > end:
            raise TLVDecodeError(f"TLV type={type_number} extends past its enclosing block")
        if type_number not in spans:
            spans[type_number] = (block_start, value_start, value_end)
        offset = value_end
    return spans


@dataclass(frozen=True)
class TlvBlock:
    """A decoded TLV block."""

    type: int
    value: bytes


def decode_all(buffer: bytes) -> Iterator[TlvBlock]:
    """Decode a concatenation of TLV blocks."""
    offset = 0
    while offset < len(buffer):
        type_number, value, offset = decode_tlv(buffer, offset)
        yield TlvBlock(type_number, value)


def encode_nonneg_int(value: int) -> bytes:
    """Encode a non-negative integer in the shortest 1/2/4/8-byte big-endian form."""
    if value < 0:
        raise TLVDecodeError(f"cannot encode negative integer {value}")
    for width in (1, 2, 4, 8):
        if value < (1 << (8 * width)):
            return value.to_bytes(width, "big")
    raise TLVDecodeError(f"integer too large to encode: {value}")


def decode_nonneg_int(value: bytes) -> int:
    """Decode a 1/2/4/8-byte big-endian non-negative integer."""
    if len(value) not in (1, 2, 4, 8):
        raise TLVDecodeError(f"invalid integer width {len(value)}")
    return int.from_bytes(value, "big")
