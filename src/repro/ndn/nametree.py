"""A reusable name-prefix trie (the NFD "name tree").

Every forwarder table is keyed by hierarchical names, and the expensive
operations are all prefix-shaped: the FIB's longest-prefix match, the Content
Store's ``can_be_prefix`` lookup, and prefix-scoped erasure.  This module
provides one generic trie over :class:`~repro.ndn.name.Component` sequences
that those tables share, so each of them gets

* O(depth) exact lookup, insertion and removal (with branch pruning),
* O(depth) longest-prefix match, and
* O(depth + matches) in-order enumeration of a prefix's subtree,

instead of the O(total entries) scans a flat dict forces.

Iteration order is the NDN canonical order (shorter names first, then
component-wise canonical comparison), which makes "first match under a
prefix" deterministic and equal to "smallest matching name".
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.ndn.name import Component, Name

__all__ = ["NameTree", "as_name"]

#: Sentinel distinguishing "no value stored" from a stored ``None``.
_ABSENT = object()


def as_name(value: "Name | str") -> Name:
    """Coerce to :class:`Name` without copying when it already is one."""
    return value if isinstance(value, Name) else Name(value)


class _Node:
    __slots__ = ("children", "name", "value")

    def __init__(self) -> None:
        self.children: dict[Component, _Node] = {}
        #: The full name of this node; set when a value is first stored here.
        self.name: Optional[Name] = None
        self.value: Any = _ABSENT


class NameTree:
    """A trie mapping :class:`Name` keys to arbitrary values."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, name: "Name | str") -> bool:
        node = self._find_node(as_name(name))
        return node is not None and node.value is not _ABSENT

    # -- point operations ----------------------------------------------------

    def _find_node(self, name: Name) -> Optional[_Node]:
        node = self._root
        for comp in name:
            node = node.children.get(comp)
            if node is None:
                return None
        return node

    def set(self, name: "Name | str", value: Any) -> None:
        """Store ``value`` at ``name``, replacing any existing value."""
        name = as_name(name)
        node = self._root
        for comp in name:
            child = node.children.get(comp)
            if child is None:
                child = node.children[comp] = _Node()
            node = child
        if node.value is _ABSENT:
            node.name = name
            self._size += 1
        node.value = value

    def get(self, name: "Name | str", default: Any = None) -> Any:
        """The value stored exactly at ``name``, or ``default``."""
        node = self._find_node(as_name(name))
        if node is None or node.value is _ABSENT:
            return default
        return node.value

    def setdefault(self, name: "Name | str", factory: Callable[[Name], Any]) -> Any:
        """Get the value at ``name``, creating it with ``factory`` if absent."""
        name = as_name(name)
        node = self._root
        for comp in name:
            child = node.children.get(comp)
            if child is None:
                child = node.children[comp] = _Node()
            node = child
        if node.value is _ABSENT:
            node.name = name
            node.value = factory(name)
            self._size += 1
        return node.value

    def remove(self, name: "Name | str") -> bool:
        """Remove the value at ``name``, pruning empty branches bottom-up."""
        name = as_name(name)
        path: list[tuple[_Node, Component]] = []
        node = self._root
        for comp in name:
            child = node.children.get(comp)
            if child is None:
                return False
            path.append((node, comp))
            node = child
        if node.value is _ABSENT:
            return False
        node.value = _ABSENT
        node.name = None
        self._size -= 1
        for parent, comp in reversed(path):
            child = parent.children[comp]
            if child.value is _ABSENT and not child.children:
                del parent.children[comp]
            else:
                break
        return True

    def clear(self) -> None:
        self._root = _Node()
        self._size = 0

    # -- prefix operations -----------------------------------------------------

    def longest_prefix_item(self, name: "Name | str") -> Optional[tuple[Name, Any]]:
        """The deepest ``(name, value)`` whose name is a prefix of ``name``."""
        name = as_name(name)
        node = self._root
        best: Optional[_Node] = node if node.value is not _ABSENT else None
        for comp in name:
            node = node.children.get(comp)
            if node is None:
                break
            if node.value is not _ABSENT:
                best = node
        if best is None:
            return None
        return (best.name if best.name is not None else Name()), best.value

    def _walk(self, node: _Node) -> Iterator[tuple[Name, Any]]:
        """DFS in canonical order: a node's own value before its subtrees."""
        stack: list[_Node] = [node]
        while stack:
            current = stack.pop()
            if current.value is not _ABSENT:
                yield (current.name if current.name is not None else Name()), current.value
            for comp in sorted(current.children, reverse=True):
                stack.append(current.children[comp])

    def items(self) -> Iterator[tuple[Name, Any]]:
        """All ``(name, value)`` pairs in canonical name order."""
        return self._walk(self._root)

    def items_under(self, prefix: "Name | str") -> Iterator[tuple[Name, Any]]:
        """``(name, value)`` pairs whose name has ``prefix``, canonical order."""
        node = self._find_node(as_name(prefix))
        if node is None:
            return iter(())
        return self._walk(node)

    def first_under(
        self,
        prefix: "Name | str",
        predicate: Optional[Callable[[Name, Any], bool]] = None,
    ) -> Optional[tuple[Name, Any]]:
        """The canonically-smallest ``(name, value)`` under ``prefix``.

        With a ``predicate``, the smallest pair for which it returns True.
        Descends directly to the prefix's subtree, so the cost is bounded by
        the subtree size (and by the first acceptable match), never by the
        total number of entries in the tree.
        """
        for name, value in self.items_under(prefix):
            if predicate is None or predicate(name, value):
                return name, value
        return None
