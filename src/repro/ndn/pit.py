"""Pending Interest Table (PIT).

The PIT records which faces asked for which names so that returning Data can
be sent back along the reverse path, and so that identical in-flight requests
are aggregated (one upstream transmission serves many downstream consumers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest

__all__ = ["PitEntry", "PendingInterestTable"]


@dataclass
class InRecord:
    """A downstream face that asked for the name."""

    face_id: int
    nonce: int
    expiry: float


@dataclass
class OutRecord:
    """An upstream face the Interest was forwarded to."""

    face_id: int
    nonce: int
    expiry: float


@dataclass
class PitEntry:
    """All state for one pending name."""

    name: Name
    can_be_prefix: bool
    in_records: dict[int, InRecord] = field(default_factory=dict)
    out_records: dict[int, OutRecord] = field(default_factory=dict)
    nonces: set[int] = field(default_factory=set)

    def downstream_faces(self) -> list[int]:
        """Faces waiting for Data, in insertion order."""
        return list(self.in_records.keys())

    def upstream_faces(self) -> list[int]:
        return list(self.out_records.keys())

    def matches_data(self, data: Data) -> bool:
        if self.can_be_prefix:
            return self.name.is_prefix_of(data.name)
        return self.name == data.name

    def expiry(self) -> float:
        """Latest expiry over all records (entry lifetime)."""
        expiries = [rec.expiry for rec in self.in_records.values()]
        expiries += [rec.expiry for rec in self.out_records.values()]
        return max(expiries) if expiries else 0.0


class PendingInterestTable:
    """PIT keyed by (name, can_be_prefix)."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._entries: dict[tuple[Name, bool], PitEntry] = {}
        self.aggregated = 0
        self.satisfied = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, interest: Interest) -> tuple[Name, bool]:
        return (interest.name, interest.can_be_prefix)

    # -- Interest path -------------------------------------------------------

    def insert(self, interest: Interest, in_face_id: int) -> tuple[PitEntry, bool]:
        """Record a downstream request.

        Returns ``(entry, is_new)``; ``is_new`` is False when the Interest was
        aggregated onto an existing entry (already pending upstream).
        """
        key = self._key(interest)
        now = self._clock()
        expiry = now + interest.lifetime
        entry = self._entries.get(key)
        is_new = entry is None
        if entry is None:
            entry = PitEntry(name=interest.name, can_be_prefix=interest.can_be_prefix)
            self._entries[key] = entry
        else:
            self.aggregated += 1
        entry.in_records[in_face_id] = InRecord(face_id=in_face_id, nonce=interest.nonce, expiry=expiry)
        entry.nonces.add(interest.nonce)
        return entry, is_new

    def is_duplicate_nonce(self, interest: Interest) -> bool:
        """Loop detection: same name with a nonce we have already seen."""
        entry = self._entries.get(self._key(interest))
        return entry is not None and interest.nonce in entry.nonces

    def record_out(self, interest: Interest, out_face_id: int) -> None:
        """Record that the Interest was forwarded upstream on ``out_face_id``."""
        entry = self._entries.get(self._key(interest))
        if entry is None:
            return
        expiry = self._clock() + interest.lifetime
        entry.out_records[out_face_id] = OutRecord(
            face_id=out_face_id, nonce=interest.nonce, expiry=expiry
        )

    # -- Data path -----------------------------------------------------------------

    def find_matching(self, data: Data) -> list[PitEntry]:
        """All PIT entries satisfied by ``data`` (exact and prefix entries)."""
        return [entry for entry in self._entries.values() if entry.matches_data(data)]

    def satisfy(self, data: Data) -> list[int]:
        """Consume entries matched by ``data``; returns downstream face ids."""
        faces: list[int] = []
        matched_keys = [
            key for key, entry in self._entries.items() if entry.matches_data(data)
        ]
        for key in matched_keys:
            entry = self._entries.pop(key)
            self.satisfied += 1
            for face_id in entry.downstream_faces():
                if face_id not in faces:
                    faces.append(face_id)
        return faces

    def find_exact(self, interest: Interest) -> Optional[PitEntry]:
        return self._entries.get(self._key(interest))

    def remove(self, interest: Interest) -> None:
        self._entries.pop(self._key(interest), None)

    # -- maintenance ---------------------------------------------------------------

    def expire(self) -> list[PitEntry]:
        """Drop entries whose every record has expired; returns them."""
        now = self._clock()
        dead_keys = [key for key, entry in self._entries.items() if entry.expiry() <= now]
        dead = []
        for key in dead_keys:
            dead.append(self._entries.pop(key))
            self.expired += 1
        return dead

    def entries(self) -> Iterable[PitEntry]:
        return list(self._entries.values())

    def stats(self) -> dict[str, float]:
        return {
            "size": float(len(self._entries)),
            "aggregated": float(self.aggregated),
            "satisfied": float(self.satisfied),
            "expired": float(self.expired),
        }
