"""Pending Interest Table (PIT).

The PIT records which faces asked for which names so that returning Data can
be sent back along the reverse path, and so that identical in-flight requests
are aggregated (one upstream transmission serves many downstream consumers).

Two hot paths avoid scanning the table:

* ``expire()`` pops a lazy min-heap of record expiries, so the common case
  (nothing expired) is a single peek instead of an O(n) sweep per packet.
* ``satisfy()``/``find_matching()`` probe the entry dict once per prefix of
  the Data name (exact key plus each ``can_be_prefix`` prefix key) instead of
  testing every pending entry.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.ndn.name import Name
from repro.ndn.packet import DataLike, InterestLike

__all__ = ["InRecord", "OutRecord", "PitEntry", "PendingInterestTable"]


@dataclass(slots=True)
class InRecord:
    """A downstream face that asked for the name."""

    face_id: int
    nonce: int
    expiry: float


@dataclass(slots=True)
class OutRecord:
    """An upstream face the Interest was forwarded to."""

    face_id: int
    nonce: int
    expiry: float


@dataclass(slots=True)
class PitEntry:
    """All state for one pending name.

    Entry/record classes are slotted (lint rule RL006): every in-flight
    Interest allocates one entry plus an in/out record per face, so their
    per-instance ``__dict__`` would be the table's dominant cost.
    """

    name: Name
    can_be_prefix: bool
    in_records: dict[int, InRecord] = field(default_factory=dict)
    out_records: dict[int, OutRecord] = field(default_factory=dict)
    nonces: set[int] = field(default_factory=set)
    #: The most recent Interest wire view inserted under this entry.  Kept so
    #: control-plane cleanup (face removal, shard rebalance) can re-forward
    #: the Interest or Nack the downstreams without re-synthesising a packet.
    interest: Optional[InterestLike] = None

    def downstream_faces(self) -> list[int]:
        """Faces waiting for Data, in insertion order."""
        return list(self.in_records.keys())

    def upstream_faces(self) -> list[int]:
        return list(self.out_records.keys())

    def matches_data(self, data: DataLike) -> bool:
        if self.can_be_prefix:
            return self.name.is_prefix_of(data.name)
        return self.name == data.name

    def expiry(self) -> float:
        """Latest expiry over all records (entry lifetime)."""
        expiries = [rec.expiry for rec in self.in_records.values()]
        expiries += [rec.expiry for rec in self.out_records.values()]
        return max(expiries) if expiries else 0.0


class PendingInterestTable:
    """PIT keyed by (name, can_be_prefix)."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._entries: dict[tuple[Name, bool], PitEntry] = {}
        #: Lazy expiry heap of (when, seq, key).  Keys may be stale (entry
        #: satisfied/removed or lifetime extended); ``expire()`` revalidates
        #: against the live entry before dropping anything.
        self._expiry_heap: list[tuple[float, int, tuple[Name, bool]]] = []
        self._heap_seq = 0
        self.aggregated = 0
        self.satisfied = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, interest: InterestLike) -> tuple[Name, bool]:
        return (interest.name, interest.can_be_prefix)

    def _push_expiry(self, key: tuple[Name, bool], when: float) -> None:
        heapq.heappush(self._expiry_heap, (when, self._heap_seq, key))
        self._heap_seq += 1

    # -- Interest path -------------------------------------------------------

    def insert(self, interest: InterestLike, in_face_id: int) -> tuple[PitEntry, bool]:
        """Record a downstream request.

        Returns ``(entry, is_new)``; ``is_new`` is False when the Interest was
        aggregated onto an existing entry (already pending upstream).
        """
        key = self._key(interest)
        now = self._clock()
        expiry = now + interest.lifetime
        entry = self._entries.get(key)
        is_new = entry is None
        if entry is None:
            entry = PitEntry(name=interest.name, can_be_prefix=interest.can_be_prefix)
            self._entries[key] = entry
        else:
            self.aggregated += 1
        entry.in_records[in_face_id] = InRecord(face_id=in_face_id, nonce=interest.nonce, expiry=expiry)
        entry.nonces.add(interest.nonce)
        entry.interest = interest
        self._push_expiry(key, expiry)
        return entry, is_new

    def is_duplicate_nonce(self, interest: InterestLike) -> bool:
        """Loop detection: same name with a nonce we have already seen."""
        entry = self._entries.get(self._key(interest))
        return entry is not None and interest.nonce in entry.nonces

    def record_out(self, interest: InterestLike, out_face_id: int) -> None:
        """Record that the Interest was forwarded upstream on ``out_face_id``."""
        key = self._key(interest)
        entry = self._entries.get(key)
        if entry is None:
            return
        expiry = self._clock() + interest.lifetime
        entry.out_records[out_face_id] = OutRecord(
            face_id=out_face_id, nonce=interest.nonce, expiry=expiry
        )
        self._push_expiry(key, expiry)

    # -- Data path -----------------------------------------------------------------

    def _matching_keys(self, data: DataLike) -> list[tuple[Name, bool]]:
        """Keys of entries ``data`` satisfies, probing one key per prefix.

        An exact entry matches only under the full name; a prefix entry
        matches under any leading prefix (including the full name and the
        root).  Order is deterministic: exact first, then prefixes from
        shortest to longest.
        """
        keys: list[tuple[Name, bool]] = []
        exact_key = (data.name, False)
        if exact_key in self._entries:
            keys.append(exact_key)
        for length in range(len(data.name) + 1):
            key = (data.name.prefix(length), True)
            if key in self._entries:
                keys.append(key)
        return keys

    def find_matching(self, data: DataLike) -> list[PitEntry]:
        """All PIT entries satisfied by ``data`` (exact and prefix entries)."""
        return [self._entries[key] for key in self._matching_keys(data)]

    def satisfy(self, data: DataLike) -> list[int]:
        """Consume entries matched by ``data``; returns downstream face ids."""
        faces: list[int] = []
        for key in self._matching_keys(data):
            entry = self._entries.pop(key)
            self.satisfied += 1
            for face_id in entry.downstream_faces():
                if face_id not in faces:
                    faces.append(face_id)
        return faces

    def find_exact(self, interest: InterestLike) -> Optional[PitEntry]:
        return self._entries.get(self._key(interest))

    def remove(self, interest: InterestLike) -> None:
        self._entries.pop(self._key(interest), None)

    def remove_from_key(self, key: tuple[Name, bool]) -> None:
        """Drop an entry by its (name, can_be_prefix) key (cleanup paths)."""
        self._entries.pop(key, None)

    # -- maintenance ---------------------------------------------------------------

    def expire(self) -> list[PitEntry]:
        """Drop entries whose every record has expired; returns them.

        Costs O(1) when nothing is due.  Heap items are revalidated against
        the live entry: satisfied/removed entries are skipped, and entries
        whose lifetime was extended by a later record are re-queued at their
        new expiry instead of being dropped early.
        """
        heap = self._expiry_heap
        if not heap:
            return []
        now = self._clock()
        dead: list[PitEntry] = []
        while heap and heap[0][0] <= now:
            _when, _seq, key = heapq.heappop(heap)
            entry = self._entries.get(key)
            if entry is None:
                continue  # already satisfied or removed
            actual = entry.expiry()
            if actual <= now:
                del self._entries[key]
                dead.append(entry)
                self.expired += 1
            else:
                self._push_expiry(key, actual)
        return dead

    def entries(self) -> Iterable[PitEntry]:
        return list(self._entries.values())

    def stats(self) -> dict[str, float]:
        return {
            "size": float(len(self._entries)),
            "aggregated": float(self.aggregated),
            "satisfied": float(self.satisfied),
            "expired": float(self.expired),
        }
