"""The NDN forwarder (the reproduction's NFD equivalent).

The forwarder owns the three tables (CS, PIT, FIB), a set of faces, and a
strategy-choice table.  Its pipelines mirror NFD's:

Interest pipeline
    hop-limit check → duplicate-nonce check → Content Store lookup → PIT
    insert/aggregate → FIB longest-prefix match → strategy → forward
    (or NACK ``NoRoute``).

Data pipeline
    PIT match (drop unsolicited unless configured otherwise) → Content Store
    insert → forward to every downstream face.

Nack pipeline
    retry on an alternative next hop if the strategy has one left, otherwise
    propagate the NACK downstream and erase the PIT entry.

All three pipelines operate on :class:`~repro.ndn.packet.WirePacket` views:
PIT/CS/FIB lookups are driven off the view's lazily-parsed name and header
flags, forwarded Data and Nacks re-transmit the original wire buffer, and
the per-hop Interest copy patches the hop-limit byte in place of a decode →
re-encode cycle.  A transiting packet is never fully decoded on this node;
only application endpoints (producer handlers, consumers) materialise
packet objects.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import NDNError
from repro.ndn.cs import CachePolicy, ContentStore
from repro.ndn.face import AnyPacket, Face, LocalFace
from repro.ndn.fib import Fib
from repro.ndn.name import Name
from repro.ndn.nametree import as_name
from repro.ndn.packet import InterestLike, NackReason, WirePacket
from repro.ndn.pit import PendingInterestTable, PitEntry
from repro.ndn.strategy import Strategy, StrategyChoiceTable
from repro.ndn.tlv import TlvTypes
from repro.sim.engine import Environment
from repro.sim.metrics import MetricsRegistry
from repro.sim.trace import Tracer

__all__ = ["Forwarder"]


class Forwarder:
    """A software forwarder node.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Node name (used in traces and for routing adjacency).
    cs_capacity:
        Content-store capacity in packets (0 disables caching, ``None``
        is unbounded — never evicts, skips recency bookkeeping).
    cache_unsolicited:
        Whether Data arriving with no matching PIT entry is still cached
        (useful for repo-style producers).
    """

    #: Faces hand this endpoint the WirePacket view, not decoded objects.
    accepts_wire_packets = True

    def __init__(
        self,
        env: Environment,
        name: str = "forwarder",
        cs_capacity: "int | None" = 1024,
        cs_policy: "CachePolicy | str" = CachePolicy.LRU,
        cache_unsolicited: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.cs = ContentStore(capacity=cs_capacity, policy=cs_policy, clock=lambda: env.now)
        self.pit = PendingInterestTable(clock=lambda: env.now)
        self.fib = Fib()
        self.strategies = StrategyChoiceTable()
        self.cache_unsolicited = cache_unsolicited
        self.tracer = tracer or Tracer(clock=lambda: env.now, enabled=False)
        self.metrics = metrics or MetricsRegistry(clock=lambda: env.now)
        self._faces: dict[int, Face] = {}
        self._next_face_id = 1
        #: Per-PIT-name record of upstream faces already tried (for NACK retry).
        self._tried: dict[Name, set[int]] = {}

    # ------------------------------------------------------------------ faces

    def add_face(self, face: Face) -> int:
        """Register a face and return its id."""
        face_id = self._next_face_id
        self._next_face_id += 1
        self._faces[face_id] = face
        return face_id

    def remove_face(self, face_id: int) -> None:
        """Detach a face and purge it from the FIB.

        Pending Interests that were forwarded (only) over the removed face
        are not left to time out: each is re-forwarded over an alternative
        next hop when the FIB still has one, and otherwise its downstreams
        are Nacked with ``NoRoute`` and the entry is dropped.
        """
        face = self._faces.pop(face_id, None)
        if face is not None:
            face.close()
        self.fib.remove_face(face_id)
        self._on_face_removed(face_id)

    def _on_face_removed(self, face_id: int) -> None:
        """Rescue or reject PIT entries whose upstream path just vanished."""
        for entry in self.pit.entries():
            record = entry.out_records.pop(face_id, None)
            if record is None:
                continue  # this entry never went upstream over the dead face
            if entry.out_records:
                continue  # another upstream transmission is still in flight
            interest = entry.interest
            if interest is None or not entry.in_records:
                self.pit.remove_from_key((entry.name, entry.can_be_prefix))
                self._tried.pop(entry.name, None)
                continue
            # Retry through the normal pipeline: the strategy skips faces in
            # ``_tried`` (including the one just removed) and ``_reject``
            # Nacks the downstreams when no alternative next hop remains.
            self._forward_interest(interest, face_id)

    def abort_pending(
        self,
        predicate: Callable[["PitEntry"], bool],
        reason: int = NackReason.NO_ROUTE,
    ) -> int:
        """Nack and drop every PIT entry matching ``predicate``.

        Control-plane helper for shard rebalance and fault injection: the
        downstream consumers get an immediate Nack (default ``NoRoute``)
        instead of a silent timeout, so retry policies can re-route at once.
        Returns the number of aborted entries.
        """
        aborted = 0
        for entry in self.pit.entries():
            if not predicate(entry):
                continue
            if entry.interest is not None:
                self._reject(entry.interest, reason)
            else:  # pragma: no cover - entries always carry their Interest
                self.pit.remove_from_key((entry.name, entry.can_be_prefix))
                self._tried.pop(entry.name, None)
            aborted += 1
        return aborted

    def face(self, face_id: int) -> Face:
        try:
            return self._faces[face_id]
        except KeyError:
            raise NDNError(f"{self.name}: unknown face id {face_id}") from None

    def faces(self) -> dict[int, Face]:
        return dict(self._faces)

    # ----------------------------------------------------------------- routes

    def register_prefix(self, prefix: "Name | str", face: "Face | int", cost: float = 0.0) -> None:
        """Register a prefix towards a face (by object or id)."""
        face_id = face.face_id if isinstance(face, Face) else int(face)
        if face_id not in self._faces:
            raise NDNError(f"{self.name}: cannot register prefix on unknown face {face_id}")
        self.fib.add_route(prefix, face_id, cost)
        self.tracer.record("fib", "register", prefix=str(as_name(prefix)), face=face_id, cost=cost)

    def unregister_prefix(self, prefix: "Name | str", face: "Face | int") -> bool:
        face_id = face.face_id if isinstance(face, Face) else int(face)
        removed = self.fib.remove_route(prefix, face_id)
        if removed:
            self.tracer.record("fib", "unregister", prefix=str(as_name(prefix)), face=face_id)
        return removed

    def set_strategy(self, prefix: "Name | str", strategy: Strategy) -> None:
        """Choose the forwarding strategy for a namespace."""
        self.strategies.set_strategy(prefix, strategy)

    def attach_producer(
        self,
        prefix: "Name | str",
        handler: Callable[[InterestLike], "AnyPacket | None"],
        delay_s: float = 0.0,
    ) -> Face:
        """Attach an application producer.

        ``handler`` is invoked for each Interest reaching the prefix with a
        lazy :class:`~repro.ndn.packet.WirePacket` view (read every Interest
        field directly, or call ``.decode()`` for the full object); it may
        return a :class:`Data` or :class:`Nack` — object or wire view —
        (sent back immediately) or ``None`` (the application will answer
        later through the returned face's ``send``).
        """

        class _ProducerEndpoint:
            accepts_wire_packets = True

            def __init__(self, outer: "Forwarder") -> None:
                self._outer = outer
                self.face: Optional[Face] = None

            def add_face(self, face: Face) -> int:
                return 0  # application side does not number its faces

            def receive_packet(self, packet: WirePacket, face: Face) -> None:
                if packet.packet_type == TlvTypes.INTEREST:
                    response = handler(packet)
                    if response is not None:
                        face.send(response)

        endpoint = _ProducerEndpoint(self)
        app_face = LocalFace(self.env, endpoint, label=f"{self.name}:app:{prefix}", delay_s=delay_s)
        fwd_face = LocalFace(self.env, self, label=f"{self.name}:fwd:{prefix}", delay_s=delay_s)
        app_face.set_peer(fwd_face)
        fwd_face.set_peer(app_face)
        endpoint.face = app_face
        fwd_face.attach()
        self.register_prefix(prefix, fwd_face)
        return app_face

    # ------------------------------------------------------------- packet I/O

    def receive_packet(self, packet: AnyPacket, face: Face) -> None:
        """Entry point for every packet arriving on one of our faces.

        Accepts a wire view (the transport contract) or, for compatibility,
        a bare packet object, which is wrapped on entry.
        """
        wire_packet = WirePacket.of(packet)
        for expired in self.pit.expire():
            # Forget which upstreams were tried so later retransmissions start fresh.
            self._tried.pop(expired.name, None)
        packet_type = wire_packet.packet_type
        if packet_type == TlvTypes.INTEREST:
            self._process_interest(wire_packet, face)
        elif packet_type == TlvTypes.DATA:
            self._process_data(wire_packet, face)
        elif packet_type == TlvTypes.NACK:
            self._process_nack(wire_packet, face)
        else:  # pragma: no cover - defensive
            raise NDNError(f"{self.name}: unknown packet type {packet_type:#x}")

    # Interest pipeline ------------------------------------------------------

    def _process_interest(self, interest: WirePacket, in_face: Face) -> None:
        self.metrics.counter("interests_received").inc()
        self.tracer.record("interest", "in", name=interest.name, face=in_face.face_id)

        if interest.hop_limit <= 0:
            self.metrics.counter("interests_dropped_hop_limit").inc()
            return

        if self.pit.is_duplicate_nonce(interest):
            self.metrics.counter("interests_duplicate").inc()
            in_face.send(interest.nack(NackReason.DUPLICATE))
            return

        cached = self.cs.find(interest)
        if cached is not None:
            self.metrics.counter("cs_hits").inc()
            self.tracer.record("interest", "cs-hit", name=interest.name)
            in_face.send(cached)
            return

        entry, is_new = self.pit.insert(interest, in_face.face_id)
        if not is_new and entry.out_records:
            # Aggregated: an upstream fetch is already in flight.
            self.metrics.counter("interests_aggregated").inc()
            return

        self._forward_interest(interest, in_face.face_id)

    def _forward_interest(self, interest: WirePacket, in_face_id: int) -> None:
        fib_entry = self.fib.lookup(interest.name)
        if fib_entry is None:
            self._reject(interest, NackReason.NO_ROUTE)
            return
        strategy = self.strategies.find(interest.name)
        excluded = set(self._tried.get(interest.name, set()))
        # Never send an Interest back towards a face that is waiting for the
        # answer (would bounce between neighbours that learned each other's routes).
        pit_entry = self.pit.find_exact(interest)
        if pit_entry is not None:
            excluded.update(pit_entry.downstream_faces())
        out_face_ids = strategy.select(interest, fib_entry, in_face_id, tuple(excluded))
        out_face_ids = [fid for fid in out_face_ids if fid in self._faces and self._faces[fid].up]
        if not out_face_ids:
            self._reject(interest, NackReason.NO_ROUTE)
            return
        forwarded = interest.with_decremented_hop_limit()
        for face_id in out_face_ids:
            self._tried.setdefault(interest.name, set()).add(face_id)
            self.pit.record_out(forwarded, face_id)
            self.metrics.counter("interests_forwarded").inc()
            self.tracer.record("interest", "out", name=interest.name, face=face_id)
            self._faces[face_id].send(forwarded)

    def _reject(self, interest: WirePacket, reason: int) -> None:
        """NACK every downstream face waiting on ``interest`` and drop the entry."""
        entry = self.pit.find_exact(interest)
        downstream = entry.downstream_faces() if entry else []
        self.pit.remove(interest)
        self._tried.pop(interest.name, None)
        self.metrics.counter("interests_nacked").inc()
        self.tracer.record("interest", "nack", name=interest.name, reason=reason)
        nack = interest.nack(reason) if downstream else None
        for face_id in downstream:
            face = self._faces.get(face_id)
            if face is None:
                continue
            if not face.up:
                # Count the loss: the downstream asked and will never hear back.
                face.stats.drops += 1
                continue
            face.send(nack)

    # Data pipeline --------------------------------------------------------------

    def _process_data(self, data: WirePacket, in_face: Face) -> None:
        self.metrics.counter("data_received").inc()
        self.tracer.record("data", "in", name=data.name, face=in_face.face_id)

        downstream = self.pit.satisfy(data)
        if not downstream:
            self.metrics.counter("data_unsolicited").inc()
            if self.cache_unsolicited:
                self.cs.insert(data)
            return

        self.cs.insert(data)
        self._tried.pop(data.name, None)
        for face_id in downstream:
            if face_id == in_face.face_id:
                continue
            face = self._faces.get(face_id)
            if face is None:
                continue
            if not face.up:
                # A down downstream face loses the Data: count it as a drop
                # so experiments report loss instead of silently eating it.
                face.stats.drops += 1
                continue
            self.metrics.counter("data_forwarded").inc()
            self.tracer.record("data", "out", name=data.name, face=face_id)
            face.send(data)

    # Nack pipeline ----------------------------------------------------------------

    def _process_nack(self, nack: WirePacket, in_face: Face) -> None:
        self.metrics.counter("nacks_received").inc()
        self.tracer.record("nack", "in", name=nack.name, reason=nack.reason)
        # The enclosed Interest as a wire view over the Nack's own buffer.
        interest = nack.interest
        entry = self.pit.find_exact(interest)
        if entry is None:
            return
        # Try an alternative upstream before giving up.
        fib_entry = self.fib.lookup(interest.name)
        strategy = self.strategies.find(interest.name)
        # Failover-aware strategies use this to penalty-box the upstream
        # that Nacked, steering later Interests away from it for a while.
        strategy.note_nack(in_face.face_id, self.env.now)
        if fib_entry is not None:
            excluded = set(self._tried.get(interest.name, set()))
            excluded.update(entry.downstream_faces())
            retry = strategy.select(interest, fib_entry, in_face.face_id, tuple(excluded))
            retry = [
                fid
                for fid in retry
                if fid in self._faces and self._faces[fid].up and fid != in_face.face_id
            ]
            if retry:
                forwarded = interest.with_decremented_hop_limit()
                for face_id in retry:
                    self._tried.setdefault(interest.name, set()).add(face_id)
                    self.pit.record_out(forwarded, face_id)
                    self.metrics.counter("nack_retries").inc()
                    self.tracer.record("nack", "retry", name=interest.name, face=face_id)
                    self._faces[face_id].send(forwarded)
                return
        # No alternative: propagate the NACK's own wire buffer downstream.
        downstream = entry.downstream_faces()
        self.pit.remove(interest)
        self._tried.pop(interest.name, None)
        for face_id in downstream:
            if face_id == in_face.face_id:
                continue
            face = self._faces.get(face_id)
            if face is None:
                continue
            if not face.up:
                face.stats.drops += 1
                continue
            self.metrics.counter("nacks_forwarded").inc()
            face.send(nack)

    # ------------------------------------------------------------------- misc

    def face_stats(self) -> dict[int, dict[str, int]]:
        """Per-face counter snapshots (packets, ``len(wire)`` bytes, drops)."""
        return {face_id: face.stats.as_dict() for face_id, face in self._faces.items()}

    def stats(self) -> dict[str, object]:
        """A snapshot of forwarder state used by tests and benchmarks."""
        return {
            "name": self.name,
            "faces": len(self._faces),
            "face_stats": self.face_stats(),
            "fib_entries": len(self.fib),
            "pit_entries": len(self.pit),
            "cs": self.cs.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Forwarder {self.name} faces={len(self._faces)} fib={len(self.fib)}>"
