"""Consumer and producer helpers.

:class:`Consumer` is the client-side endpoint used by workflows and by the
LIDC client library: it expresses Interests into a forwarder and completes an
event with the returned Data (or fails it with a timeout / NACK error).

:class:`Producer` is the application-side helper used by the data lake, the
file server and the LIDC gateway: it serves a namespace either from a static
content store or from a request handler, signing everything it emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import InterestNacked, InterestTimeout, NDNError
from repro.ndn.face import AnyPacket, Face, LocalFace, connect
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest, InterestLike, Nack, NackReason, WirePacket
from repro.ndn.security import DigestSigner, HmacSigner
from repro.ndn.segmentation import reassemble, segment_content
from repro.ndn.tlv import TlvTypes
from repro.sim.engine import Environment, Event

__all__ = ["Consumer", "Producer", "PendingInterest"]


@dataclass(slots=True)
class PendingInterest:
    """Book-keeping for one in-flight Interest expressed by a consumer.

    Slotted (lint rule RL006): a client driving many concurrent sessions
    holds one of these per in-flight Interest.
    """

    interest: Interest
    completion: Event
    sent_at: float
    retries_left: int = 0
    attempts: int = 1
    satisfied: bool = field(default=False)


class Consumer:
    """An application endpoint that expresses Interests through a forwarder."""

    #: Receive wire views from faces; Data is decoded here — at the one
    #: endpoint that actually consumes the content — not in transit.
    accepts_wire_packets = True

    def __init__(
        self,
        env: Environment,
        forwarder: Forwarder,
        name: str = "consumer",
        link=None,
    ) -> None:
        self.env = env
        self.name = name
        self.forwarder = forwarder
        self._pending: dict[Name, list[PendingInterest]] = {}
        #: Number of in-flight Interests with ``can_be_prefix``; kept so the
        #: Data path can skip the full prefix scan when (as is typical for
        #: many concurrent job sessions) every pending Interest is exact-match.
        self._prefix_pending = 0
        self._faces: list[Face] = []
        # Connect to the forwarder over a local (or provided) link.
        if link is None:
            self.face, self._fwd_face = connect(
                env, self, forwarder, label=f"{name}<->{forwarder.name}", face_cls=LocalFace
            )
        else:
            self.face, self._fwd_face = connect(
                env, self, forwarder, link=link, label=f"{name}<->{forwarder.name}"
            )
        self.interests_sent = 0
        self.data_received = 0
        self.nacks_received = 0
        self.timeouts = 0

    # -- endpoint protocol ------------------------------------------------------

    def add_face(self, face: Face) -> int:
        self._faces.append(face)
        return len(self._faces)

    def receive_packet(self, packet: AnyPacket, face: Face) -> None:
        wire_packet = WirePacket.of(packet)
        packet_type = wire_packet.packet_type
        if packet_type == TlvTypes.DATA:
            # The consumer is the content's destination: this is where the
            # (at most one) full decode of a wire-borne packet belongs.
            self._on_data(wire_packet.decode())
        elif packet_type == TlvTypes.NACK:
            # Nack handling needs only the enclosed name and the reason code,
            # both lazily available on the view.
            self._on_nack(wire_packet)
        # Consumers ignore incoming Interests.

    # -- expressing interests ------------------------------------------------------

    def express_interest(
        self,
        name: "Name | str | Interest",
        lifetime: Optional[float] = None,
        can_be_prefix: bool = False,
        must_be_fresh: bool = False,
        retries: int = 0,
        application_parameters: bytes = b"",
    ) -> Event:
        """Send an Interest; returns an event completing with the Data.

        The event fails with :class:`InterestTimeout` if no Data arrives
        within the Interest lifetime (after ``retries`` retransmissions) or
        with :class:`InterestNacked` if the network rejects it.
        """
        if isinstance(name, Interest):
            interest = name
        else:
            interest = Interest(
                name=Name(name),
                can_be_prefix=can_be_prefix,
                must_be_fresh=must_be_fresh,
                lifetime=lifetime if lifetime is not None else 4.0,
                application_parameters=application_parameters,
            )
        completion = self.env.event(name=f"fetch:{interest.name}")
        pending = PendingInterest(
            interest=interest,
            completion=completion,
            sent_at=self.env.now,
            retries_left=retries,
        )
        self._pending.setdefault(interest.name, []).append(pending)
        if interest.can_be_prefix:
            self._prefix_pending += 1
        self._send(pending)
        self.env.process(self._watchdog(pending), name=f"watchdog:{interest.name}")
        return completion

    def _send(self, pending: PendingInterest) -> None:
        self.interests_sent += 1
        self.face.send(pending.interest)

    def _watchdog(self, pending: PendingInterest):
        while True:
            yield self.env.timeout(pending.interest.lifetime)
            if pending.satisfied or pending.completion.triggered:
                return
            if pending.retries_left > 0:
                pending.retries_left -= 1
                pending.attempts += 1
                # Re-express with a fresh nonce so it is not treated as a loop.
                pending.interest = Interest(
                    name=pending.interest.name,
                    can_be_prefix=pending.interest.can_be_prefix,
                    must_be_fresh=pending.interest.must_be_fresh,
                    lifetime=pending.interest.lifetime,
                    application_parameters=pending.interest.application_parameters,
                )
                self._send(pending)
                continue
            self.timeouts += 1
            self._forget(pending)
            pending.completion.fail(
                InterestTimeout(pending.interest.name, pending.interest.lifetime)
            )
            return

    def _forget(self, pending: PendingInterest) -> None:
        bucket = self._pending.get(pending.interest.name, [])
        if pending in bucket:
            bucket.remove(pending)
            if pending.interest.can_be_prefix:
                self._prefix_pending -= 1
        if not bucket:
            self._pending.pop(pending.interest.name, None)

    def pending_count(self) -> int:
        """Number of in-flight Interests (leak check for concurrent sessions)."""
        return sum(len(bucket) for bucket in self._pending.values())

    def _on_data(self, data: Data) -> None:
        """Resolve the pending Interests this Data satisfies.

        Exact-name lookup first — O(1) regardless of how many unrelated
        Interests are in flight, which is what keeps N concurrent job
        sessions on one consumer cheap.  The linear scan only runs for the
        (rare) prefix-matching Interests.
        """
        self.data_received += 1
        matches: list[PendingInterest] = []
        bucket = self._pending.get(data.name)
        if bucket:
            matches.extend(p for p in bucket if p.interest.matches_data(data))
        if self._prefix_pending:
            for name, prefix_bucket in list(self._pending.items()):
                if name == data.name:
                    continue
                for pending in prefix_bucket:
                    if pending.interest.can_be_prefix and pending.interest.matches_data(data):
                        matches.append(pending)
        for pending in matches:
            pending.satisfied = True
            self._forget(pending)
            if not pending.completion.triggered:
                pending.completion.succeed(data)

    def _on_nack(self, nack: "Nack | WirePacket") -> None:
        self.nacks_received += 1
        bucket = list(self._pending.get(nack.name, []))
        for pending in bucket:
            pending.satisfied = True
            self._forget(pending)
            if not pending.completion.triggered:
                pending.completion.fail(
                    InterestNacked(nack.name, NackReason.label(nack.reason))
                )

    # -- higher-level fetch helpers -----------------------------------------------

    def fetch(self, name: "Name | str", **kwargs):
        """Process generator: fetch a single Data packet and return it.

        Usage inside a process::

            data = yield from consumer.fetch("/ndn/k8s/data/foo")
        """
        data = yield self.express_interest(name, **kwargs)
        return data

    def fetch_segments(self, base_name: "Name | str", lifetime: float = 4.0, retries: int = 1):
        """Process generator: fetch a segmented object and return its bytes.

        Fetches ``<base>/seg=0`` first, reads the final block id, then fetches
        the remaining segments sequentially.
        """
        base = Name(base_name)
        first = yield self.express_interest(
            base.append("seg=0"), lifetime=lifetime, retries=retries
        )
        segments = [first]
        if first.final_block_id is None:
            return first.content
        last_label = first.final_block_id.to_str()
        if not last_label.startswith("seg="):
            raise NDNError(f"unexpected final block id {last_label!r}")
        last_index = int(last_label[len("seg="):])
        for index in range(1, last_index + 1):
            segment = yield self.express_interest(
                base.append(f"seg={index}"), lifetime=lifetime, retries=retries
            )
            segments.append(segment)
        return reassemble(segments)


class Producer:
    """An application endpoint serving a namespace on a forwarder."""

    def __init__(
        self,
        env: Environment,
        forwarder: Forwarder,
        prefix: "Name | str",
        handler: Optional[Callable[[InterestLike], "AnyPacket | None"]] = None,
        signer: "DigestSigner | HmacSigner | None" = None,
        name: str = "producer",
        freshness_period: float = 0.0,
    ) -> None:
        self.env = env
        self.name = name
        self.prefix = Name(prefix)
        self.forwarder = forwarder
        self.signer = signer or DigestSigner()
        self.freshness_period = freshness_period
        self._store: dict[Name, Data] = {}
        self._handler = handler
        self.interests_served = 0
        self.face = forwarder.attach_producer(self.prefix, self._dispatch)

    # -- publishing -------------------------------------------------------------

    def publish(self, name: "Name | str", content: "bytes | str", segment_size: int = 0,
                freshness_period: Optional[float] = None) -> list[Data]:
        """Add content to the producer's static store (optionally segmented)."""
        name = Name(name)
        if not self.prefix.is_prefix_of(name):
            raise NDNError(f"{name} is outside the producer prefix {self.prefix}")
        if isinstance(content, str):
            content = content.encode("utf-8")
        freshness = self.freshness_period if freshness_period is None else freshness_period
        if segment_size and len(content) > segment_size:
            packets = segment_content(
                name, content, segment_size=segment_size, signer=self.signer,
                freshness_period=freshness,
            )
        else:
            packets = [
                Data(name=name, content=content, freshness_period=freshness).sign(self.signer)
            ]
        for packet in packets:
            self._store[packet.name] = packet
        return packets

    def unpublish(self, name: "Name | str") -> int:
        """Remove content under ``name`` (prefix match); returns packets removed."""
        name = Name(name)
        victims = [stored for stored in self._store if name.is_prefix_of(stored)]
        for victim in victims:
            del self._store[victim]
        return len(victims)

    def stored_names(self) -> list[Name]:
        return sorted(self._store.keys())

    # -- serving -----------------------------------------------------------------

    def _dispatch(self, interest: InterestLike) -> "AnyPacket | None":
        self.interests_served += 1
        # Static store first (exact, then prefix match for discovery); every
        # field read here resolves lazily off the wire view.
        data = self._store.get(interest.name)
        if data is None and interest.can_be_prefix:
            candidates = [d for n, d in self._store.items() if interest.name.is_prefix_of(n)]
            if candidates:
                data = min(candidates, key=lambda d: d.name)
        if data is not None:
            return data
        if self._handler is not None:
            return self._handler(interest)
        return interest.nack(NackReason.NO_ROUTE)

    def make_data(self, name: "Name | str", content: "bytes | str",
                  freshness_period: Optional[float] = None) -> Data:
        """Build and sign a Data packet in this producer's namespace."""
        freshness = self.freshness_period if freshness_period is None else freshness_period
        if isinstance(content, str):
            content = content.encode("utf-8")
        return Data(name=Name(name), content=content, freshness_period=freshness).sign(self.signer)
