"""Consumer and producer helpers.

:class:`Consumer` is the client-side endpoint used by workflows and by the
LIDC client library: it expresses Interests into a forwarder and completes an
event with the returned Data (or fails it with a timeout / NACK error).

:class:`Producer` is the application-side helper used by the data lake, the
file server and the LIDC gateway: it serves a namespace either from a static
content store or from a request handler, signing everything it emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import InterestNacked, InterestTimeout, NDNError
from repro.ndn.face import AnyPacket, Face, LocalFace, connect
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest, InterestLike, Nack, NackReason, WirePacket
from repro.ndn.security import DigestSigner, HmacSigner
from repro.ndn.segmentation import reassemble, segment_content
from repro.ndn.tlv import TlvTypes
from repro.sim.engine import Environment, Event
from repro.sim.rng import SeededRNG

__all__ = ["Consumer", "Producer", "PendingInterest", "RetryPolicy"]


@dataclass(slots=True, frozen=True)
class RetryPolicy:
    """How a consumer self-heals one Interest exchange.

    Retransmissions back off exponentially from ``initial_backoff_s`` by
    ``multiplier`` up to ``max_backoff_s``, with a uniform jitter of up to
    ``jitter`` x the current backoff drawn from the consumer's seeded RNG
    ("retry-jitter" stream) — deterministic under a fixed seed, decorrelated
    across concurrent sessions.  ``deadline_s`` bounds the whole exchange
    (first transmission to final verdict); once the budget is spent the
    exchange fails even if retries remain.  ``retry_nacks`` additionally
    retransmits on retriable Nacks (NoRoute / Congestion — transient
    routing states) instead of failing on first refusal.
    """

    max_retries: int = 3
    initial_backoff_s: float = 0.0
    multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.0
    deadline_s: Optional[float] = None
    retry_nacks: bool = False
    retriable_reasons: tuple = (NackReason.NO_ROUTE, NackReason.CONGESTION)

    def backoff_s(self, attempt: int, rng: Optional[SeededRNG] = None) -> float:
        """Backoff before retransmission number ``attempt`` (1-based)."""
        if self.initial_backoff_s <= 0.0:
            return 0.0
        base = self.initial_backoff_s * (self.multiplier ** max(0, attempt - 1))
        base = min(base, self.max_backoff_s)
        if self.jitter > 0.0 and rng is not None:
            base += rng.uniform(0.0, self.jitter * base, stream="retry-jitter")
        return base

    def should_retry_nack(self, reason: int) -> bool:
        return self.retry_nacks and reason in self.retriable_reasons


@dataclass(slots=True)
class PendingInterest:
    """Book-keeping for one in-flight Interest expressed by a consumer.

    Slotted (lint rule RL006): a client driving many concurrent sessions
    holds one of these per in-flight Interest.
    """

    interest: Interest
    completion: Event
    sent_at: float
    retries_left: int = 0
    attempts: int = 1
    satisfied: bool = field(default=False)
    #: Retry policy governing this exchange (None = legacy fixed-interval
    #: retransmission driven purely by ``retries_left``).
    policy: Optional[RetryPolicy] = None
    #: Time of the first transmission (the deadline budget anchor).
    first_sent_at: float = 0.0
    #: Per-cycle wake event: a retriable Nack triggers it so the watchdog
    #: retransmits immediately instead of waiting out the lifetime.
    wake: Optional[Event] = None
    #: Reason code of the most recent Nack (for the final typed error).
    nack_reason: Optional[int] = None


class Consumer:
    """An application endpoint that expresses Interests through a forwarder."""

    #: Receive wire views from faces; Data is decoded here — at the one
    #: endpoint that actually consumes the content — not in transit.
    accepts_wire_packets = True

    def __init__(
        self,
        env: Environment,
        forwarder: Forwarder,
        name: str = "consumer",
        link=None,
        rng: Optional[SeededRNG] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.forwarder = forwarder
        #: Entropy for retry jitter; seeded from the consumer name so two
        #: consumers never share a jitter sequence yet replays are exact.
        self._rng = rng or SeededRNG(sum(name.encode("utf-8")))
        self._pending: dict[Name, list[PendingInterest]] = {}
        #: Number of in-flight Interests with ``can_be_prefix``; kept so the
        #: Data path can skip the full prefix scan when (as is typical for
        #: many concurrent job sessions) every pending Interest is exact-match.
        self._prefix_pending = 0
        self._faces: list[Face] = []
        # Connect to the forwarder over a local (or provided) link.
        if link is None:
            self.face, self._fwd_face = connect(
                env, self, forwarder, label=f"{name}<->{forwarder.name}", face_cls=LocalFace
            )
        else:
            self.face, self._fwd_face = connect(
                env, self, forwarder, link=link, label=f"{name}<->{forwarder.name}"
            )
        self.interests_sent = 0
        self.data_received = 0
        self.nacks_received = 0
        self.timeouts = 0

    # -- endpoint protocol ------------------------------------------------------

    def add_face(self, face: Face) -> int:
        self._faces.append(face)
        return len(self._faces)

    def receive_packet(self, packet: AnyPacket, face: Face) -> None:
        wire_packet = WirePacket.of(packet)
        packet_type = wire_packet.packet_type
        if packet_type == TlvTypes.DATA:
            # The consumer is the content's destination: this is where the
            # (at most one) full decode of a wire-borne packet belongs.
            self._on_data(wire_packet.decode())
        elif packet_type == TlvTypes.NACK:
            # Nack handling needs only the enclosed name and the reason code,
            # both lazily available on the view.
            self._on_nack(wire_packet)
        # Consumers ignore incoming Interests.

    # -- expressing interests ------------------------------------------------------

    def express_interest(
        self,
        name: "Name | str | Interest",
        lifetime: Optional[float] = None,
        can_be_prefix: bool = False,
        must_be_fresh: bool = False,
        retries: int = 0,
        application_parameters: bytes = b"",
        retry_policy: Optional[RetryPolicy] = None,
    ) -> Event:
        """Send an Interest; returns an event completing with the Data.

        The event fails with :class:`InterestTimeout` if no Data arrives
        within the Interest lifetime (after ``retries`` retransmissions) or
        with :class:`InterestNacked` if the network rejects it.

        ``retry_policy`` upgrades the legacy fixed-interval retransmission:
        it supplies the retry budget (overriding ``retries``), adds jittered
        exponential backoff between retransmissions, bounds the whole
        exchange with a deadline, and optionally retransmits on retriable
        Nacks instead of failing on first refusal.
        """
        if isinstance(name, Interest):
            interest = name
        else:
            interest = Interest(
                name=Name(name),
                can_be_prefix=can_be_prefix,
                must_be_fresh=must_be_fresh,
                lifetime=lifetime if lifetime is not None else 4.0,
                application_parameters=application_parameters,
            )
        completion = self.env.event(name=f"fetch:{interest.name}")
        pending = PendingInterest(
            interest=interest,
            completion=completion,
            sent_at=self.env.now,
            retries_left=retry_policy.max_retries if retry_policy is not None else retries,
            policy=retry_policy,
            first_sent_at=self.env.now,
        )
        self._pending.setdefault(interest.name, []).append(pending)
        if interest.can_be_prefix:
            self._prefix_pending += 1
        # The wake event exists before the first transmission: a Nack that
        # comes back synchronously (zero-delay local faces) must still be
        # able to trip the watchdog's first cycle.
        pending.wake = self.env.event(name=f"retry:{interest.name}")
        self._send(pending)
        self.env.process(self._watchdog(pending), name=f"watchdog:{interest.name}")
        return completion

    def _send(self, pending: PendingInterest) -> None:
        self.interests_sent += 1
        self.face.send(pending.interest)

    def _deadline_left(self, pending: PendingInterest) -> bool:
        policy = pending.policy
        if policy is None or policy.deadline_s is None:
            return True
        return (self.env.now - pending.first_sent_at) < policy.deadline_s

    def _fail_pending(self, pending: PendingInterest, nacked: bool) -> None:
        self._forget(pending)
        if pending.completion.triggered:
            return
        if nacked:
            reason = pending.nack_reason if pending.nack_reason is not None else NackReason.NONE
            pending.completion.fail(
                InterestNacked(pending.interest.name, NackReason.label(reason))
            )
        else:
            self.timeouts += 1
            pending.completion.fail(
                InterestTimeout(pending.interest.name, pending.interest.lifetime)
            )

    def _watchdog(self, pending: PendingInterest):
        while True:
            if pending.wake is None:  # pragma: no cover - armed at express time
                pending.wake = self.env.event(name=f"retry:{pending.interest.name}")
            if not pending.wake.triggered:
                # A wake already tripped (a Nack delivered synchronously,
                # before this cycle started) falls straight through to the
                # retry logic instead of being discarded.
                yield self.env.any_of(
                    [self.env.timeout(pending.interest.lifetime), pending.wake]
                )
            if pending.satisfied or pending.completion.triggered:
                return
            nacked = pending.wake.triggered
            if pending.retries_left <= 0 or not self._deadline_left(pending):
                self._fail_pending(pending, nacked)
                return
            pending.retries_left -= 1
            pending.attempts += 1
            policy = pending.policy
            if policy is not None:
                backoff = policy.backoff_s(pending.attempts - 1, self._rng)
                if backoff > 0.0:
                    if policy.deadline_s is not None and (
                        self.env.now + backoff
                        >= pending.first_sent_at + policy.deadline_s
                    ):
                        # The backoff alone would blow the budget: give the
                        # caller its typed verdict now instead of later.
                        self._fail_pending(pending, nacked)
                        return
                    yield self.env.timeout(backoff)
                    if pending.satisfied or pending.completion.triggered:
                        return
            # Re-express with a fresh nonce so it is not treated as a loop;
            # re-arm the wake first so a synchronous Nack lands on the new
            # cycle, not the consumed event.
            pending.interest = Interest(
                name=pending.interest.name,
                can_be_prefix=pending.interest.can_be_prefix,
                must_be_fresh=pending.interest.must_be_fresh,
                lifetime=pending.interest.lifetime,
                application_parameters=pending.interest.application_parameters,
            )
            pending.wake = self.env.event(name=f"retry:{pending.interest.name}")
            self._send(pending)

    def _forget(self, pending: PendingInterest) -> None:
        bucket = self._pending.get(pending.interest.name, [])
        if pending in bucket:
            bucket.remove(pending)
            if pending.interest.can_be_prefix:
                self._prefix_pending -= 1
        if not bucket:
            self._pending.pop(pending.interest.name, None)

    def pending_count(self) -> int:
        """Number of in-flight Interests (leak check for concurrent sessions)."""
        return sum(len(bucket) for bucket in self._pending.values())

    def _on_data(self, data: Data) -> None:
        """Resolve the pending Interests this Data satisfies.

        Exact-name lookup first — O(1) regardless of how many unrelated
        Interests are in flight, which is what keeps N concurrent job
        sessions on one consumer cheap.  The linear scan only runs for the
        (rare) prefix-matching Interests.
        """
        self.data_received += 1
        matches: list[PendingInterest] = []
        bucket = self._pending.get(data.name)
        if bucket:
            matches.extend(p for p in bucket if p.interest.matches_data(data))
        if self._prefix_pending:
            for name, prefix_bucket in list(self._pending.items()):
                if name == data.name:
                    continue
                for pending in prefix_bucket:
                    if pending.interest.can_be_prefix and pending.interest.matches_data(data):
                        matches.append(pending)
        for pending in matches:
            pending.satisfied = True
            self._forget(pending)
            if not pending.completion.triggered:
                pending.completion.succeed(data)

    def _on_nack(self, nack: "Nack | WirePacket") -> None:
        self.nacks_received += 1
        reason = nack.reason
        bucket = list(self._pending.get(nack.name, []))
        for pending in bucket:
            policy = pending.policy
            if (
                policy is not None
                and policy.should_retry_nack(reason)
                and pending.retries_left > 0
                and self._deadline_left(pending)
            ):
                # Self-healing path: wake the watchdog to retransmit (with
                # backoff) instead of failing the exchange on first refusal.
                pending.nack_reason = reason
                if pending.wake is not None and not pending.wake.triggered:
                    pending.wake.succeed(reason)
                continue
            pending.satisfied = True
            self._forget(pending)
            if not pending.completion.triggered:
                pending.completion.fail(
                    InterestNacked(nack.name, NackReason.label(reason))
                )

    # -- higher-level fetch helpers -----------------------------------------------

    def fetch(self, name: "Name | str", **kwargs):
        """Process generator: fetch a single Data packet and return it.

        Usage inside a process::

            data = yield from consumer.fetch("/ndn/k8s/data/foo")
        """
        data = yield self.express_interest(name, **kwargs)
        return data

    def fetch_segments(self, base_name: "Name | str", lifetime: float = 4.0, retries: int = 1):
        """Process generator: fetch a segmented object and return its bytes.

        Fetches ``<base>/seg=0`` first, reads the final block id, then fetches
        the remaining segments sequentially.
        """
        base = Name(base_name)
        first = yield self.express_interest(
            base.append("seg=0"), lifetime=lifetime, retries=retries
        )
        segments = [first]
        if first.final_block_id is None:
            return first.content
        last_label = first.final_block_id.to_str()
        if not last_label.startswith("seg="):
            raise NDNError(f"unexpected final block id {last_label!r}")
        last_index = int(last_label[len("seg="):])
        for index in range(1, last_index + 1):
            segment = yield self.express_interest(
                base.append(f"seg={index}"), lifetime=lifetime, retries=retries
            )
            segments.append(segment)
        return reassemble(segments)


class Producer:
    """An application endpoint serving a namespace on a forwarder."""

    def __init__(
        self,
        env: Environment,
        forwarder: Forwarder,
        prefix: "Name | str",
        handler: Optional[Callable[[InterestLike], "AnyPacket | None"]] = None,
        signer: "DigestSigner | HmacSigner | None" = None,
        name: str = "producer",
        freshness_period: float = 0.0,
    ) -> None:
        self.env = env
        self.name = name
        self.prefix = Name(prefix)
        self.forwarder = forwarder
        self.signer = signer or DigestSigner()
        self.freshness_period = freshness_period
        self._store: dict[Name, Data] = {}
        self._handler = handler
        self.interests_served = 0
        self.face = forwarder.attach_producer(self.prefix, self._dispatch)

    # -- publishing -------------------------------------------------------------

    def publish(self, name: "Name | str", content: "bytes | str", segment_size: int = 0,
                freshness_period: Optional[float] = None) -> list[Data]:
        """Add content to the producer's static store (optionally segmented)."""
        name = Name(name)
        if not self.prefix.is_prefix_of(name):
            raise NDNError(f"{name} is outside the producer prefix {self.prefix}")
        if isinstance(content, str):
            content = content.encode("utf-8")
        freshness = self.freshness_period if freshness_period is None else freshness_period
        if segment_size and len(content) > segment_size:
            packets = segment_content(
                name, content, segment_size=segment_size, signer=self.signer,
                freshness_period=freshness,
            )
        else:
            packets = [
                Data(name=name, content=content, freshness_period=freshness).sign(self.signer)
            ]
        for packet in packets:
            self._store[packet.name] = packet
        return packets

    def unpublish(self, name: "Name | str") -> int:
        """Remove content under ``name`` (prefix match); returns packets removed."""
        name = Name(name)
        victims = [stored for stored in self._store if name.is_prefix_of(stored)]
        for victim in victims:
            del self._store[victim]
        return len(victims)

    def stored_names(self) -> list[Name]:
        return sorted(self._store.keys())

    # -- serving -----------------------------------------------------------------

    def _dispatch(self, interest: InterestLike) -> "AnyPacket | None":
        self.interests_served += 1
        # Static store first (exact, then prefix match for discovery); every
        # field read here resolves lazily off the wire view.
        data = self._store.get(interest.name)
        if data is None and interest.can_be_prefix:
            candidates = [d for n, d in self._store.items() if interest.name.is_prefix_of(n)]
            if candidates:
                data = min(candidates, key=lambda d: d.name)
        if data is not None:
            return data
        if self._handler is not None:
            return self._handler(interest)
        return interest.nack(NackReason.NO_ROUTE)

    def make_data(self, name: "Name | str", content: "bytes | str",
                  freshness_period: Optional[float] = None) -> Data:
        """Build and sign a Data packet in this producer's namespace."""
        freshness = self.freshness_period if freshness_period is None else freshness_period
        if isinstance(content, str):
            content = content.encode("utf-8")
        return Data(name=Name(name), content=content, freshness_period=freshness).sign(self.signer)
