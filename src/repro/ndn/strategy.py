"""Forwarding strategies.

A strategy decides which next hop(s) an Interest is forwarded to, given the
FIB entry that matched it.  LIDC's location independence comes from exactly
this point: when several clusters announce ``/ndn/k8s/compute``, the strategy
chooses the nearest / best / least-loaded one without the client knowing any
cluster location.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Sequence

from repro.exceptions import NDNError
from repro.ndn.fib import FibEntry
from repro.ndn.name import Name
from repro.ndn.packet import Interest, encode_name_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ndn.packet import WirePacket

from repro.sim.rng import SeededRNG

__all__ = [
    "Strategy",
    "BestRouteStrategy",
    "MulticastStrategy",
    "LoadBalanceStrategy",
    "FailoverStrategy",
    "StrategyChoiceTable",
    "DispatcherHotCache",
]


class Strategy:
    """Base strategy interface."""

    name = "base"

    def select(
        self,
        interest: Interest,
        fib_entry: FibEntry,
        in_face_id: int,
        tried_faces: Sequence[int] = (),
    ) -> list[int]:
        """Return the face ids to forward on (may be empty)."""
        raise NotImplementedError

    def _eligible(
        self, fib_entry: FibEntry, in_face_id: int, tried_faces: Sequence[int]
    ) -> list:
        return [
            hop
            for hop in fib_entry.nexthops
            if hop.face_id != in_face_id and hop.face_id not in tried_faces
        ]

    def note_nack(self, face_id: int, now: float) -> None:
        """Feedback hook: an upstream on ``face_id`` Nacked at ``now``.

        The forwarder's Nack pipeline calls this for every received Nack;
        the base strategies ignore it, failover-aware ones use it to steer
        subsequent Interests away from the failing next hop.
        """


class BestRouteStrategy(Strategy):
    """Forward to the lowest-cost untried next hop (NFD's default)."""

    name = "best-route"

    def select(self, interest, fib_entry, in_face_id, tried_faces=()):
        eligible = self._eligible(fib_entry, in_face_id, tried_faces)
        if not eligible:
            return []
        best = min(eligible, key=lambda hop: (hop.cost, hop.face_id))
        return [best.face_id]


class MulticastStrategy(Strategy):
    """Forward to every eligible next hop (used for discovery / sync)."""

    name = "multicast"

    def select(self, interest, fib_entry, in_face_id, tried_faces=()):
        return [hop.face_id for hop in self._eligible(fib_entry, in_face_id, tried_faces)]


class LoadBalanceStrategy(Strategy):
    """Spread Interests over next hops.

    Two modes:

    * ``weighted=False`` — pure round robin over eligible hops;
    * ``weighted=True`` — random choice weighted by the inverse routing cost,
      so cheaper (nearer / less loaded) clusters receive proportionally more
      requests while others still get traffic.
    """

    name = "load-balance"

    def __init__(self, rng: Optional[SeededRNG] = None, weighted: bool = False) -> None:
        self._rng = rng or SeededRNG(0)
        self._weighted = weighted
        self._counters: dict[Name, int] = {}

    def select(self, interest, fib_entry, in_face_id, tried_faces=()):
        eligible = self._eligible(fib_entry, in_face_id, tried_faces)
        if not eligible:
            return []
        if self._weighted:
            weights = [1.0 / (1.0 + hop.cost) for hop in eligible]
            total = sum(weights)
            pick = self._rng.uniform(0.0, total, stream="load-balance")
            cumulative = 0.0
            for hop, weight in zip(eligible, weights):
                cumulative += weight
                if pick <= cumulative:
                    return [hop.face_id]
            return [eligible[-1].face_id]
        counter = self._counters.get(fib_entry.prefix, 0)
        self._counters[fib_entry.prefix] = counter + 1
        return [eligible[counter % len(eligible)].face_id]


class FailoverStrategy(Strategy):
    """Best-route with a penalty box fed by Nack feedback.

    Every received Nack puts the Nacking next hop in a penalty box for
    ``cooldown_s`` simulated seconds (:meth:`Strategy.note_nack`, wired
    through the forwarder's Nack pipeline).  Selection is lowest-cost over
    the non-penalised next hops, so traffic fails over to a healthy
    upstream immediately and only drifts back once the cooldown expires.
    When *every* eligible hop is penalised the strategy falls back to
    plain best-route — a flapping path beats a guaranteed NoRoute.
    """

    name = "failover"

    def __init__(self, cooldown_s: float = 5.0, clock=None) -> None:
        if cooldown_s < 0:
            raise NDNError(f"failover cooldown must be >= 0, got {cooldown_s}")
        self.cooldown_s = cooldown_s
        #: Simulated-time source; without one the strategy tracks the latest
        #: time it saw through ``note_nack`` (good enough for cooldowns that
        #: only need to expire relative to later failures).
        self._clock = clock
        #: face id -> simulated time until which the face is penalised.
        self._penalty_until: dict[int, float] = {}
        self.nacks_noted = 0
        self._last_seen = 0.0

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return self._last_seen

    def note_nack(self, face_id: int, now: float) -> None:
        self._penalty_until[face_id] = now + self.cooldown_s
        self._last_seen = max(self._last_seen, now)
        self.nacks_noted += 1

    def penalised(self, face_id: int, now: Optional[float] = None) -> bool:
        when = self._now() if now is None else now
        return self._penalty_until.get(face_id, 0.0) > when

    def select(self, interest, fib_entry, in_face_id, tried_faces=()):
        eligible = self._eligible(fib_entry, in_face_id, tried_faces)
        if not eligible:
            return []
        now = self._now()
        healthy = [hop for hop in eligible if not self.penalised(hop.face_id, now)]
        pool = healthy or eligible
        best = min(pool, key=lambda hop: (hop.cost, hop.face_id))
        return [best.face_id]


class _HotEntry:
    """One hot-cache slot: a bytes-only Data template plus its lease.

    ``freshness_s`` is ``None`` until the entry's first lookup: admission
    happens on the egress fast path, where reading the freshness TLV would
    cost a span walk per egressed Data even on cache-hostile workloads, so
    the read is deferred to the first hit and amortised over every serve.
    """

    __slots__ = ("template", "arrival", "freshness_s", "shard_index")

    def __init__(
        self,
        template: "WirePacket",
        arrival: float,
        freshness_s: "float | None",
        shard_index: int,
    ) -> None:
        self.template = template
        self.arrival = arrival
        self.freshness_s = freshness_s
        self.shard_index = shard_index

    def is_fresh(self, now: float) -> bool:
        if self.freshness_s is None:
            self.freshness_s = self.template.freshness_period
        if self.freshness_s <= 0:
            return False  # like the CS: no freshness period = always stale
        return (now - self.arrival) <= self.freshness_s


class DispatcherHotCache:
    """A bounded exact-match wire-frame cache for a shard dispatcher.

    This is the strategy tier in front of a sharded data plane: the
    dispatcher consults it before consistent-hashing a packet, so repeat
    Interests for a hot name are answered from the dispatcher itself —
    no hash, no boundary frame, no shard round-trip, and **zero decodes**
    (the stored template and every lookup key are plain bytes).

    Keys are the canonical name bytes (:attr:`WirePacket.name_bytes`, equal
    to :func:`~repro.ndn.packet.encode_name_value` of the Name); values are
    bytes-only Data views.  Eviction is LRU over ``capacity`` slots.

    Coherence contract (the cache must never serve what its shard CS has
    stopped vouching for): an entry is admitted only while resident in the
    owning shard's Content Store, is served only inside its freshness
    window (zero-freshness Data is never served; the freshness TLV is read
    lazily on the entry's first lookup so cache-hostile workloads never
    pay for it), and is dropped eagerly on

    * the owning shard CS evicting/erasing the name (wired through
      :attr:`~repro.ndn.cs.ContentStore.on_evict`),
    * a producer (re-)installing under any covering prefix
      (:meth:`invalidate_under`), and
    * LRU capacity eviction here.
    """

    __slots__ = (
        "capacity", "_entries", "hits", "misses", "insertions",
        "invalidations", "expirations", "evictions",
    )

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise NDNError(f"hot cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, _HotEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.invalidations = 0
        self.expirations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    # -- fast path -----------------------------------------------------------

    def get(self, key: bytes, now: float) -> "WirePacket | None":
        """The fresh Data template under ``key``, or ``None`` (a miss).

        Stale (or zero-freshness) entries are dropped on sight: once the
        freshness window has passed, only the shard CS may decide whether
        stale content is still servable, so the fast path steps aside.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.is_fresh(now):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.template

    # -- population ----------------------------------------------------------

    def insert(
        self,
        key: bytes,
        template: "WirePacket",
        now: float,
        freshness_s: "float | None" = None,
        shard_index: int = 0,
    ) -> None:
        """Admit (or refresh) a Data template under ``key``.

        ``freshness_s=None`` defers the freshness read to the entry's
        first lookup (the egress fast path never walks the Data's spans);
        an explicit non-positive value rejects the admission outright.
        """
        if freshness_s is not None and freshness_s <= 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = _HotEntry(template, now, freshness_s, shard_index)
        self.insertions += 1

    # -- coherence -----------------------------------------------------------

    def invalidate(self, key: bytes) -> bool:
        """Drop the entry under exactly ``key``; True when one was held."""
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1
            return True
        return False

    def invalidate_name(self, name: "Name") -> bool:
        """Drop the entry for a :class:`Name` (the CS eviction callback)."""
        return self.invalidate(encode_name_value(name))

    def invalidate_under(self, prefix: "Name") -> int:
        """Drop every entry under ``prefix`` (producer install/re-install).

        Component TLVs concatenate, so prefix-of-name is byte-prefix-of-key;
        the scan is bounded by ``capacity``, and a producer install is a
        control-plane event, not a per-packet one.
        """
        prefix_bytes = encode_name_value(prefix)
        victims = [key for key in self._entries if key.startswith(prefix_bytes)]
        for key in victims:
            del self._entries[key]
        self.invalidations += len(victims)
        return len(victims)

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "invalidations": self.invalidations,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }


class StrategyChoiceTable:
    """Per-prefix strategy selection with longest-prefix-match semantics."""

    def __init__(self, default: Optional[Strategy] = None) -> None:
        self._default = default or BestRouteStrategy()
        self._choices: dict[Name, Strategy] = {}

    def set_strategy(self, prefix: "Name | str", strategy: Strategy) -> None:
        self._choices[Name(prefix)] = strategy

    def unset_strategy(self, prefix: "Name | str") -> None:
        self._choices.pop(Name(prefix), None)

    def find(self, name: "Name | str") -> Strategy:
        """The strategy governing ``name`` (deepest configured prefix wins)."""
        name = Name(name)
        best_prefix: Optional[Name] = None
        for prefix in self._choices:
            if prefix.is_prefix_of(name):
                if best_prefix is None or len(prefix) > len(best_prefix):
                    best_prefix = prefix
        if best_prefix is None:
            return self._default
        return self._choices[best_prefix]

    @property
    def default(self) -> Strategy:
        return self._default
