"""Forwarding strategies.

A strategy decides which next hop(s) an Interest is forwarded to, given the
FIB entry that matched it.  LIDC's location independence comes from exactly
this point: when several clusters announce ``/ndn/k8s/compute``, the strategy
chooses the nearest / best / least-loaded one without the client knowing any
cluster location.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ndn.fib import FibEntry
from repro.ndn.name import Name
from repro.ndn.packet import Interest
from repro.sim.rng import SeededRNG

__all__ = [
    "Strategy",
    "BestRouteStrategy",
    "MulticastStrategy",
    "LoadBalanceStrategy",
    "StrategyChoiceTable",
]


class Strategy:
    """Base strategy interface."""

    name = "base"

    def select(
        self,
        interest: Interest,
        fib_entry: FibEntry,
        in_face_id: int,
        tried_faces: Sequence[int] = (),
    ) -> list[int]:
        """Return the face ids to forward on (may be empty)."""
        raise NotImplementedError

    def _eligible(
        self, fib_entry: FibEntry, in_face_id: int, tried_faces: Sequence[int]
    ) -> list:
        return [
            hop
            for hop in fib_entry.nexthops
            if hop.face_id != in_face_id and hop.face_id not in tried_faces
        ]


class BestRouteStrategy(Strategy):
    """Forward to the lowest-cost untried next hop (NFD's default)."""

    name = "best-route"

    def select(self, interest, fib_entry, in_face_id, tried_faces=()):
        eligible = self._eligible(fib_entry, in_face_id, tried_faces)
        if not eligible:
            return []
        best = min(eligible, key=lambda hop: (hop.cost, hop.face_id))
        return [best.face_id]


class MulticastStrategy(Strategy):
    """Forward to every eligible next hop (used for discovery / sync)."""

    name = "multicast"

    def select(self, interest, fib_entry, in_face_id, tried_faces=()):
        return [hop.face_id for hop in self._eligible(fib_entry, in_face_id, tried_faces)]


class LoadBalanceStrategy(Strategy):
    """Spread Interests over next hops.

    Two modes:

    * ``weighted=False`` — pure round robin over eligible hops;
    * ``weighted=True`` — random choice weighted by the inverse routing cost,
      so cheaper (nearer / less loaded) clusters receive proportionally more
      requests while others still get traffic.
    """

    name = "load-balance"

    def __init__(self, rng: Optional[SeededRNG] = None, weighted: bool = False) -> None:
        self._rng = rng or SeededRNG(0)
        self._weighted = weighted
        self._counters: dict[Name, int] = {}

    def select(self, interest, fib_entry, in_face_id, tried_faces=()):
        eligible = self._eligible(fib_entry, in_face_id, tried_faces)
        if not eligible:
            return []
        if self._weighted:
            weights = [1.0 / (1.0 + hop.cost) for hop in eligible]
            total = sum(weights)
            pick = self._rng.uniform(0.0, total, stream="load-balance")
            cumulative = 0.0
            for hop, weight in zip(eligible, weights):
                cumulative += weight
                if pick <= cumulative:
                    return [hop.face_id]
            return [eligible[-1].face_id]
        counter = self._counters.get(fib_entry.prefix, 0)
        self._counters[fib_entry.prefix] = counter + 1
        return [eligible[counter % len(eligible)].face_id]


class StrategyChoiceTable:
    """Per-prefix strategy selection with longest-prefix-match semantics."""

    def __init__(self, default: Optional[Strategy] = None) -> None:
        self._default = default or BestRouteStrategy()
        self._choices: dict[Name, Strategy] = {}

    def set_strategy(self, prefix: "Name | str", strategy: Strategy) -> None:
        self._choices[Name(prefix)] = strategy

    def unset_strategy(self, prefix: "Name | str") -> None:
        self._choices.pop(Name(prefix), None)

    def find(self, name: "Name | str") -> Strategy:
        """The strategy governing ``name`` (deepest configured prefix wins)."""
        name = Name(name)
        best_prefix: Optional[Name] = None
        for prefix in self._choices:
            if prefix.is_prefix_of(name):
                if best_prefix is None or len(prefix) > len(best_prefix):
                    best_prefix = prefix
        if best_prefix is None:
            return self._default
        return self._choices[best_prefix]

    @property
    def default(self) -> Strategy:
        return self._default
