"""Faces: the forwarder's attachment points.

A *face* is the NDN generalisation of an interface: packets are sent out of a
face and arrive on the peer face at the other end.  Two kinds are provided:

* :class:`NetworkFace` — one end of a point-to-point link between two packet
  endpoints (forwarders, gateways, clients); delivery is delayed by the link's
  propagation latency and serialisation time.
* :class:`LocalFace` — an application face inside a node (zero or negligible
  delay), used by producers, consumers and the LIDC gateway.

Every endpoint that owns faces must implement the small
:class:`PacketEndpoint` protocol: ``add_face(face) -> int`` and
``receive_packet(packet, face) -> None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Union

from repro.exceptions import NDNError
from repro.ndn.packet import Data, Interest, Nack
from repro.sim.engine import Environment
from repro.sim.topology import Link

__all__ = ["Packet", "PacketEndpoint", "FaceStats", "Face", "LocalFace", "NetworkFace", "connect"]

#: Union of every packet type a face can carry.
Packet = Union[Interest, Data, Nack]


class PacketEndpoint(Protocol):
    """Anything that can own faces and receive packets from them."""

    def add_face(self, face: "Face") -> int:  # pragma: no cover - protocol
        ...

    def receive_packet(self, packet: Packet, face: "Face") -> None:  # pragma: no cover
        ...


@dataclass
class FaceStats:
    """Per-face packet and byte counters."""

    interests_out: int = 0
    interests_in: int = 0
    data_out: int = 0
    data_in: int = 0
    nacks_out: int = 0
    nacks_in: int = 0
    bytes_out: int = 0
    bytes_in: int = 0

    def record_out(self, packet: Packet) -> None:
        self.bytes_out += packet.size
        if isinstance(packet, Interest):
            self.interests_out += 1
        elif isinstance(packet, Data):
            self.data_out += 1
        else:
            self.nacks_out += 1

    def record_in(self, packet: Packet) -> None:
        self.bytes_in += packet.size
        if isinstance(packet, Interest):
            self.interests_in += 1
        elif isinstance(packet, Data):
            self.data_in += 1
        else:
            self.nacks_in += 1


class Face:
    """Base face: owned by an endpoint, delivers to a peer face."""

    def __init__(self, env: Environment, owner: PacketEndpoint, label: str = "") -> None:
        self.env = env
        self.owner = owner
        self.label = label
        self.face_id: int = -1
        self.peer: Optional["Face"] = None
        self.stats = FaceStats()
        self.up = True

    def attach(self) -> int:
        """Register this face with its owner; records the assigned id."""
        self.face_id = self.owner.add_face(self)
        return self.face_id

    def set_peer(self, peer: "Face") -> None:
        self.peer = peer

    # -- sending ---------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Send ``packet`` towards the peer endpoint."""
        if not self.up:
            return
        if self.peer is None:
            raise NDNError(f"face {self.label or self.face_id} has no peer")
        self.stats.record_out(packet)
        self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        raise NotImplementedError

    def deliver(self, packet: Packet) -> None:
        """Called by the peer when a packet arrives on this face."""
        if not self.up:
            return
        self.stats.record_in(packet)
        self.owner.receive_packet(packet, self)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Mark the face down; in-flight packets are dropped on delivery."""
        self.up = False
        if self.peer is not None:
            self.peer.up = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} id={self.face_id} {self.label!r} {'up' if self.up else 'down'}>"


class LocalFace(Face):
    """An in-node application face: delivery costs a fixed small delay."""

    def __init__(
        self,
        env: Environment,
        owner: PacketEndpoint,
        label: str = "",
        delay_s: float = 0.0,
    ) -> None:
        super().__init__(env, owner, label)
        self.delay_s = delay_s

    def _transmit(self, packet: Packet) -> None:
        peer = self.peer
        assert peer is not None
        if self.delay_s <= 0:
            peer.deliver(packet)
            return

        def _deliver():
            yield self.env.timeout(self.delay_s)
            peer.deliver(packet)

        self.env.process(_deliver(), name=f"deliver:{self.label}")


class NetworkFace(Face):
    """A face across a network link with latency and bandwidth."""

    def __init__(
        self,
        env: Environment,
        owner: PacketEndpoint,
        link: Optional[Link] = None,
        label: str = "",
    ) -> None:
        super().__init__(env, owner, label)
        self.link = link or Link("a", "b", latency_s=0.001, bandwidth_bps=1e9)

    def _transmit(self, packet: Packet) -> None:
        peer = self.peer
        assert peer is not None
        delay = self.link.transfer_time(packet.size)

        def _deliver():
            yield self.env.timeout(delay)
            peer.deliver(packet)

        self.env.process(_deliver(), name=f"xmit:{self.label}")


def connect(
    env: Environment,
    endpoint_a: PacketEndpoint,
    endpoint_b: PacketEndpoint,
    link: Optional[Link] = None,
    label: str = "",
    face_cls: type = NetworkFace,
) -> tuple[Face, Face]:
    """Create a pair of peered faces between two endpoints.

    Returns ``(face_on_a, face_on_b)``; both are already attached to their
    owners and peered with each other.
    """
    if face_cls is NetworkFace:
        face_a: Face = NetworkFace(env, endpoint_a, link=link, label=f"{label}:a")
        face_b: Face = NetworkFace(env, endpoint_b, link=link, label=f"{label}:b")
    else:
        face_a = face_cls(env, endpoint_a, label=f"{label}:a")
        face_b = face_cls(env, endpoint_b, label=f"{label}:b")
    face_a.set_peer(face_b)
    face_b.set_peer(face_a)
    face_a.attach()
    face_b.attach()
    return face_a, face_b
