"""Faces: the forwarder's attachment points, carrying wire buffers.

A *face* is the NDN generalisation of an interface: packets are sent out of a
face and arrive on the peer face at the other end.  The transport contract is
**bytes-first**: ``send()`` and ``deliver()`` carry
:class:`~repro.ndn.packet.WirePacket` views — the encoded buffer plus a lazy
header parser — so forwarding a packet across a node never re-encodes it and
intermediate hops never materialise full packet objects.  Link sizing and the
byte counters both read ``len(wire)`` directly.

Two kinds of face are provided:

* :class:`NetworkFace` — one end of a point-to-point link between two packet
  endpoints (forwarders, gateways, clients); delivery is delayed by the link's
  propagation latency and serialisation time for the wire buffer.
* :class:`LocalFace` — an application face inside a node (zero or negligible
  delay), used by producers, consumers and the LIDC gateway.

Every endpoint that owns faces must implement the small
:class:`PacketEndpoint` protocol: ``add_face(face) -> int`` and
``receive_packet(packet, face) -> None``, and must declare
``accepts_wire_packets = True``: delivery hands over the
:class:`~repro.ndn.packet.WirePacket` itself and raises for endpoints that
do not opt in.  (The one-release compatibility shim that decoded packets
for legacy endpoints is gone; every in-tree endpoint is wire-aware.)
``send()`` still accepts bare packet objects and wraps them (via the
sender's cached wire form) on entry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Protocol, Union

from repro.exceptions import NDNError
from repro.ndn.packet import Data, Interest, Nack, WirePacket
from repro.ndn.tlv import TlvTypes
from repro.sim.engine import Environment
from repro.sim.topology import Link

__all__ = [
    "Packet",
    "AnyPacket",
    "PacketEndpoint",
    "FaceStats",
    "Face",
    "LocalFace",
    "NetworkFace",
    "connect",
]

#: Union of every decoded packet type a face can carry.
Packet = Union[Interest, Data, Nack]

#: What ``send()``/``deliver()`` accept: a wire view or a bare packet object.
AnyPacket = Union[WirePacket, Interest, Data, Nack]

# TLV types used for stat dispatch, bound locally for the per-packet hot path.
_INTEREST_TYPE = TlvTypes.INTEREST
_DATA_TYPE = TlvTypes.DATA


class PacketEndpoint(Protocol):
    """Anything that can own faces and receive packets from them.

    Endpoints must set ``accepts_wire_packets = True`` and handle the
    :class:`~repro.ndn.packet.WirePacket` view; delivery to an endpoint
    without that marker raises (the decode-on-delivery compat shim was
    removed once every in-tree endpoint became wire-aware).
    """

    def add_face(self, face: "Face") -> int:  # pragma: no cover - protocol
        ...

    def receive_packet(self, packet: AnyPacket, face: "Face") -> None:  # pragma: no cover
        ...


@dataclass
class FaceStats:
    """Per-face packet, byte and drop counters.

    Byte counters are ``len(wire)`` of the transiting buffer — no encoder
    walk.  ``drops`` counts packets discarded because the face was down at
    send or delivery time, so experiments can report loss instead of
    silently eating packets.
    """

    interests_out: int = 0
    interests_in: int = 0
    data_out: int = 0
    data_in: int = 0
    nacks_out: int = 0
    nacks_in: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    drops: int = 0

    def record_out(self, packet: WirePacket) -> None:
        self.bytes_out += packet.size
        packet_type = packet.packet_type
        if packet_type == _INTEREST_TYPE:
            self.interests_out += 1
        elif packet_type == _DATA_TYPE:
            self.data_out += 1
        else:
            self.nacks_out += 1

    def record_in(self, packet: WirePacket) -> None:
        self.bytes_in += packet.size
        packet_type = packet.packet_type
        if packet_type == _INTEREST_TYPE:
            self.interests_in += 1
        elif packet_type == _DATA_TYPE:
            self.data_in += 1
        else:
            self.nacks_in += 1

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot for per-face stats reporting."""
        return asdict(self)


class Face:
    """Base face: owned by an endpoint, delivers wire packets to a peer face."""

    def __init__(self, env: Environment, owner: PacketEndpoint, label: str = "") -> None:
        self.env = env
        self.owner = owner
        self.label = label
        self.face_id: int = -1
        self.peer: Optional["Face"] = None
        self.stats = FaceStats()
        self.up = True
        # Resolved once: delivery requires a wire-aware owner (legacy
        # decoded-object delivery raises in deliver()).
        self._owner_accepts_wire = bool(getattr(owner, "accepts_wire_packets", False))

    def attach(self) -> int:
        """Register this face with its owner; records the assigned id."""
        self.face_id = self.owner.add_face(self)
        return self.face_id

    def set_peer(self, peer: "Face") -> None:
        self.peer = peer

    # -- sending ---------------------------------------------------------------

    def send(self, packet: AnyPacket) -> None:
        """Send ``packet`` towards the peer endpoint.

        Bare ``Interest``/``Data``/``Nack`` objects are wrapped into
        :class:`~repro.ndn.packet.WirePacket` views here, constructed once
        from the sender's cached wire form.
        """
        if not self.up:
            # Count the drop before wrapping: no point encoding (and for
            # unsigned Data, signing) a packet that dies right here.
            self.stats.drops += 1
            return
        if self.peer is None:
            raise NDNError(f"face {self.label or self.face_id} has no peer")
        wire_packet = WirePacket.of(packet)
        self.stats.record_out(wire_packet)
        self._transmit(wire_packet)

    def _transmit(self, packet: WirePacket) -> None:
        raise NotImplementedError

    def deliver(self, packet: AnyPacket) -> None:
        """Called by the peer when a packet arrives on this face."""
        if not self.up:
            self.stats.drops += 1
            return
        if not self._owner_accepts_wire:
            raise NDNError(
                f"endpoint {type(self.owner).__name__!r} on face "
                f"{self.label or self.face_id} does not accept wire packets: "
                "the legacy decoded-object delivery shim was removed; set "
                "accepts_wire_packets = True and read fields off the "
                "WirePacket view (or call .decode() at the endpoint)"
            )
        wire_packet = WirePacket.of(packet)
        self.stats.record_in(wire_packet)
        self.owner.receive_packet(wire_packet, self)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Mark the face down; in-flight packets are dropped on delivery."""
        self.up = False
        if self.peer is not None:
            self.peer.up = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} id={self.face_id} {self.label!r} {'up' if self.up else 'down'}>"


class LocalFace(Face):
    """An in-node application face: delivery costs a fixed small delay."""

    def __init__(
        self,
        env: Environment,
        owner: PacketEndpoint,
        label: str = "",
        delay_s: float = 0.0,
    ) -> None:
        super().__init__(env, owner, label)
        self.delay_s = delay_s

    def _transmit(self, packet: WirePacket) -> None:
        peer = self.peer
        assert peer is not None
        if self.delay_s <= 0:
            peer.deliver(packet)
            return

        def _deliver():
            yield self.env.timeout(self.delay_s)
            peer.deliver(packet)

        self.env.process(_deliver(), name=f"deliver:{self.label}")


class NetworkFace(Face):
    """A face across a network link with latency and bandwidth."""

    def __init__(
        self,
        env: Environment,
        owner: PacketEndpoint,
        link: Optional[Link] = None,
        label: str = "",
    ) -> None:
        super().__init__(env, owner, label)
        self.link = link or Link("a", "b", latency_s=0.001, bandwidth_bps=1e9)

    def _transmit(self, packet: WirePacket) -> None:
        peer = self.peer
        assert peer is not None
        delay = self.link.transfer_time_packet(packet)

        def _deliver():
            yield self.env.timeout(delay)
            peer.deliver(packet)

        self.env.process(_deliver(), name=f"xmit:{self.label}")


def connect(
    env: Environment,
    endpoint_a: PacketEndpoint,
    endpoint_b: PacketEndpoint,
    link: Optional[Link] = None,
    label: str = "",
    face_cls: type = NetworkFace,
) -> tuple[Face, Face]:
    """Create a pair of peered faces between two endpoints.

    ``link`` is passed through to :class:`NetworkFace` and any subclass of
    it; face classes without a link model (e.g. :class:`LocalFace`) ignore
    it.  Returns ``(face_on_a, face_on_b)``; both are already attached to
    their owners and peered with each other.
    """
    if isinstance(face_cls, type) and issubclass(face_cls, NetworkFace):
        face_a: Face = face_cls(env, endpoint_a, link=link, label=f"{label}:a")
        face_b: Face = face_cls(env, endpoint_b, link=link, label=f"{label}:b")
    else:
        face_a = face_cls(env, endpoint_a, label=f"{label}:a")
        face_b = face_cls(env, endpoint_b, label=f"{label}:b")
    face_a.set_peer(face_b)
    face_b.set_peer(face_a)
    face_a.attach()
    face_b.attach()
    return face_a, face_b
