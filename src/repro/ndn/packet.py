"""NDN packets: Interest, Data and Nack, with TLV wire encoding.

The wire format loosely follows the NDN packet format v0.3: enough structure
to round-trip every field the forwarder and LIDC use, while staying compact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.exceptions import TLVDecodeError, VerificationError
from repro.ndn.name import Component, Name
from repro.ndn.security import (
    DigestSigner,
    HmacSigner,
    KeyChain,
    SignatureInfo,
    SignatureType,
)
from repro.ndn.tlv import (
    TlvTypes,
    decode_all,
    decode_nonneg_int,
    decode_tlv,
    decode_tlv_header,
    encode_nonneg_int,
    encode_tlv,
    scan_tlv_spans,
)

__all__ = [
    "Interest",
    "Data",
    "Nack",
    "NackReason",
    "ContentType",
    "WirePacket",
    "InterestLike",
    "DataLike",
    "encode_name_value",
]

#: Default Interest lifetime (seconds); mirrors NDN's 4-second default.
DEFAULT_INTEREST_LIFETIME = 4.0

#: Nonce sequence for Interests constructed without an explicit nonce.
#: Real NDN draws nonces from entropy; here they only feed PIT loop/duplicate
#: detection, which needs *uniqueness within a run*, not unpredictability —
#: and ambient entropy would make otherwise-identical simulation runs differ
#: bit-for-bit in every trace and wire buffer (the determinism contract,
#: statically enforced as lint rule RL002).  A process-wide counter gives
#: every Interest a distinct, reproducible nonce; retransmissions construct
#: a new Interest and therefore draw a fresh one.
_NONCE_SEQUENCE = itertools.count(0x5EED0001)


def _next_nonce() -> int:
    return next(_NONCE_SEQUENCE) & 0xFFFFFFFF


class ContentType:
    """Data packet content types."""

    BLOB = 0
    LINK = 1
    KEY = 2
    NACK = 3


class NackReason:
    """Network-NACK reasons (mirrors NFD)."""

    NONE = 0
    CONGESTION = 50
    DUPLICATE = 100
    NO_ROUTE = 150

    _LABELS = {0: "None", 50: "Congestion", 100: "Duplicate", 150: "NoRoute"}

    @classmethod
    def label(cls, reason: int) -> str:
        return cls._LABELS.get(reason, f"Unknown({reason})")


def encode_name_value(name: Name) -> bytes:
    """The value bytes of a Name TLV: the concatenated component TLVs.

    This is the canonical byte form of a name on the wire, and therefore
    the key the shard dispatcher caches and hashes on
    (:attr:`WirePacket.name_bytes` is the same bytes sliced out of a
    received buffer).  Because components are encoded back to back and TLV
    encoding is self-delimiting, name A is a prefix of name B exactly when
    ``encode_name_value(A)`` is a byte-prefix of ``encode_name_value(B)``.
    """
    return b"".join(
        encode_tlv(TlvTypes.GENERIC_NAME_COMPONENT, comp.value) for comp in name
    )


def _encode_name(name: Name) -> bytes:
    return encode_tlv(TlvTypes.NAME, encode_name_value(name))


def _decode_name_span(buffer: bytes, start: int, end: int) -> Name:
    """Parse the components of a Name TLV's value in ``buffer[start:end]``.

    Single parser for both the object decoders and the zero-copy
    :class:`WirePacket` view, which hands in spans of its wire buffer.
    """
    components = []
    offset = start
    while offset < end:
        comp_type, value_start, value_end = decode_tlv_header(buffer, offset)
        if comp_type != TlvTypes.GENERIC_NAME_COMPONENT:
            raise TLVDecodeError(f"unexpected TLV {comp_type} inside Name")
        if value_end > end:
            # The header check only bounds against the whole buffer; a
            # component must not overrun its enclosing Name TLV either.
            raise TLVDecodeError("name component extends past the Name TLV")
        components.append(Component(buffer[value_start:value_end]))
        offset = value_end
    return Name(components)


def _decode_name(value: bytes) -> Name:
    return _decode_name_span(value, 0, len(value))


@dataclass
class Interest:
    """An NDN Interest: a named request for data.

    LIDC encodes computation requests as Interests whose names carry the
    application, resource requirements and dataset identifiers.
    """

    name: Name
    can_be_prefix: bool = False
    must_be_fresh: bool = False
    nonce: int = field(default_factory=_next_nonce)
    lifetime: float = DEFAULT_INTEREST_LIFETIME
    hop_limit: int = 255
    application_parameters: bytes = b""

    def __post_init__(self) -> None:
        if not isinstance(self.name, Name):
            self.name = Name(self.name)
        if self.lifetime <= 0:
            raise ValueError(f"interest lifetime must be positive, got {self.lifetime}")
        if not (0 <= self.hop_limit <= 255):
            raise ValueError(f"hop limit must be in [0, 255], got {self.hop_limit}")
        # Lazily-cached wire form.  Packets are immutable once in flight
        # (forwarding copies via ``replace``), so each instance encodes at
        # most once no matter how many faces record its size.
        self._wire: "bytes | None" = None

    # -- matching -----------------------------------------------------------------

    def matches_data(self, data: "Data") -> bool:
        """True when ``data`` satisfies this Interest (exact or prefix match)."""
        if self.can_be_prefix:
            return self.name.is_prefix_of(data.name)
        return self.name == data.name

    def with_decremented_hop_limit(self) -> "Interest":
        """A copy with the hop limit reduced by one (used per forwarding hop)."""
        return replace(self, hop_limit=max(0, self.hop_limit - 1))

    # -- wire encoding ---------------------------------------------------------------

    def encode(self) -> bytes:
        if self._wire is not None:
            return self._wire
        body = _encode_name(self.name)
        if self.can_be_prefix:
            body += encode_tlv(TlvTypes.CAN_BE_PREFIX, b"")
        if self.must_be_fresh:
            body += encode_tlv(TlvTypes.MUST_BE_FRESH, b"")
        body += encode_tlv(TlvTypes.NONCE, self.nonce.to_bytes(4, "big"))
        # round(), not int(): truncation would re-encode a decoded packet to
        # different bytes (ms/1000*1000 can land just below the integer).
        # Floor at 1 ms: a 0 ms lifetime on the wire would be rejected by the
        # endpoint's decode even though every transit hop accepted it.
        body += encode_tlv(
            TlvTypes.INTEREST_LIFETIME,
            encode_nonneg_int(max(1, round(self.lifetime * 1000))),
        )
        body += encode_tlv(TlvTypes.HOP_LIMIT, bytes([self.hop_limit]))
        if self.application_parameters:
            body += encode_tlv(TlvTypes.APPLICATION_PARAMETERS, self.application_parameters)
        self._wire = encode_tlv(TlvTypes.INTEREST, body)
        return self._wire

    @classmethod
    def decode(cls, wire: bytes) -> "Interest":
        outer_type, outer_value, _ = decode_tlv(wire)
        if outer_type != TlvTypes.INTEREST:
            raise TLVDecodeError(f"not an Interest packet (type {outer_type})")
        name: Optional[Name] = None
        can_be_prefix = False
        must_be_fresh = False
        nonce = 0
        lifetime = DEFAULT_INTEREST_LIFETIME
        hop_limit = 255
        app_params = b""
        for block in decode_all(outer_value):
            if block.type == TlvTypes.NAME:
                name = _decode_name(block.value)
            elif block.type == TlvTypes.CAN_BE_PREFIX:
                can_be_prefix = True
            elif block.type == TlvTypes.MUST_BE_FRESH:
                must_be_fresh = True
            elif block.type == TlvTypes.NONCE:
                nonce = int.from_bytes(block.value, "big")
            elif block.type == TlvTypes.INTEREST_LIFETIME:
                lifetime = decode_nonneg_int(block.value) / 1000.0
            elif block.type == TlvTypes.HOP_LIMIT:
                hop_limit = block.value[0]
            elif block.type == TlvTypes.APPLICATION_PARAMETERS:
                app_params = block.value
        if name is None:
            raise TLVDecodeError("Interest without a Name")
        return cls(
            name=name,
            can_be_prefix=can_be_prefix,
            must_be_fresh=must_be_fresh,
            nonce=nonce,
            lifetime=lifetime,
            hop_limit=hop_limit,
            application_parameters=app_params,
        )

    @property
    def size(self) -> int:
        """Wire size in bytes (used by the topology transfer model)."""
        return len(self.encode())

    def nack(self, reason: int = NackReason.NONE) -> "Nack":
        """A network NACK answering this Interest.

        Mirrors :meth:`WirePacket.nack`, so handlers can reject either a
        decoded Interest or a lazy wire view with the same call.
        """
        return Nack(interest=self, reason=reason)

    def __repr__(self) -> str:
        return f"Interest({self.name.to_uri()!r}, nonce={self.nonce:#010x})"


@dataclass
class Data:
    """An NDN Data packet: named, signed content."""

    name: Name
    content: bytes = b""
    content_type: int = ContentType.BLOB
    freshness_period: float = 0.0
    final_block_id: Optional[Component] = None
    signature_info: Optional[SignatureInfo] = None
    signature_value: bytes = b""

    def __post_init__(self) -> None:
        if not isinstance(self.name, Name):
            self.name = Name(self.name)
        if isinstance(self.content, str):
            self.content = self.content.encode("utf-8")
        # Lazily-cached wire form; invalidated by (re-)signing.
        self._wire: "bytes | None" = None

    # -- signing ------------------------------------------------------------------

    def _signed_portion(self) -> bytes:
        body = _encode_name(self.name)
        body += encode_tlv(TlvTypes.CONTENT_TYPE, encode_nonneg_int(self.content_type))
        # round(), not int(): a decoded Data must re-encode (and re-verify)
        # to the exact bytes it arrived as.
        body += encode_tlv(
            TlvTypes.FRESHNESS_PERIOD, encode_nonneg_int(round(self.freshness_period * 1000))
        )
        if self.final_block_id is not None:
            body += encode_tlv(TlvTypes.FINAL_BLOCK_ID, self.final_block_id.value)
        body += encode_tlv(TlvTypes.CONTENT, self.content)
        return body

    def sign(self, signer: "DigestSigner | HmacSigner | None" = None) -> "Data":
        """Sign in place with ``signer`` (digest signer by default); returns self."""
        signer = signer or DigestSigner()
        self.signature_info = signer.signature_info()
        self.signature_value = signer.sign(self._signed_portion())
        self._wire = None
        return self

    def verify(self, keychain: Optional[KeyChain] = None) -> bool:
        """Verify the signature; raises :class:`VerificationError` when unsigned."""
        if self.signature_info is None or not self.signature_value:
            raise VerificationError(f"data {self.name} is unsigned")
        keychain = keychain or KeyChain()
        return keychain.verify(self._signed_portion(), self.signature_value, self.signature_info)

    @property
    def is_signed(self) -> bool:
        return self.signature_info is not None and bool(self.signature_value)

    # -- wire encoding --------------------------------------------------------------

    def encode(self) -> bytes:
        if self._wire is not None:
            return self._wire
        if not self.is_signed:
            self.sign()
        body = self._signed_portion()
        info = self.signature_info
        assert info is not None
        sig_info_body = encode_tlv(
            TlvTypes.SIGNATURE_TYPE, encode_nonneg_int(info.signature_type)
        )
        if info.key_locator is not None:
            sig_info_body += encode_tlv(TlvTypes.KEY_LOCATOR, _encode_name(info.key_locator))
        body += encode_tlv(TlvTypes.SIGNATURE_INFO, sig_info_body)
        body += encode_tlv(TlvTypes.SIGNATURE_VALUE, self.signature_value)
        self._wire = encode_tlv(TlvTypes.DATA, body)
        return self._wire

    @classmethod
    def decode(cls, wire: bytes) -> "Data":
        outer_type, outer_value, _ = decode_tlv(wire)
        if outer_type != TlvTypes.DATA:
            raise TLVDecodeError(f"not a Data packet (type {outer_type})")
        name: Optional[Name] = None
        content = b""
        content_type = ContentType.BLOB
        freshness = 0.0
        final_block: Optional[Component] = None
        sig_type: Optional[int] = None
        key_locator: Optional[Name] = None
        sig_value = b""
        for block in decode_all(outer_value):
            if block.type == TlvTypes.NAME:
                name = _decode_name(block.value)
            elif block.type == TlvTypes.CONTENT_TYPE:
                content_type = decode_nonneg_int(block.value)
            elif block.type == TlvTypes.FRESHNESS_PERIOD:
                freshness = decode_nonneg_int(block.value) / 1000.0
            elif block.type == TlvTypes.FINAL_BLOCK_ID:
                final_block = Component(block.value)
            elif block.type == TlvTypes.CONTENT:
                content = block.value
            elif block.type == TlvTypes.SIGNATURE_INFO:
                for inner in decode_all(block.value):
                    if inner.type == TlvTypes.SIGNATURE_TYPE:
                        sig_type = decode_nonneg_int(inner.value)
                    elif inner.type == TlvTypes.KEY_LOCATOR:
                        # The key locator wraps a full Name TLV.
                        locator_type, locator_value, _ = decode_tlv(inner.value)
                        if locator_type != TlvTypes.NAME:
                            raise TLVDecodeError("key locator does not contain a Name")
                        key_locator = _decode_name(locator_value)
            elif block.type == TlvTypes.SIGNATURE_VALUE:
                sig_value = block.value
        if name is None:
            raise TLVDecodeError("Data without a Name")
        data = cls(
            name=name,
            content=content,
            content_type=content_type,
            freshness_period=freshness,
            final_block_id=final_block,
        )
        if sig_type is not None:
            data.signature_info = SignatureInfo(signature_type=sig_type, key_locator=key_locator)
            data.signature_value = sig_value
        return data

    @property
    def size(self) -> int:
        """Wire size in bytes."""
        return len(self.encode())

    def content_text(self) -> str:
        """The content decoded as UTF-8 (convenience for JSON payloads)."""
        return self.content.decode("utf-8")

    def __repr__(self) -> str:
        return f"Data({self.name.to_uri()!r}, {len(self.content)} bytes)"


@dataclass
class Nack:
    """A network NACK: the reverse of an Interest, carrying a reason code."""

    interest: Interest
    reason: int = NackReason.NONE

    def __post_init__(self) -> None:
        self._wire: "bytes | None" = None

    @property
    def name(self) -> Name:
        return self.interest.name

    def encode(self) -> bytes:
        if self._wire is not None:
            return self._wire
        body = encode_tlv(TlvTypes.NACK_REASON, encode_nonneg_int(self.reason))
        body += self.interest.encode()
        self._wire = encode_tlv(TlvTypes.NACK, body)
        return self._wire

    @classmethod
    def decode(cls, wire: bytes) -> "Nack":
        outer_type, outer_value, _ = decode_tlv(wire)
        if outer_type != TlvTypes.NACK:
            raise TLVDecodeError(f"not a Nack packet (type {outer_type})")
        reason = NackReason.NONE
        interest: Optional[Interest] = None
        offset = 0
        while offset < len(outer_value):
            block_type, block_value, next_offset = decode_tlv(outer_value, offset)
            if block_type == TlvTypes.NACK_REASON:
                reason = decode_nonneg_int(block_value)
            elif block_type == TlvTypes.INTEREST:
                interest = Interest.decode(outer_value[offset:next_offset])
            offset = next_offset
        if interest is None:
            raise TLVDecodeError("Nack without an enclosed Interest")
        return cls(interest=interest, reason=reason)

    @property
    def size(self) -> int:
        return len(self.encode())

    def __repr__(self) -> str:
        return f"Nack({self.name.to_uri()!r}, {NackReason.label(self.reason)})"


class WirePacket:
    """A zero-copy, lazy-decode view over one encoded NDN packet.

    This is the unit the transport plane carries: faces transmit the wire
    buffer itself, and every header question a forwarder asks in transit —
    ``packet_type``, ``name``, ``can_be_prefix``, ``must_be_fresh``,
    ``nonce``, ``hop_limit``, ``freshness_period``, a Nack's ``reason`` —
    is answered by a single shallow TLV walk over the buffer, caching byte
    spans rather than materialising packet objects.  :meth:`decode` builds
    the full :class:`Interest` / :class:`Data` / :class:`Nack` on demand
    (application endpoints do this; intermediate hops never need to), and
    :attr:`wire` returns the original buffer for re-transmit, so forwarding
    never re-encodes.

    Views built from an in-process packet (:meth:`of`) keep a reference to
    it, making :meth:`decode` free on the same node; views built from raw
    bytes parse at most once.  ``WirePacket.wire_decodes`` counts the
    wire-level full decodes that actually ran — benchmarks use it to assert
    that transit stays bytes-only — and ``WirePacket.decode_hook``, when
    set, observes each one.
    """

    __slots__ = (
        "_buf",
        "_start",
        "_end",
        "_wire",
        "_decoded",
        "_type",
        "_body_start",
        "_body_end",
        "_spans",
        "_name",
        "_name_tlv",
        "_nack_interest",
    )

    #: Class-level count of full decodes that had to parse the wire
    #: (cached-object returns are free and not counted).
    wire_decodes: int = 0
    #: Class-level count of shallow TLV span walks that actually scanned a
    #: buffer (memoised re-reads are free and not counted).  The shard
    #: dispatcher's no-rescan invariant is asserted against this.
    span_scans: int = 0
    #: Optional observer called with the view after each counted wire decode.
    decode_hook = None

    def __init__(
        self,
        wire: bytes,
        decoded: "Interest | Data | Nack | None" = None,
        _start: int = 0,
        _end: Optional[int] = None,
    ) -> None:
        self._buf = wire
        self._start = _start
        self._end = len(wire) if _end is None else _end
        self._wire: Optional[bytes] = (
            wire if (_start == 0 and self._end == len(wire)) else None
        )
        self._decoded = decoded
        self._type: Optional[int] = None
        self._body_start = -1
        self._body_end = -1
        self._spans: "dict[int, tuple[int, int, int]] | None" = None
        self._name: Optional[Name] = None
        self._name_tlv: Optional[bytes] = None
        self._nack_interest: "WirePacket | None" = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def of(cls, packet: "Interest | Data | Nack | WirePacket") -> "WirePacket":
        """Wrap ``packet`` as a wire view (no-op when already one).

        Uses the packet's cached wire form and remembers the object, so a
        later :meth:`decode` on the same node costs nothing.
        """
        if isinstance(packet, WirePacket):
            return packet
        return cls(packet.encode(), decoded=packet)

    # -- buffer access --------------------------------------------------------

    @property
    def wire(self) -> bytes:
        """The encoded packet bytes (the buffer handed to ``Face.send``)."""
        if self._wire is None:
            self._wire = self._buf[self._start:self._end]
        return self._wire

    def encode(self) -> bytes:
        """Alias for :attr:`wire` (duck-compatible with packet objects)."""
        return self.wire

    @property
    def size(self) -> int:
        """Wire size in bytes — ``len(wire)`` with no encoding walk."""
        return self._end - self._start

    # -- lazy header parsing --------------------------------------------------

    def _header(self) -> int:
        if self._type is None:
            type_number, value_start, value_end = decode_tlv_header(self._buf, self._start)
            if value_end > self._end:
                raise TLVDecodeError("packet TLV extends past the wire buffer")
            self._type = type_number
            self._body_start = value_start
            self._body_end = value_end
        return self._type

    def _scan(self) -> dict[int, tuple[int, int, int]]:
        """Byte spans of the packet's top-level TLV fields (one shallow walk)."""
        if self._spans is None:
            self._header()
            self._spans = scan_tlv_spans(self._buf, self._body_start, self._body_end)
            WirePacket.span_scans += 1
        return self._spans

    def _require(self, expected: int, what: str) -> None:
        actual = self._header()
        if actual != expected:
            raise TLVDecodeError(
                f"{what} requested from a packet of TLV type {actual:#x}"
            )

    # -- type dispatch --------------------------------------------------------

    @property
    def packet_type(self) -> int:
        """The outer TLV type (``TlvTypes.INTEREST`` / ``DATA`` / ``NACK``)."""
        return self._header()

    @property
    def is_interest(self) -> bool:
        return self._header() == TlvTypes.INTEREST

    @property
    def is_data(self) -> bool:
        return self._header() == TlvTypes.DATA

    @property
    def is_nack(self) -> bool:
        return self._header() == TlvTypes.NACK

    # -- lazy fields ----------------------------------------------------------

    @property
    def name(self) -> Name:
        """The packet name (a Nack exposes its enclosed Interest's name)."""
        if self._name is None:
            if self._decoded is not None:
                self._name = self._decoded.name
            elif self._header() == TlvTypes.NACK:
                self._name = self.interest.name
            else:
                span = self._scan().get(TlvTypes.NAME)
                if span is None:
                    raise TLVDecodeError("packet without a Name")
                self._name = _decode_name_span(self._buf, span[1], span[2])
        return self._name

    @property
    def name_bytes(self) -> bytes:
        """The packet name as canonical wire bytes (the Name TLV's value).

        This is the shard dispatcher's key: a single memoised slice of the
        buffer, so repeat dispatch of the same view neither re-walks TLV
        spans nor materialises :class:`~repro.ndn.name.Name` components.  A
        Nack exposes its enclosed Interest's name bytes.  Equal to
        :func:`encode_name_value` of :attr:`name`.

        When the span table is not already populated, the slice is taken
        from the packet's *first* body TLV (the Name leads both Interests
        and Data in this codec, as in NDN v0.3) — one header decode, no
        full span walk; packets that deviate fall back to the scan.
        """
        if self._name_tlv is None:
            if self._header() == TlvTypes.NACK:
                self._name_tlv = self.interest.name_bytes
                return self._name_tlv
            if self._spans is None:
                first_type, value_start, value_end = decode_tlv_header(
                    self._buf, self._body_start
                )
                if first_type == TlvTypes.NAME and value_end <= self._body_end:
                    self._name_tlv = self._buf[value_start:value_end]
                    return self._name_tlv
            span = self._scan().get(TlvTypes.NAME)
            if span is None:
                raise TLVDecodeError("packet without a Name")
            self._name_tlv = self._buf[span[1]:span[2]]
        return self._name_tlv

    def _value(self, type_number: int) -> Optional[bytes]:
        span = self._scan().get(type_number)
        if span is None:
            return None
        return self._buf[span[1]:span[2]]

    @property
    def can_be_prefix(self) -> bool:
        if self._decoded is not None:
            return self._decoded.can_be_prefix
        self._require(TlvTypes.INTEREST, "can_be_prefix")
        return TlvTypes.CAN_BE_PREFIX in self._scan()

    @property
    def must_be_fresh(self) -> bool:
        if self._decoded is not None:
            return self._decoded.must_be_fresh
        self._require(TlvTypes.INTEREST, "must_be_fresh")
        return TlvTypes.MUST_BE_FRESH in self._scan()

    @property
    def nonce(self) -> int:
        if self._decoded is not None:
            return self._decoded.nonce
        self._require(TlvTypes.INTEREST, "nonce")
        value = self._value(TlvTypes.NONCE)
        return int.from_bytes(value, "big") if value else 0

    @property
    def lifetime(self) -> float:
        if self._decoded is not None:
            return self._decoded.lifetime
        self._require(TlvTypes.INTEREST, "lifetime")
        value = self._value(TlvTypes.INTEREST_LIFETIME)
        return decode_nonneg_int(value) / 1000.0 if value else DEFAULT_INTEREST_LIFETIME

    @property
    def hop_limit(self) -> int:
        if self._decoded is not None:
            return self._decoded.hop_limit
        self._require(TlvTypes.INTEREST, "hop_limit")
        span = self._scan().get(TlvTypes.HOP_LIMIT)
        if span is None:
            return 255
        if span[2] - span[1] != 1:
            raise TLVDecodeError(f"hop limit TLV must be 1 byte, got {span[2] - span[1]}")
        return self._buf[span[1]]

    @property
    def application_parameters(self) -> bytes:
        if self._decoded is not None:
            return self._decoded.application_parameters
        self._require(TlvTypes.INTEREST, "application_parameters")
        return self._value(TlvTypes.APPLICATION_PARAMETERS) or b""

    @property
    def freshness_period(self) -> float:
        if self._decoded is not None:
            return self._decoded.freshness_period
        self._require(TlvTypes.DATA, "freshness_period")
        value = self._value(TlvTypes.FRESHNESS_PERIOD)
        return decode_nonneg_int(value) / 1000.0 if value else 0.0

    @property
    def reason(self) -> int:
        if self._decoded is not None:
            return self._decoded.reason
        self._require(TlvTypes.NACK, "reason")
        value = self._value(TlvTypes.NACK_REASON)
        return decode_nonneg_int(value) if value else NackReason.NONE

    @property
    def interest(self) -> "WirePacket":
        """A Nack's enclosed Interest as a wire view sharing this buffer."""
        if self._nack_interest is None:
            self._require(TlvTypes.NACK, "enclosed interest")
            if self._decoded is not None:
                self._nack_interest = WirePacket.of(self._decoded.interest)
            else:
                span = self._scan().get(TlvTypes.INTEREST)
                if span is None:
                    raise TLVDecodeError("Nack without an enclosed Interest")
                self._nack_interest = WirePacket(self._buf, _start=span[0], _end=span[2])
        return self._nack_interest

    # -- Interest behaviour ---------------------------------------------------

    def matches_data(self, data: "Data | WirePacket") -> bool:
        """True when ``data`` satisfies this Interest view."""
        if self.can_be_prefix:
            return self.name.is_prefix_of(data.name)
        return self.name == data.name

    def with_decremented_hop_limit(self) -> "WirePacket":
        """The per-hop Interest copy, produced by patching one wire byte.

        The object path re-builds and re-encodes the whole Interest per hop;
        here the hop-limit TLV's value byte is rewritten in a copy of the
        buffer — one memcpy, no TLV re-walk — and the already-parsed name is
        handed to the clone so downstream FIB/PIT lookups stay free.
        """
        self._require(TlvTypes.INTEREST, "hop limit decrement")
        span = self._scan().get(TlvTypes.HOP_LIMIT)
        if span is None or span[2] - span[1] != 1:
            # No 1-byte hop-limit TLV on the wire: take the object path.
            return WirePacket.of(self.decode().with_decremented_hop_limit())
        patched = bytearray(self.wire)
        position = span[1] - self._start
        if patched[position] > 0:
            patched[position] -= 1
        clone = WirePacket(bytes(patched))
        clone._name = self._name if self._name is not None else (
            self._decoded.name if self._decoded is not None else None
        )
        # The name bytes are untouched by the hop-limit patch: hand the
        # memoised slice over so the next dispatcher never re-slices.
        clone._name_tlv = self._name_tlv
        # Only the hop-limit byte changed, so the clone's TLV layout is this
        # view's layout re-based to offset 0 — hand the parse over instead of
        # making the next hop walk the buffer again.
        shift = self._start
        clone._type = self._type
        clone._body_start = self._body_start - shift
        clone._body_end = self._body_end - shift
        if shift == 0:
            clone._spans = self._spans
        else:
            clone._spans = {
                t: (a - shift, b - shift, c - shift)
                for t, (a, b, c) in self._spans.items()
            }
        return clone

    def nack(self, reason: int = NackReason.NONE) -> "WirePacket":
        """A Nack wire packet enclosing this Interest's buffer verbatim."""
        self._require(TlvTypes.INTEREST, "nack construction")
        body = encode_tlv(TlvTypes.NACK_REASON, encode_nonneg_int(reason)) + self.wire
        view = WirePacket(encode_tlv(TlvTypes.NACK, body))
        view._nack_interest = self
        return view

    # -- parse-memo handover --------------------------------------------------

    def adopt_name_memos(self, source: "WirePacket") -> None:
        """Copy ``source``'s name memos onto this view of the same bytes.

        Used when a packet is rebuilt from its own wire (a shard-boundary
        frame round-trip): the parsed :class:`Name` and the name-bytes
        slice are immutable artefacts of the buffer, so handing them over
        — never the decoded packet object — keeps transit bytes-only
        while ensuring no header is parsed twice.  Owned here so the memo
        field list lives next to the slots it mirrors.
        """
        self._name = source._name if source._name is not None else (
            source._decoded.name if source._decoded is not None else None
        )
        self._name_tlv = source._name_tlv

    def detached_view(self) -> "WirePacket":
        """A fresh bytes-only view sharing this buffer and its parse.

        The clone carries the TLV layout, memoised name and name bytes —
        serving it costs no span walk — but no decoded object and none of
        this view's identity: decoding the clone can never contaminate
        this view (or vice versa).  The span dict is shared and treated
        as immutable after the first scan.  This is what the shard
        dispatcher's hot cache serves.
        """
        if self._start != 0:  # sub-view of a larger buffer: re-parse lazily
            return WirePacket(self.wire)
        view = WirePacket(self._buf)
        view._type = self._type
        view._body_start = self._body_start
        view._body_end = self._body_end
        view._spans = self._spans
        view._name = self._name
        view._name_tlv = self._name_tlv
        return view

    # -- full decode ----------------------------------------------------------

    def decode(self) -> "Interest | Data | Nack":
        """Materialise the full packet object (cached; parses at most once)."""
        if self._decoded is None:
            packet_type = self._header()
            wire = self.wire
            if packet_type == TlvTypes.INTEREST:
                decoded: "Interest | Data | Nack" = Interest.decode(wire)
            elif packet_type == TlvTypes.DATA:
                decoded = Data.decode(wire)
            elif packet_type == TlvTypes.NACK:
                decoded = Nack.decode(wire)
            else:
                raise TLVDecodeError(f"unknown packet type {packet_type:#x}")
            # Re-transmitting the decoded object must not re-encode.
            decoded._wire = wire
            self._decoded = decoded
            WirePacket.wire_decodes += 1
            hook = WirePacket.decode_hook
            if hook is not None:
                hook(self)
        return self._decoded

    @property
    def is_decoded(self) -> bool:
        """Whether a full packet object is already attached to this view."""
        return self._decoded is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        try:
            kind = {
                TlvTypes.INTEREST: "Interest",
                TlvTypes.DATA: "Data",
                TlvTypes.NACK: "Nack",
            }.get(self._header(), f"type={self._header():#x}")
        except TLVDecodeError:
            kind = "invalid"
        return f"WirePacket<{kind}>({self.size} bytes)"


#: Anything the Interest pipeline accepts: a decoded Interest or a wire view.
InterestLike = Union[Interest, "WirePacket"]
#: Anything the Data pipeline accepts: a decoded Data or a wire view.
DataLike = Union[Data, "WirePacket"]
