"""NDN packets: Interest, Data and Nack, with TLV wire encoding.

The wire format loosely follows the NDN packet format v0.3: enough structure
to round-trip every field the forwarder and LIDC use, while staying compact.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import TLVDecodeError, VerificationError
from repro.ndn.name import Component, Name
from repro.ndn.security import (
    DigestSigner,
    HmacSigner,
    KeyChain,
    SignatureInfo,
    SignatureType,
)
from repro.ndn.tlv import (
    TlvTypes,
    decode_all,
    decode_nonneg_int,
    decode_tlv,
    encode_nonneg_int,
    encode_tlv,
)

__all__ = ["Interest", "Data", "Nack", "NackReason", "ContentType"]

#: Default Interest lifetime (seconds); mirrors NDN's 4-second default.
DEFAULT_INTEREST_LIFETIME = 4.0


class ContentType:
    """Data packet content types."""

    BLOB = 0
    LINK = 1
    KEY = 2
    NACK = 3


class NackReason:
    """Network-NACK reasons (mirrors NFD)."""

    NONE = 0
    CONGESTION = 50
    DUPLICATE = 100
    NO_ROUTE = 150

    _LABELS = {0: "None", 50: "Congestion", 100: "Duplicate", 150: "NoRoute"}

    @classmethod
    def label(cls, reason: int) -> str:
        return cls._LABELS.get(reason, f"Unknown({reason})")


def _encode_name(name: Name) -> bytes:
    body = b"".join(
        encode_tlv(TlvTypes.GENERIC_NAME_COMPONENT, comp.value) for comp in name
    )
    return encode_tlv(TlvTypes.NAME, body)


def _decode_name(value: bytes) -> Name:
    components = []
    for block in decode_all(value):
        if block.type != TlvTypes.GENERIC_NAME_COMPONENT:
            raise TLVDecodeError(f"unexpected TLV {block.type} inside Name")
        components.append(Component(block.value))
    return Name(components)


@dataclass
class Interest:
    """An NDN Interest: a named request for data.

    LIDC encodes computation requests as Interests whose names carry the
    application, resource requirements and dataset identifiers.
    """

    name: Name
    can_be_prefix: bool = False
    must_be_fresh: bool = False
    nonce: int = field(default_factory=lambda: secrets.randbits(32))
    lifetime: float = DEFAULT_INTEREST_LIFETIME
    hop_limit: int = 255
    application_parameters: bytes = b""

    def __post_init__(self) -> None:
        if not isinstance(self.name, Name):
            self.name = Name(self.name)
        if self.lifetime <= 0:
            raise ValueError(f"interest lifetime must be positive, got {self.lifetime}")
        if not (0 <= self.hop_limit <= 255):
            raise ValueError(f"hop limit must be in [0, 255], got {self.hop_limit}")
        # Lazily-cached wire form.  Packets are immutable once in flight
        # (forwarding copies via ``replace``), so each instance encodes at
        # most once no matter how many faces record its size.
        self._wire: "bytes | None" = None

    # -- matching -----------------------------------------------------------------

    def matches_data(self, data: "Data") -> bool:
        """True when ``data`` satisfies this Interest (exact or prefix match)."""
        if self.can_be_prefix:
            return self.name.is_prefix_of(data.name)
        return self.name == data.name

    def with_decremented_hop_limit(self) -> "Interest":
        """A copy with the hop limit reduced by one (used per forwarding hop)."""
        return replace(self, hop_limit=max(0, self.hop_limit - 1))

    # -- wire encoding ---------------------------------------------------------------

    def encode(self) -> bytes:
        if self._wire is not None:
            return self._wire
        body = _encode_name(self.name)
        if self.can_be_prefix:
            body += encode_tlv(TlvTypes.CAN_BE_PREFIX, b"")
        if self.must_be_fresh:
            body += encode_tlv(TlvTypes.MUST_BE_FRESH, b"")
        body += encode_tlv(TlvTypes.NONCE, self.nonce.to_bytes(4, "big"))
        body += encode_tlv(
            TlvTypes.INTEREST_LIFETIME, encode_nonneg_int(int(self.lifetime * 1000))
        )
        body += encode_tlv(TlvTypes.HOP_LIMIT, bytes([self.hop_limit]))
        if self.application_parameters:
            body += encode_tlv(TlvTypes.APPLICATION_PARAMETERS, self.application_parameters)
        self._wire = encode_tlv(TlvTypes.INTEREST, body)
        return self._wire

    @classmethod
    def decode(cls, wire: bytes) -> "Interest":
        outer_type, outer_value, _ = decode_tlv(wire)
        if outer_type != TlvTypes.INTEREST:
            raise TLVDecodeError(f"not an Interest packet (type {outer_type})")
        name: Optional[Name] = None
        can_be_prefix = False
        must_be_fresh = False
        nonce = 0
        lifetime = DEFAULT_INTEREST_LIFETIME
        hop_limit = 255
        app_params = b""
        for block in decode_all(outer_value):
            if block.type == TlvTypes.NAME:
                name = _decode_name(block.value)
            elif block.type == TlvTypes.CAN_BE_PREFIX:
                can_be_prefix = True
            elif block.type == TlvTypes.MUST_BE_FRESH:
                must_be_fresh = True
            elif block.type == TlvTypes.NONCE:
                nonce = int.from_bytes(block.value, "big")
            elif block.type == TlvTypes.INTEREST_LIFETIME:
                lifetime = decode_nonneg_int(block.value) / 1000.0
            elif block.type == TlvTypes.HOP_LIMIT:
                hop_limit = block.value[0]
            elif block.type == TlvTypes.APPLICATION_PARAMETERS:
                app_params = block.value
        if name is None:
            raise TLVDecodeError("Interest without a Name")
        return cls(
            name=name,
            can_be_prefix=can_be_prefix,
            must_be_fresh=must_be_fresh,
            nonce=nonce,
            lifetime=lifetime,
            hop_limit=hop_limit,
            application_parameters=app_params,
        )

    @property
    def size(self) -> int:
        """Wire size in bytes (used by the topology transfer model)."""
        return len(self.encode())

    def __repr__(self) -> str:
        return f"Interest({self.name.to_uri()!r}, nonce={self.nonce:#010x})"


@dataclass
class Data:
    """An NDN Data packet: named, signed content."""

    name: Name
    content: bytes = b""
    content_type: int = ContentType.BLOB
    freshness_period: float = 0.0
    final_block_id: Optional[Component] = None
    signature_info: Optional[SignatureInfo] = None
    signature_value: bytes = b""

    def __post_init__(self) -> None:
        if not isinstance(self.name, Name):
            self.name = Name(self.name)
        if isinstance(self.content, str):
            self.content = self.content.encode("utf-8")
        # Lazily-cached wire form; invalidated by (re-)signing.
        self._wire: "bytes | None" = None

    # -- signing ------------------------------------------------------------------

    def _signed_portion(self) -> bytes:
        body = _encode_name(self.name)
        body += encode_tlv(TlvTypes.CONTENT_TYPE, encode_nonneg_int(self.content_type))
        body += encode_tlv(
            TlvTypes.FRESHNESS_PERIOD, encode_nonneg_int(int(self.freshness_period * 1000))
        )
        if self.final_block_id is not None:
            body += encode_tlv(TlvTypes.FINAL_BLOCK_ID, self.final_block_id.value)
        body += encode_tlv(TlvTypes.CONTENT, self.content)
        return body

    def sign(self, signer: "DigestSigner | HmacSigner | None" = None) -> "Data":
        """Sign in place with ``signer`` (digest signer by default); returns self."""
        signer = signer or DigestSigner()
        self.signature_info = signer.signature_info()
        self.signature_value = signer.sign(self._signed_portion())
        self._wire = None
        return self

    def verify(self, keychain: Optional[KeyChain] = None) -> bool:
        """Verify the signature; raises :class:`VerificationError` when unsigned."""
        if self.signature_info is None or not self.signature_value:
            raise VerificationError(f"data {self.name} is unsigned")
        keychain = keychain or KeyChain()
        return keychain.verify(self._signed_portion(), self.signature_value, self.signature_info)

    @property
    def is_signed(self) -> bool:
        return self.signature_info is not None and bool(self.signature_value)

    # -- wire encoding --------------------------------------------------------------

    def encode(self) -> bytes:
        if self._wire is not None:
            return self._wire
        if not self.is_signed:
            self.sign()
        body = self._signed_portion()
        info = self.signature_info
        assert info is not None
        sig_info_body = encode_tlv(
            TlvTypes.SIGNATURE_TYPE, encode_nonneg_int(info.signature_type)
        )
        if info.key_locator is not None:
            sig_info_body += encode_tlv(TlvTypes.KEY_LOCATOR, _encode_name(info.key_locator))
        body += encode_tlv(TlvTypes.SIGNATURE_INFO, sig_info_body)
        body += encode_tlv(TlvTypes.SIGNATURE_VALUE, self.signature_value)
        self._wire = encode_tlv(TlvTypes.DATA, body)
        return self._wire

    @classmethod
    def decode(cls, wire: bytes) -> "Data":
        outer_type, outer_value, _ = decode_tlv(wire)
        if outer_type != TlvTypes.DATA:
            raise TLVDecodeError(f"not a Data packet (type {outer_type})")
        name: Optional[Name] = None
        content = b""
        content_type = ContentType.BLOB
        freshness = 0.0
        final_block: Optional[Component] = None
        sig_type: Optional[int] = None
        key_locator: Optional[Name] = None
        sig_value = b""
        for block in decode_all(outer_value):
            if block.type == TlvTypes.NAME:
                name = _decode_name(block.value)
            elif block.type == TlvTypes.CONTENT_TYPE:
                content_type = decode_nonneg_int(block.value)
            elif block.type == TlvTypes.FRESHNESS_PERIOD:
                freshness = decode_nonneg_int(block.value) / 1000.0
            elif block.type == TlvTypes.FINAL_BLOCK_ID:
                final_block = Component(block.value)
            elif block.type == TlvTypes.CONTENT:
                content = block.value
            elif block.type == TlvTypes.SIGNATURE_INFO:
                for inner in decode_all(block.value):
                    if inner.type == TlvTypes.SIGNATURE_TYPE:
                        sig_type = decode_nonneg_int(inner.value)
                    elif inner.type == TlvTypes.KEY_LOCATOR:
                        # The key locator wraps a full Name TLV.
                        locator_type, locator_value, _ = decode_tlv(inner.value)
                        if locator_type != TlvTypes.NAME:
                            raise TLVDecodeError("key locator does not contain a Name")
                        key_locator = _decode_name(locator_value)
            elif block.type == TlvTypes.SIGNATURE_VALUE:
                sig_value = block.value
        if name is None:
            raise TLVDecodeError("Data without a Name")
        data = cls(
            name=name,
            content=content,
            content_type=content_type,
            freshness_period=freshness,
            final_block_id=final_block,
        )
        if sig_type is not None:
            data.signature_info = SignatureInfo(signature_type=sig_type, key_locator=key_locator)
            data.signature_value = sig_value
        return data

    @property
    def size(self) -> int:
        """Wire size in bytes."""
        return len(self.encode())

    def content_text(self) -> str:
        """The content decoded as UTF-8 (convenience for JSON payloads)."""
        return self.content.decode("utf-8")

    def __repr__(self) -> str:
        return f"Data({self.name.to_uri()!r}, {len(self.content)} bytes)"


@dataclass
class Nack:
    """A network NACK: the reverse of an Interest, carrying a reason code."""

    interest: Interest
    reason: int = NackReason.NONE

    def __post_init__(self) -> None:
        self._wire: "bytes | None" = None

    @property
    def name(self) -> Name:
        return self.interest.name

    def encode(self) -> bytes:
        if self._wire is not None:
            return self._wire
        body = encode_tlv(TlvTypes.NACK_REASON, encode_nonneg_int(self.reason))
        body += self.interest.encode()
        self._wire = encode_tlv(TlvTypes.NACK, body)
        return self._wire

    @classmethod
    def decode(cls, wire: bytes) -> "Nack":
        outer_type, outer_value, _ = decode_tlv(wire)
        if outer_type != TlvTypes.NACK:
            raise TLVDecodeError(f"not a Nack packet (type {outer_type})")
        reason = NackReason.NONE
        interest: Optional[Interest] = None
        offset = 0
        while offset < len(outer_value):
            block_type, block_value, next_offset = decode_tlv(outer_value, offset)
            if block_type == TlvTypes.NACK_REASON:
                reason = decode_nonneg_int(block_value)
            elif block_type == TlvTypes.INTEREST:
                interest = Interest.decode(outer_value[offset:next_offset])
            offset = next_offset
        if interest is None:
            raise TLVDecodeError("Nack without an enclosed Interest")
        return cls(interest=interest, reason=reason)

    @property
    def size(self) -> int:
        return len(self.encode())

    def __repr__(self) -> str:
        return f"Nack({self.name.to_uri()!r}, {NackReason.label(self.reason)})"
