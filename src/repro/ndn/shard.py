"""Sharded forwarder data plane: namespace-partitioned worker shards.

A single :class:`~repro.ndn.forwarder.Forwarder` is bound to one core.  This
module partitions one node's namespace across N forwarder *shards* so the
data plane scales past that: a thin dispatcher hashes each packet's name to
a shard and hands the **encoded wire buffer** across the shard boundary.
The wire-level transport API is the prerequisite — an encoded buffer (unlike
an object graph) can cross a process boundary — and the boundary here only
ever carries :class:`~repro.ndn.packet.WirePacket` frames: no packet is
re-encoded or fully decoded in transit, which the
``WirePacket.wire_decodes`` counter enforces in tests and benchmarks.

Partitioning contract
---------------------
* The shard key of a name is its first ``key_depth`` components (default 1,
  per-tenant style partitioning; deeper keys suit single-rooted namespaces
  like ``/ndn/k8s/...``).  A name shorter than ``key_depth`` keys on all of
  its components.
* Two partitioners share the interface (a deterministic ``key -> shard``
  function, selected by the ``partitioner`` option): the default
  ``"ring"`` (:func:`shard_for_key`, a consistent hash over 256 virtual
  nodes per shard) and ``"rendezvous"`` (:func:`rendezvous_for_key`,
  highest-random-weight hashing, optionally with per-shard weights).  Both
  are built from :func:`hashlib.sha256` — deterministic across processes,
  runs and ``PYTHONHASHSEED`` (never Python's randomised ``hash``) — and
  both guarantee that growing the shard count from N to N+1 only moves
  keys *onto the new shard*; keys that stay map to the same shard as
  before.  Rendezvous needs no ring construction, balances small key
  populations (e.g. 64 tenants on 4 shards) tighter than the ring, and
  its weighted form gives a shard a key share proportional to its weight.
* An Interest and the Data/Nack that answers it carry the same name, so
  they always land on the same shard: each shard owns the complete
  PIT/CS/FIB state for its slice of the namespace and no cross-shard
  coordination exists on the fast path.
* A *prefix* (route or producer) with at least ``key_depth`` components has
  exactly one owning shard; a shorter prefix spans the whole key space and
  is installed on every shard.
* Correctness caveat: a ``can_be_prefix`` Interest whose name is shorter
  than ``key_depth`` may hash to a different shard than the Data that would
  answer it.  Keep ``key_depth`` at most the length of the shortest
  prefix-matched Interest name (the default of 1 is always safe for
  non-empty names, because a satisfying Data name extends the Interest
  name and therefore shares its first component).

Dispatcher fast path
--------------------
Every packet crosses the dispatcher, so the dispatcher is the hottest
point in the sharded plane.  Two optimisations keep it lean:

* *Dispatch keys come from bytes, not objects.*  The dispatcher hashes
  :attr:`WirePacket.name_bytes` — a memoised single slice of the wire —
  through :func:`key_from_name_bytes`; no :class:`Name` components are
  materialised and repeat dispatch of the same view never re-walks spans.
* *An exact-match hot cache answers repeat Interests in place.*  A bounded
  :class:`~repro.ndn.strategy.DispatcherHotCache` mirrors the Data the
  shards recently served: a hit sends the cached wire frame straight back
  out the ingress face — no hash, no boundary crossing, no shard
  round-trip, and zero decodes (counter-enforced by benchmarks and tests).
  Coherence is explicit: entries are admitted only while resident in the
  owning shard's Content Store with positive freshness, served only within
  the freshness window, and invalidated eagerly on shard-CS eviction
  (:attr:`ContentStore.on_evict`) and on producer (re-)install under a
  covering prefix.  One semantic note: like any cache placed ahead of the
  PIT, a hot-cache hit answers before duplicate-nonce detection — a repeat
  nonce is served Data rather than a Duplicate Nack.

Boundary mechanics
------------------
Packets cross shards as *frames*: the wire buffer plus the sender's already
parsed TLV span table (:func:`encode_frame`), so the receiving shard never
re-walks the buffer, let alone decodes it.  In-process crossings
(:class:`ShardFace`, used by the deterministic simulation) round-trip every
packet through the frame codec — the reconstructed view has no attached
decoded object, which is what makes the transit-decode counter meaningful.
Real multi-process crossings (:class:`ShardWorkerPool`) send the same
frames over :mod:`multiprocessing` pipes to forked workers, reusing the
fork-pool pattern of :mod:`repro.analysis.sweep` (fork keeps already
imported modules visible to children, so node builders pickle by
reference).

Deterministic scheduling
------------------------
Inside the simulator, each shard (and the dispatcher) is a serial server:
a :class:`~repro.sim.engine.Queue`-fed process that spends a configurable
service time per packet in simulated time.  Ordering is FIFO at every
queue and the engine breaks simultaneous events by scheduling sequence, so
results are bit-for-bit independent of shard count *interleaving* — only
the modelled parallelism changes.  With the default service times of zero
the servers short-circuit to synchronous calls and sharding is purely a
partitioning exercise.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import multiprocessing
import multiprocessing.connection
import struct
import time
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.exceptions import NDNError
from repro.ndn.cs import CachePolicy
from repro.ndn.face import AnyPacket, Face, LocalFace, PacketEndpoint
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.ndn.nametree import as_name
from repro.ndn.packet import WirePacket
from repro.ndn.strategy import DispatcherHotCache, Strategy
from repro.ndn.tlv import decode_tlv_header
from repro.sim.engine import Environment, SerialServer
from repro.sim.metrics import MetricsRegistry
from repro.sim.trace import Tracer

__all__ = [
    "shard_key",
    "shard_for_key",
    "shard_for_name",
    "rendezvous_for_key",
    "rendezvous_for_name",
    "key_from_name_bytes",
    "make_shard_picker",
    "PARTITIONERS",
    "encode_frame",
    "decode_frame",
    "encode_frames",
    "iter_frames",
    "ShardFace",
    "ShardedForwarder",
    "RebalanceReport",
    "ShardWorkerPool",
    "forwarder_for_node",
]

#: Virtual nodes per shard on the consistent-hash ring.  More points =
#: better balance (share stddev ~ 1/sqrt(vnodes)); 256 keeps the ring
#: construction trivial (it is built once per shard count and cached)
#: while holding the expected imbalance to a few percent.
_RING_VNODES = 256


@lru_cache(maxsize=64)
def _hash_ring(num_shards: int) -> tuple[tuple[int, int], ...]:
    """The sorted ``(point, shard)`` ring for ``num_shards`` shards.

    Shard ``s`` contributes the same points no matter how many other shards
    exist — that is the consistency property: ring(N+1) is ring(N) plus the
    new shard's points, so growing the pool only moves keys onto the new
    shard.
    """
    points = []
    for shard in range(num_shards):
        for vnode in range(_RING_VNODES):
            digest = hashlib.sha256(b"shard:%d:%d" % (shard, vnode)).digest()
            points.append((int.from_bytes(digest[:8], "big"), shard))
    points.sort()
    return tuple(points)


def shard_key(name: "Name | str", key_depth: int = 1) -> bytes:
    """The partitioning key of ``name``: its first ``key_depth`` components."""
    name = as_name(name)
    if key_depth < 1:
        raise NDNError(f"shard key depth must be >= 1, got {key_depth}")
    components = tuple(name)[:key_depth]
    return b"/".join(component.value for component in components)


def shard_for_key(key: bytes, num_shards: int) -> int:
    """Consistent-hash ``key`` onto one of ``num_shards`` shards."""
    if num_shards < 1:
        raise NDNError(f"need at least one shard, got {num_shards}")
    if num_shards == 1:
        return 0
    ring = _hash_ring(num_shards)
    point = int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
    index = bisect.bisect_left(ring, (point, -1))
    if index == len(ring):
        index = 0
    return ring[index][1]


def shard_for_name(name: "Name | str", num_shards: int, key_depth: int = 1) -> int:
    """The shard owning ``name`` (see the module partitioning contract)."""
    return shard_for_key(shard_key(name, key_depth), num_shards)


def rendezvous_for_key(
    key: bytes, num_shards: int, weights: Optional[Sequence[float]] = None
) -> int:
    """Rendezvous-hash (HRW) ``key`` onto one of ``num_shards`` shards.

    Each shard scores the key independently (sha256 of shard id + key);
    the highest score wins.  Growing the pool adds one new contender whose
    score does not perturb the others — exactly the ring's stability
    property — but with no vnode construction, and measurably tighter
    balance on small key populations.

    ``weights`` (one positive float per shard) selects *weighted*
    rendezvous via the logarithmic method: shard ``i`` scores
    ``-w_i / ln(u)`` with ``u`` drawn uniformly from the key hash, so its
    expected key share is ``w_i / sum(w)``.  Keys are stable under growth
    as long as existing shards keep their weights.
    """
    if num_shards < 1:
        raise NDNError(f"need at least one shard, got {num_shards}")
    if weights is not None:
        weights = tuple(float(weight) for weight in weights)
        if len(weights) != num_shards:
            raise NDNError(
                f"got {len(weights)} shard weights for {num_shards} shards"
            )
        if any(weight <= 0 for weight in weights):
            raise NDNError(f"shard weights must be positive, got {weights}")
    if num_shards == 1:
        return 0
    best_shard = 0
    best_score: "float | int | None" = None
    for shard in range(num_shards):
        digest = hashlib.sha256(b"hrw:%d:" % shard + key).digest()
        point = int.from_bytes(digest[:8], "big")
        if weights is None:
            score: "float | int" = point
        else:
            # u in (0, 1): +0.5 lifts u off 0, and the explicit clamp
            # keeps it strictly below 1.0 — near the top hash extreme the
            # division rounds to exactly 1.0 in float64, where ln(u) = 0
            # would make the weighted score divide by zero.
            u = (point + 0.5) / 2.0 ** 64
            if u >= 1.0:
                u = 1.0 - 2.0 ** -53
            score = -weights[shard] / math.log(u)
        if best_score is None or score > best_score:
            best_shard, best_score = shard, score
    return best_shard


def rendezvous_for_name(
    name: "Name | str",
    num_shards: int,
    key_depth: int = 1,
    weights: Optional[Sequence[float]] = None,
) -> int:
    """The rendezvous-partitioned shard owning ``name``."""
    return rendezvous_for_key(shard_key(name, key_depth), num_shards, weights)


def key_from_name_bytes(name_value: bytes, key_depth: int) -> bytes:
    """The shard key sliced straight out of canonical name bytes.

    ``name_value`` is a Name TLV's value (:attr:`WirePacket.name_bytes`);
    the result equals :func:`shard_key` of the same name without ever
    materialising :class:`Name` components — this is what the dispatcher
    hashes per packet.
    """
    if key_depth < 1:
        raise NDNError(f"shard key depth must be >= 1, got {key_depth}")
    parts = []
    offset = 0
    end = len(name_value)
    while offset < end and len(parts) < key_depth:
        _comp_type, value_start, value_end = decode_tlv_header(name_value, offset)
        parts.append(name_value[value_start:value_end])
        offset = value_end
    return b"/".join(parts)


#: Partitioner names accepted by :func:`make_shard_picker` (and therefore by
#: :class:`ShardedForwarder`, :class:`ShardWorkerPool` and the topology).
PARTITIONERS = ("ring", "rendezvous")


def make_shard_picker(
    partitioner: str,
    num_shards: int,
    weights: Optional[Sequence[float]] = None,
) -> Callable[[bytes], int]:
    """A memoised ``key -> shard`` function for the chosen partitioner.

    The returned picker caches up to 4096 distinct keys (tenant
    populations are small next to packet counts), so steady-state dispatch
    pays a dict hit, not a hash computation, whichever partitioner runs
    underneath.
    """
    if partitioner == "ring":
        if weights is not None:
            raise NDNError(
                "shard weights require the 'rendezvous' partitioner "
                "(the ring weights all shards equally)"
            )
        picker = lru_cache(maxsize=4096)(
            lambda key: shard_for_key(key, num_shards)
        )
    elif partitioner == "rendezvous":
        if weights is not None:
            weights = tuple(float(weight) for weight in weights)
        # Validate once up front, not per key.
        rendezvous_for_key(b"", num_shards, weights)
        picker = lru_cache(maxsize=4096)(
            lambda key: rendezvous_for_key(key, num_shards, weights)
        )
    else:
        raise NDNError(
            f"unknown partitioner {partitioner!r} (expected one of {PARTITIONERS})"
        )
    return picker


# --------------------------------------------------------------------- frames

_FRAME_HEAD = struct.Struct(">II")  # tag, wire length
_FRAME_LAYOUT_HEAD = struct.Struct(">IIIH")  # outer type, body start/end, span count
_FRAME_SPAN = struct.Struct(">IIII")  # tlv type, block start, value start/end


def encode_frame(packet: "WirePacket | AnyPacket", tag: int = 0) -> bytes:
    """Serialise one packet for a shard boundary: wire buffer + span table.

    The frame carries the encoded packet verbatim plus, when the sender has
    already shallow-parsed the buffer, the TLV span table — so the shard on
    the other side answers header questions without re-walking the wire.
    The decoded object (if any) deliberately does **not** cross: transit
    stays bytes-only on both sides of the boundary.
    """
    view = WirePacket.of(packet)
    wire = view.wire
    parts = [_FRAME_HEAD.pack(tag, len(wire)), wire]
    spans = view._spans
    if spans is None:
        parts.append(b"\x00")
    else:
        # Span offsets are absolute in the sender's buffer; re-base them to
        # the transmitted wire (sub-views of larger buffers shift by _start).
        shift = view._start
        parts.append(b"\x01")
        parts.append(
            _FRAME_LAYOUT_HEAD.pack(
                view._type, view._body_start - shift, view._body_end - shift, len(spans)
            )
        )
        for tlv_type, (start, value_start, value_end) in spans.items():
            parts.append(
                _FRAME_SPAN.pack(
                    tlv_type, start - shift, value_start - shift, value_end - shift
                )
            )
    return b"".join(parts)


def decode_frame(buffer: bytes, offset: int = 0) -> tuple[int, WirePacket, int]:
    """Rebuild ``(tag, view, next_offset)`` from one frame.

    The returned view is backed by the transported bytes only — no decoded
    packet object — with the sender's TLV layout pre-installed when the
    frame carried one.
    """
    tag, wire_length = _FRAME_HEAD.unpack_from(buffer, offset)
    offset += _FRAME_HEAD.size
    wire = bytes(buffer[offset:offset + wire_length])
    if len(wire) != wire_length:
        raise NDNError("truncated shard frame: wire buffer cut short")
    offset += wire_length
    if offset >= len(buffer):
        raise NDNError("truncated shard frame: missing layout flag")
    has_layout = buffer[offset]
    offset += 1
    view = WirePacket(wire)
    if has_layout:
        outer_type, body_start, body_end, span_count = _FRAME_LAYOUT_HEAD.unpack_from(
            buffer, offset
        )
        offset += _FRAME_LAYOUT_HEAD.size
        spans: dict[int, tuple[int, int, int]] = {}
        for _ in range(span_count):
            tlv_type, start, value_start, value_end = _FRAME_SPAN.unpack_from(
                buffer, offset
            )
            offset += _FRAME_SPAN.size
            spans[tlv_type] = (start, value_start, value_end)
        view._type = outer_type
        view._body_start = body_start
        view._body_end = body_end
        view._spans = spans
    return tag, view, offset


def encode_frames(items: Sequence[tuple[int, "WirePacket | AnyPacket"]]) -> bytes:
    """Concatenate ``(tag, packet)`` pairs into one boundary message."""
    return b"".join(encode_frame(packet, tag) for tag, packet in items)


def iter_frames(buffer: bytes) -> Iterator[tuple[int, WirePacket]]:
    """Yield every ``(tag, view)`` frame in a boundary message."""
    offset = 0
    while offset < len(buffer):
        tag, view, offset = decode_frame(buffer, offset)
        yield tag, view


# ------------------------------------------------------------- serial servers

#: The serial-resource primitive moved to the engine layer
#: (:class:`repro.sim.engine.SerialServer`); this alias keeps the shard
#: module's historical name importable.
_SerialServer = SerialServer


# --------------------------------------------------------------- shard faces


class ShardFace(Face):
    """A face whose transmissions cross a shard boundary as frames.

    Every packet is round-tripped through the frame codec — serialised to
    bytes, reconstructed as a fresh :class:`WirePacket` with the span table
    handed over — so the far side holds a bytes-only view even when sender
    and receiver share a process.  The sender's memoised ``name`` and name
    bytes ride along the same way the span table does (immutable parse
    artefacts, not decoded packet objects — ``is_decoded`` stays False on
    the far side), so neither endpoint of an in-process boundary ever
    parses the same header twice.  ``deliver_server``, when given, is the
    receiving shard's serial server: delivery queues behind that shard's
    per-packet service time.
    """

    def __init__(
        self,
        env: Environment,
        owner: PacketEndpoint,
        label: str = "",
        deliver_server: Optional[_SerialServer] = None,
    ) -> None:
        super().__init__(env, owner, label)
        self.frames = 0
        self.frame_bytes = 0
        self._deliver_server = deliver_server

    def _transmit(self, packet: WirePacket) -> None:
        peer = self.peer
        assert peer is not None
        frame = encode_frame(packet)
        self.frames += 1
        self.frame_bytes += len(frame)
        _tag, restored, _end = decode_frame(frame, 0)
        # Hand over the name memos (never the decoded object): the shard
        # side reads ``name`` for its tables and the dispatcher side reads
        # ``name_bytes`` for hashing/hot-cache keys — one parse per packet,
        # wherever it happened first.
        restored.adopt_name_memos(packet)
        if self._deliver_server is None:
            peer.deliver(restored)
        else:
            self._deliver_server.submit(lambda: peer.deliver(restored))


class _ShardRelay:
    """Dispatcher-side endpoint of one (external face, shard) boundary pair.

    Packets a shard emits towards an external face land here; the relay
    queues the outbound send on the dispatcher's serial server, mirroring
    the real deployment where the dispatcher thread also writes egress
    frames back to the network.  The relay knows which shard it fronts, so
    egress Data can be mirrored into the dispatcher hot cache attributed
    to its owning shard.
    """

    accepts_wire_packets = True

    __slots__ = ("_owner", "_ext_face_id", "_shard_index", "face")

    def __init__(
        self, owner: "ShardedForwarder", ext_face_id: int, shard_index: int
    ) -> None:
        self._owner = owner
        self._ext_face_id = ext_face_id
        self._shard_index = shard_index
        self.face: Optional[Face] = None

    def add_face(self, face: Face) -> int:
        self.face = face
        return 0

    def receive_packet(self, packet: WirePacket, face: Face) -> None:
        self._owner._egress(self._ext_face_id, packet, self._shard_index)


# ---------------------------------------------------------- sharded forwarder


class _ShardedFib:
    """FIB facade over the per-shard tables, keyed by *external* face ids.

    The routing daemon talks to ``forwarder.fib`` directly; this view
    translates its prefix/face operations onto whichever shards own the
    prefix.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "ShardedForwarder") -> None:
        self._owner = owner

    def add_route(self, prefix: "Name | str", face_id: int, cost: float = 0.0) -> None:
        self._owner.register_prefix(prefix, face_id, cost)

    def remove_route(self, prefix: "Name | str", face_id: int) -> bool:
        return self._owner.unregister_prefix(prefix, face_id)

    def remove_face(self, face_id: int) -> int:
        removed = 0
        for (prefix, ext_id) in list(self._owner._registrations):
            if ext_id == face_id:
                if self._owner.unregister_prefix(prefix, ext_id):
                    removed += 1
        return removed

    def __len__(self) -> int:
        return len(self._owner._registrations)


@dataclass(slots=True)
class _ProducerRecord:
    """One attached producer: enough to re-home it during a rebalance."""

    prefix: Name
    handler: Callable[..., object]
    delay_s: float
    #: shard index -> the application face attached on that shard.
    faces: dict[int, Face] = field(default_factory=dict)


@dataclass(slots=True)
class RebalanceReport:
    """What one :meth:`ShardedForwarder.resize` actually moved.

    ``pending_aborted`` counts in-flight Interests whose shard key changed
    owner mid-flight: each was Nacked downstream (``NoRoute``) so retry
    policies re-route immediately — the bounded disruption of a live
    rebalance.  Frames already acknowledged (Data egressed) are never
    touched; the boundary ledgers stay exact across the resize.
    """

    at: float
    old_shards: int
    new_shards: int
    routes_added: int = 0
    routes_removed: int = 0
    producers_added: int = 0
    producers_removed: int = 0
    pending_aborted: int = 0
    cs_entries_dropped: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "at": self.at,
            "old_shards": float(self.old_shards),
            "new_shards": float(self.new_shards),
            "routes_added": float(self.routes_added),
            "routes_removed": float(self.routes_removed),
            "producers_added": float(self.producers_added),
            "producers_removed": float(self.producers_removed),
            "pending_aborted": float(self.pending_aborted),
            "cs_entries_dropped": float(self.cs_entries_dropped),
        }


class ShardedForwarder:
    """A forwarder node whose namespace is partitioned across worker shards.

    Drop-in for :class:`~repro.ndn.forwarder.Forwarder` at the node level:
    it owns external faces, prefix registrations and producer attachments,
    but every packet is consistent-hashed on its name's shard key and
    forwarded — as a wire frame, never a decoded object — to one of
    ``shards`` internal :class:`Forwarder` instances, each owning the
    complete PIT/CS/FIB state for its slice of the namespace.

    ``dispatch_service_s`` and ``shard_service_s`` give the dispatcher and
    each shard a serial per-packet service time in simulated seconds, which
    is how benchmarks model multi-core scaling deterministically; both
    default to zero (no modelled cost).

    ``partitioner`` selects the key placement function (``"ring"`` or
    ``"rendezvous"``; ``shard_weights`` enables weighted rendezvous), and
    ``hot_cache`` sizes the dispatcher's exact-match hot cache (0 disables
    it) — see the module docstring for the fast-path coherence contract.

    Producers attached under a prefix shorter than ``key_depth`` are
    installed on every shard; such handlers must answer synchronously
    (returning Data/Nack from the callback), because the face returned by
    :meth:`attach_producer` reaches only the first owning shard.
    """

    #: Faces hand this endpoint the WirePacket view, not decoded objects.
    accepts_wire_packets = True

    def __init__(
        self,
        env: Environment,
        name: str = "sharded",
        shards: int = 2,
        key_depth: int = 1,
        cs_capacity: "int | None" = 1024,
        cs_policy: "CachePolicy | str" = CachePolicy.LRU,
        cache_unsolicited: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        dispatch_service_s: float = 0.0,
        shard_service_s: float = 0.0,
        partitioner: str = "ring",
        shard_weights: Optional[Sequence[float]] = None,
        hot_cache: int = 128,
    ) -> None:
        if shards < 1:
            raise NDNError(f"{name}: need at least one shard, got {shards}")
        if key_depth < 1:
            raise NDNError(f"{name}: shard key depth must be >= 1, got {key_depth}")
        self.env = env
        self.name = name
        self.num_shards = shards
        self.key_depth = key_depth
        self.partitioner = partitioner
        # Build parameters kept verbatim so resize() can mint new shards
        # identical to the originals.
        self._cs_capacity = cs_capacity
        self._cs_policy = cs_policy
        self._cache_unsolicited = cache_unsolicited
        self._shard_service_s = shard_service_s
        self._shard_weights = (
            tuple(float(weight) for weight in shard_weights)
            if shard_weights is not None else None
        )
        self._picker = make_shard_picker(partitioner, shards, shard_weights)
        self.tracer = tracer or Tracer(clock=lambda: env.now, enabled=False)
        self.metrics = metrics or MetricsRegistry(clock=lambda: env.now)
        self.shards: list[Forwarder] = [
            Forwarder(
                env,
                name=f"{name}/shard{index}",
                cs_capacity=self._shard_capacity(cs_capacity, index, shards),
                cs_policy=cs_policy,
                cache_unsolicited=cache_unsolicited,
                tracer=self.tracer,
            )
            for index in range(shards)
        ]
        self.hot_cache: Optional[DispatcherHotCache] = (
            DispatcherHotCache(hot_cache) if hot_cache else None
        )
        if self.hot_cache is not None:
            # Shard-CS coherence: the moment a shard's Content Store stops
            # holding a name, the dispatcher must stop serving it too.
            for shard in self.shards:
                shard.cs.on_evict = self.hot_cache.invalidate_name
        self._dispatch_server = SerialServer(env, dispatch_service_s, f"{name}:dispatch")
        self._shard_servers = [
            SerialServer(env, shard_service_s, f"{name}/shard{index}")
            for index in range(shards)
        ]
        self._faces: dict[int, Face] = {}
        self._next_face_id = 1
        # Per-packet counters resolved once: the registry lookup is cheap
        # but not free, and these increment on the hottest paths.
        self._dispatched = self.metrics.counter("packets_dispatched")
        self._hot_hits = self.metrics.counter("hot_cache_hits")
        self._dropped_no_face = self.metrics.counter("packets_dropped_no_face")
        #: (external face id, shard index) -> (dispatcher-side, shard-side) pair.
        self._mirrors: dict[tuple[int, int], tuple[ShardFace, ShardFace]] = {}
        #: (prefix, external face id) -> shard indices the route lives on.
        self._registrations: dict[tuple[Name, int], list[int]] = {}
        #: (prefix, external face id) -> route cost, so resize() can re-home
        #: a registration onto a new owner at its original cost.
        self._registration_costs: dict[tuple[Name, int], float] = {}
        #: Attached producers, so resize() can re-home handlers live.
        self._producers: list[_ProducerRecord] = []
        #: Strategy choices in application order, replayed onto new shards.
        self._strategies: list[tuple["Name | str", Strategy]] = []
        self.rebalances: list[RebalanceReport] = []
        self.fib = _ShardedFib(self)

    @staticmethod
    def _shard_capacity(total: "int | None", index: int, shards: int) -> "int | None":
        """Split a node-level CS capacity evenly across shards."""
        if total is None:
            return None
        base, extra = divmod(total, shards)
        return base + (1 if index < extra else 0)

    # ------------------------------------------------------------------ faces

    def add_face(self, face: Face) -> int:
        """Register an external face and wire its per-shard boundary pairs."""
        face_id = self._next_face_id
        self._next_face_id += 1
        self._faces[face_id] = face
        for index in range(len(self.shards)):
            self._wire_boundary(face_id, index)
        return face_id

    def _wire_boundary(self, face_id: int, index: int) -> None:
        """Create the (dispatcher, shard) boundary pair for one mirror slot."""
        shard = self.shards[index]
        relay = _ShardRelay(self, face_id, index)
        dispatcher_side = ShardFace(
            self.env, relay,
            label=f"{self.name}:pipe:{face_id}>shard{index}",
            deliver_server=self._shard_servers[index],
        )
        shard_side = ShardFace(
            self.env, shard,
            label=f"{self.name}:shard{index}>pipe:{face_id}",
        )
        dispatcher_side.set_peer(shard_side)
        shard_side.set_peer(dispatcher_side)
        dispatcher_side.attach()
        shard_side.attach()
        self._mirrors[(face_id, index)] = (dispatcher_side, shard_side)

    def remove_face(self, face_id: int) -> None:
        """Detach an external face; purges its boundary pairs and routes."""
        face = self._faces.pop(face_id, None)
        if face is not None:
            face.close()
        for index, shard in enumerate(self.shards):
            pair = self._mirrors.pop((face_id, index), None)
            if pair is not None:
                shard.remove_face(pair[1].face_id)
        for key in [key for key in self._registrations if key[1] == face_id]:
            del self._registrations[key]
            self._registration_costs.pop(key, None)

    def face(self, face_id: int) -> Face:
        try:
            return self._faces[face_id]
        except KeyError:
            raise NDNError(f"{self.name}: unknown face id {face_id}") from None

    def faces(self) -> dict[int, Face]:
        return dict(self._faces)

    # ----------------------------------------------------------------- routes

    def _owning_shards(self, prefix: Name) -> list[int]:
        """The shards a prefix's routes/producers must live on.

        Uses the node's configured partitioner, so registrations and
        per-packet dispatch can never disagree about ownership.
        """
        if len(prefix) >= self.key_depth:
            return [self._picker(shard_key(prefix, self.key_depth))]
        return list(range(self.num_shards))

    def register_prefix(self, prefix: "Name | str", face: "Face | int", cost: float = 0.0) -> None:
        """Register a prefix towards an external face on its owning shards."""
        ext_id = face.face_id if isinstance(face, Face) else int(face)
        if ext_id not in self._faces:
            raise NDNError(f"{self.name}: cannot register prefix on unknown face {ext_id}")
        prefix = as_name(prefix)
        owners = self._owning_shards(prefix)
        for index in owners:
            shard_side = self._mirrors[(ext_id, index)][1]
            self.shards[index].register_prefix(prefix, shard_side, cost)
        self._registrations[(prefix, ext_id)] = owners
        self._registration_costs[(prefix, ext_id)] = cost
        self.tracer.record("fib", "register", prefix=prefix, face=ext_id, shards=owners)

    def unregister_prefix(self, prefix: "Name | str", face: "Face | int") -> bool:
        ext_id = face.face_id if isinstance(face, Face) else int(face)
        prefix = as_name(prefix)
        owners = self._registrations.pop((prefix, ext_id), None)
        self._registration_costs.pop((prefix, ext_id), None)
        if owners is None:
            return False
        removed = False
        for index in owners:
            pair = self._mirrors.get((ext_id, index))
            if pair is None:
                continue
            removed = self.shards[index].unregister_prefix(prefix, pair[1]) or removed
        return removed

    def set_strategy(self, prefix: "Name | str", strategy: Strategy) -> None:
        """Choose the forwarding strategy for a namespace (on every shard)."""
        self._strategies.append((prefix, strategy))
        for shard in self.shards:
            shard.set_strategy(prefix, strategy)

    def attach_producer(
        self,
        prefix: "Name | str",
        handler: Callable[..., "AnyPacket | None"],
        delay_s: float = 0.0,
    ) -> Face:
        """Attach an application producer on the prefix's owning shards.

        Returns the application face on the first owning shard; when the
        prefix spans several shards the handler is attached to each and must
        answer synchronously (see the class docstring).

        Installing (or re-installing) a producer invalidates every hot-cache
        entry under the prefix: the new handler may answer differently, and
        the dispatcher must not keep serving its predecessor's Data.
        """
        prefix = as_name(prefix)
        if self.hot_cache is not None:
            self.hot_cache.invalidate_under(prefix)
        owners = self._owning_shards(prefix)
        faces = {
            index: self.shards[index].attach_producer(prefix, handler, delay_s)
            for index in owners
        }
        self._producers.append(
            _ProducerRecord(prefix=prefix, handler=handler, delay_s=delay_s, faces=faces)
        )
        return faces[owners[0]]

    # -------------------------------------------------------------- rebalance

    def resize(
        self, shards: int, shard_weights: Optional[Sequence[float]] = None
    ) -> RebalanceReport:
        """Change the shard count (and optionally weights) under live traffic.

        The rebalance is a control-plane operation over the same primitives
        the data plane already trusts, in an order that never drops an
        acknowledged frame:

        1. New shards (on grow) are minted with the node's original build
           parameters, wired to every external face, and handed the node's
           strategy choices — all before any key moves.
        2. The picker switches atomically; from this instant new packets
           hash with the new placement.
        3. Per-shard Content Store capacities are re-split from the node
           budget across the new shard count.
        4. Routes and producers whose shard key changed owner are installed
           on their new shards (at the original cost) before being removed
           from the old ones — make-before-break.
        5. Pending Interests stranded on a shard that no longer owns their
           key are Nacked downstream (``NoRoute``) through the normal
           pipeline, so retrying consumers re-express and re-route; Data
           already egressed is untouched and the boundary byte ledgers stay
           exact.
        6. Cached Data whose key moved is erased (firing the hot-cache
           coherence callback); on shrink the removed shards' caches are
           cleared and their boundary pairs closed.

        ``shard_weights`` (rendezvous partitioner only) applies weighted
        placement; omitting it drops any existing weighting.  Consistency
        caveat: an unweighted grow from N to N+1 only moves keys onto the
        new shard, but changing weights can move keys between existing
        shards — both are reported per-category in the returned
        :class:`RebalanceReport`.
        """
        if shards < 1:
            raise NDNError(f"{self.name}: need at least one shard, got {shards}")
        weights = (
            tuple(float(weight) for weight in shard_weights)
            if shard_weights is not None else None
        )
        new_picker = make_shard_picker(self.partitioner, shards, weights)
        old_count = self.num_shards
        report = RebalanceReport(
            at=self.env.now, old_shards=old_count, new_shards=shards
        )

        # 1. Mint and wire new shards before anything routes to them.
        for index in range(old_count, shards):
            shard = Forwarder(
                self.env,
                name=f"{self.name}/shard{index}",
                cs_capacity=self._shard_capacity(self._cs_capacity, index, shards),
                cs_policy=self._cs_policy,
                cache_unsolicited=self._cache_unsolicited,
                tracer=self.tracer,
            )
            if self.hot_cache is not None:
                shard.cs.on_evict = self.hot_cache.invalidate_name
            for prefix, strategy in self._strategies:
                shard.set_strategy(prefix, strategy)
            self.shards.append(shard)
            self._shard_servers.append(
                SerialServer(self.env, self._shard_service_s, f"{self.name}/shard{index}")
            )
            for face_id in self._faces:
                self._wire_boundary(face_id, index)

        # 2. Switch placement: new packets hash with the new picker now.
        self._picker = new_picker
        self.num_shards = shards
        self._shard_weights = weights

        # 3. Re-split the node's CS budget across the new shard count.
        if self._cs_capacity is not None:
            for index in range(shards):
                self.shards[index].cs.capacity = self._shard_capacity(
                    self._cs_capacity, index, shards
                )

        # 4a. Re-home routes: install on new owners, then drop old ones.
        for (prefix, ext_id), old_owners in list(self._registrations.items()):
            new_owners = self._owning_shards(prefix)
            cost = self._registration_costs.get((prefix, ext_id), 0.0)
            for index in [idx for idx in new_owners if idx not in old_owners]:
                shard_side = self._mirrors[(ext_id, index)][1]
                self.shards[index].register_prefix(prefix, shard_side, cost)
                report.routes_added += 1
            for index in [idx for idx in old_owners if idx not in new_owners]:
                pair = self._mirrors.get((ext_id, index))
                if pair is not None:
                    self.shards[index].unregister_prefix(prefix, pair[1])
                report.routes_removed += 1
            self._registrations[(prefix, ext_id)] = new_owners

        # 5. Nack pending Interests whose key changed owner mid-flight —
        # before producers are torn off their old shards, so every moved
        # entry is resolved (and counted) here rather than rescued as a
        # side effect of the producer face removal below.
        for index, shard in enumerate(self.shards):
            if index < shards:
                report.pending_aborted += shard.abort_pending(
                    lambda entry, index=index: (
                        len(entry.name) >= self.key_depth
                        and self._picker(shard_key(entry.name, self.key_depth)) != index
                    )
                )
            else:  # shard is going away: everything pending is stranded
                report.pending_aborted += shard.abort_pending(lambda entry: True)

        # 4b. Re-home producers the same way (make-before-break).
        for record in self._producers:
            new_owners = self._owning_shards(record.prefix)
            added = [idx for idx in new_owners if idx not in record.faces]
            removed = [idx for idx in list(record.faces) if idx not in new_owners]
            if (added or removed) and self.hot_cache is not None:
                self.hot_cache.invalidate_under(record.prefix)
            for index in added:
                record.faces[index] = self.shards[index].attach_producer(
                    record.prefix, record.handler, record.delay_s
                )
                report.producers_added += 1
            for index in removed:
                app_face = record.faces.pop(index)
                peer = app_face.peer
                if peer is not None:
                    self.shards[index].remove_face(peer.face_id)
                report.producers_removed += 1

        # 5. Nack pending Interests whose key changed owner mid-flight.
        for index, shard in enumerate(self.shards):
            if index < shards:
                report.pending_aborted += shard.abort_pending(
                    lambda entry, index=index: (
                        len(entry.name) >= self.key_depth
                        and self._picker(shard_key(entry.name, self.key_depth)) != index
                    )
                )
            else:  # shard is going away: everything pending is stranded
                report.pending_aborted += shard.abort_pending(lambda entry: True)

        # 6. Drop moved cache entries (fires hot-cache invalidation).
        for index in range(min(shards, len(self.shards))):
            shard = self.shards[index]
            moved = [
                name for name in shard.cs.names()
                if len(name) >= self.key_depth
                and self._picker(shard_key(name, self.key_depth)) != index
            ]
            before = len(shard.cs)
            for name in moved:
                shard.cs.erase(name)
            report.cs_entries_dropped += before - len(shard.cs)
        if shards < old_count:
            for index in range(shards, old_count):
                shard = self.shards[index]
                report.cs_entries_dropped += len(shard.cs)
                shard.cs.clear()
                for face_id in list(self._faces):
                    pair = self._mirrors.pop((face_id, index), None)
                    if pair is not None:
                        pair[0].close()
            del self.shards[shards:]
            del self._shard_servers[shards:]

        self.rebalances.append(report)
        self.tracer.record(
            "shard", "resize", old=old_count, new=shards,
            aborted=report.pending_aborted,
        )
        return report

    def set_shard_weights(self, weights: Sequence[float]) -> RebalanceReport:
        """Re-weight the rendezvous partitioner live (a same-count resize)."""
        return self.resize(self.num_shards, weights)

    def crash_shard(self, index: int) -> int:
        """Abruptly fail one shard worker and recover it cold.

        Models a worker crash plus supervisor restart: every Interest
        pending on the shard is Nacked downstream (``NoRoute``) — the
        dispatcher answering on behalf of the dead worker, which is what
        lets self-healing consumers retransmit instead of waiting out
        their lifetimes — and the shard's Content Store is dropped (a
        restarted worker starts cold).  Tables end empty, faces and routes
        stay intact.  Returns the number of pending Interests aborted.
        """
        if not 0 <= index < len(self.shards):
            raise NDNError(f"{self.name}: no shard {index} to crash")
        shard = self.shards[index]
        aborted = shard.abort_pending(lambda entry: True)
        shard.cs.clear()
        self.tracer.record("shard", "crash", shard=index, aborted=aborted)
        return aborted

    # ------------------------------------------------------------- dispatching

    def receive_packet(self, packet: AnyPacket, face: Face) -> None:
        """Entry point for packets arriving on an external face."""
        wire_packet = WirePacket.of(packet)
        ext_id = face.face_id
        self._dispatched.inc()
        self._dispatch_server.submit(lambda: self._dispatch(wire_packet, ext_id))

    def _dispatch(self, wire_packet: WirePacket, ext_id: int) -> None:
        if self.hot_cache is not None and wire_packet.is_interest:
            if self._fast_path(wire_packet, ext_id):
                return
        index = self._picker(
            key_from_name_bytes(wire_packet.name_bytes, self.key_depth)
        )
        pair = self._mirrors.get((ext_id, index))
        if pair is None:  # external face removed while the packet queued
            self._dropped_no_face.inc()
            return
        if self.tracer.enabled:
            self.tracer.record(
                "shard", "dispatch", name=wire_packet.name, shard=index, face=ext_id
            )
        pair[0].send(wire_packet)

    def _fast_path(self, interest: WirePacket, ext_id: int) -> bool:
        """Serve a repeat Interest from the dispatcher hot cache.

        0 decodes and no Name components, counter-enforced; the only
        parsing a hit pays is the Interest's own one-time shallow span
        walk (for the hop-limit check — never a re-walk, and never the
        Data's).  Returns False (take the shard path) on any miss, stale
        entry, or an exhausted hop limit (the owning shard drops those,
        and the cache must not resurrect them).
        """
        cache = self.hot_cache
        assert cache is not None
        template = cache.get(interest.name_bytes, self.env.now)
        if template is None:
            return False
        if interest.hop_limit <= 0:
            # Not served after all: hand the lookup back so the cache's
            # hit ledger keeps matching the exchanges actually answered.
            cache.hits -= 1
            cache.misses += 1
            return False
        self._hot_hits.inc()
        if self.tracer.enabled:
            self.tracer.record("shard", "hot-hit", name=interest.name, face=ext_id)
        self._send_out(ext_id, template.detached_view())
        return True

    def _egress(self, ext_id: int, packet: WirePacket, from_shard: int) -> None:
        self._dispatch_server.submit(
            lambda: self._send_out(ext_id, packet, from_shard)
        )

    def _send_out(
        self, ext_id: int, packet: WirePacket, from_shard: Optional[int] = None
    ) -> None:
        if (
            from_shard is not None
            and from_shard < len(self.shards)
            and self.hot_cache is not None
            and packet.is_data
        ):
            # The bounds check covers a shard removed by a shrinking
            # resize() while its last egress frames were still queued.
            self._hot_insert(packet, from_shard)
        face = self._faces.get(ext_id)
        if face is None:
            self._dropped_no_face.inc()
            return
        face.send(packet)

    def _hot_insert(self, packet: WirePacket, shard_index: int) -> None:
        """Mirror egress Data into the hot cache (coherence gates apply).

        Admitted only while resident in the owning shard's Content Store —
        the CS eviction callback can then always reach the mirrored copy.
        This runs on every egressed Data, so it is deliberately cheap: the
        name rides over from the shard boundary, the key is one memoised
        slice, and the freshness TLV is *not* read here — the hot cache
        validates it lazily on the entry's first lookup, so cache-hostile
        (no-repeat) workloads never pay a span walk per Data.  The raw
        egress view is stored as the template; every serve (and the lazy
        validation) goes through a detached clone-or-read that a
        consumer-side decode of the delivered view cannot contaminate.
        """
        cache = self.hot_cache
        assert cache is not None
        arrival = self.shards[shard_index].cs.arrival(packet.name)
        if arrival is None:
            return
        # Age the mirrored entry from the CS arrival time, not egress time:
        # a shard CS may re-serve stale Data (non-MustBeFresh semantics),
        # and anchoring at egress would restart the freshness window and
        # let the fast path serve what the CS itself considers stale.
        cache.insert(packet.name_bytes, packet, arrival, None, shard_index)

    # ------------------------------------------------------------------- misc

    def pit_entries(self) -> int:
        """Total pending Interests across every shard (leak check)."""
        return sum(len(shard.pit) for shard in self.shards)

    def face_stats(self) -> dict[int, dict[str, int]]:
        """Per-external-face counter snapshots."""
        return {face_id: face.stats.as_dict() for face_id, face in self._faces.items()}

    def boundary_stats(self) -> dict[tuple[int, int], dict[str, dict[str, int]]]:
        """Per (external face, shard) boundary counters, both directions.

        ``dispatcher`` is the dispatcher-side face, ``shard`` the shard-side
        one; a healthy boundary has ``dispatcher.bytes_out ==
        shard.bytes_in`` and vice versa (byte counts are ``len(wire)`` of
        the frames' payloads).
        """
        report: dict[tuple[int, int], dict[str, dict[str, int]]] = {}
        for key, (dispatcher_side, shard_side) in self._mirrors.items():
            report[key] = {
                "dispatcher": dispatcher_side.stats.as_dict(),
                "shard": shard_side.stats.as_dict(),
            }
        return report

    def shard_stats(self) -> list[dict[str, object]]:
        """Each shard forwarder's stats snapshot, in shard order."""
        return [shard.stats() for shard in self.shards]

    def stats(self) -> dict[str, object]:
        """Node-level snapshot: aggregate counters plus per-shard detail."""
        return {
            "name": self.name,
            "shards": self.num_shards,
            "partitioner": self.partitioner,
            "faces": len(self._faces),
            "face_stats": self.face_stats(),
            "fib_entries": len(self.fib),
            "pit_entries": self.pit_entries(),
            "dispatched": self._dispatch_server.served,
            "hot_cache": self.hot_cache.stats() if self.hot_cache is not None else None,
            "shard_stats": self.shard_stats(),
            "metrics": self.metrics.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ShardedForwarder {self.name} shards={self.num_shards} faces={len(self._faces)}>"


def forwarder_for_node(env: Environment, node, **kwargs):
    """Build the data plane a :class:`~repro.sim.topology.TopologyNode` asks for.

    ``node.shards == 1`` yields a plain :class:`Forwarder`; more yields a
    :class:`ShardedForwarder`.  Keyword arguments are passed through, with
    shard-only options (``key_depth``, partitioner/weights, hot cache,
    service times) dropped for the single-process case.  The node's own
    ``partitioner``/``shard_weights`` declarations (when present) are the
    defaults; explicit keyword arguments win.
    """
    shards = getattr(node, "shards", 1)
    if shards <= 1:
        for shard_only in (
            "key_depth", "dispatch_service_s", "shard_service_s",
            "partitioner", "shard_weights", "hot_cache",
        ):
            kwargs.pop(shard_only, None)
        return Forwarder(env, name=node.name, **kwargs)
    kwargs.setdefault("partitioner", getattr(node, "partitioner", "ring"))
    kwargs.setdefault("shard_weights", getattr(node, "shard_weights", None))
    return ShardedForwarder(env, name=node.name, shards=shards, **kwargs)


# ------------------------------------------------------------ process workers

#: Control message closing a worker (cannot collide with a frame batch:
#: batches are never empty and always start with a frame header).
_QUIT = b"\xffQUIT"


class _FrameCollector:
    """Worker-side endpoint gathering the shard's outbound packets."""

    accepts_wire_packets = True

    def __init__(self) -> None:
        self._out: list[tuple[int, WirePacket]] = []

    def add_face(self, face: Face) -> int:
        return 0

    def receive_packet(self, packet: WirePacket, face: Face) -> None:
        self._out.append((0, packet))

    def take(self) -> list[tuple[int, WirePacket]]:
        taken, self._out = self._out, []
        return taken


def _shard_worker_main(conn, shard_id: int, num_shards: int, node_builder) -> None:
    """One shard worker process: a forwarder fed wire frames over a pipe.

    ``node_builder(env, shard_id, num_shards)`` returns the shard's
    :class:`Forwarder` with its producers/routes already attached.  The
    loop replies exactly once per input blob — receive a frame batch,
    drain the simulation, reply with the outbound frames — so a worker's
    output is a deterministic function of its input batches whether the
    parent drives it batch-synchronously (:meth:`ShardWorkerPool.submit` /
    :meth:`~ShardWorkerPool.collect`) or keeps a pipelined window in
    flight (:meth:`~ShardWorkerPool.stream`).
    """
    env = Environment()
    forwarder = node_builder(env, shard_id, num_shards)
    collector = _FrameCollector()
    pipe_face = LocalFace(env, collector, label=f"shard{shard_id}:pipe")
    fwd_face = LocalFace(env, forwarder, label=f"shard{shard_id}:fwd")
    pipe_face.set_peer(fwd_face)
    fwd_face.set_peer(pipe_face)
    fwd_face.attach()
    pipe_face.attach()
    decodes_before = WirePacket.wire_decodes
    wire_bytes_in = 0
    wire_bytes_out = 0
    frames_in = 0
    frames_out = 0
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except EOFError:
                return
            if blob == _QUIT:
                stats = {
                    "shard_id": shard_id,
                    "wire_decodes": WirePacket.wire_decodes - decodes_before,
                    "pit_entries": len(forwarder.pit),
                    "cs_entries": len(forwarder.cs),
                    "wire_bytes_in": wire_bytes_in,
                    "wire_bytes_out": wire_bytes_out,
                    "frames_in": frames_in,
                    "frames_out": frames_out,
                    "face_stats": fwd_face.stats.as_dict(),
                }
                conn.send_bytes(json.dumps(stats).encode("utf-8"))
                return
            for _tag, packet in iter_frames(blob):
                wire_bytes_in += packet.size
                frames_in += 1
                pipe_face.send(packet)
            env.run()
            replies = collector.take()
            wire_bytes_out += sum(packet.size for _tag, packet in replies)
            frames_out += len(replies)
            conn.send_bytes(encode_frames(replies))
    finally:
        conn.close()


class ShardWorkerPool:
    """A real multi-process shard pool: forked workers fed frames over pipes.

    This is the deployment-shaped half of the sharded data plane: each shard
    is an OS process running its own forwarder, and the only thing that
    ever crosses the pipe is the frame encoding of a wire buffer.  Workers
    report a transit-decode count on shutdown so callers can assert the
    boundary stayed bytes-only end to end.

    Reuses the :mod:`repro.analysis.sweep` fork rationale: a forked child
    sees every module already imported in the parent, so ``node_builder``
    (any callable, even one defined in a test) resolves by reference.
    """

    def __init__(
        self,
        num_shards: int,
        node_builder: Callable[[Environment, int, int], Forwarder],
        key_depth: int = 1,
        partitioner: str = "ring",
        shard_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if num_shards < 1:
            raise NDNError(f"need at least one shard worker, got {num_shards}")
        self.num_shards = num_shards
        self.key_depth = key_depth
        self.partitioner = partitioner
        self._picker = make_shard_picker(partitioner, num_shards, shard_weights)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        self._conns = []
        self._procs = []
        #: Parent-side accounting of wire payload bytes per shard pipe.
        self.wire_bytes_to = [0] * num_shards
        self.wire_bytes_from = [0] * num_shards
        #: Parent-side frame counts per pipe, matched against the workers'
        #: own ``frames_in``/``frames_out`` reports by the drain guarantee.
        self.frames_to = [0] * num_shards
        self.frames_from = [0] * num_shards
        #: Input batches sent minus reply blobs received, per pipe (the
        #: streaming window accounting; close() drains whatever remains).
        self._inflight = [0] * num_shards
        for shard_id in range(num_shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            proc = context.Process(
                target=_shard_worker_main,
                args=(child_conn, shard_id, num_shards, node_builder),
                daemon=True,
                name=f"shard-worker-{shard_id}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False

    # ------------------------------------------------------------------ I/O

    def route(self, packet: "WirePacket | AnyPacket") -> int:
        """The worker a packet belongs to (partitioner hash of its name).

        Reads the packet's memoised name bytes — the same byte-level key
        extraction the in-sim dispatcher uses; no Name is materialised.
        """
        return self._picker(
            key_from_name_bytes(WirePacket.of(packet).name_bytes, self.key_depth)
        )

    def submit(self, packets: Sequence["WirePacket | AnyPacket"]) -> int:
        """Partition ``packets`` by shard and send one frame batch per pipe.

        Returns the number of packets submitted.
        """
        batches: dict[int, list[tuple[int, WirePacket]]] = {}
        for packet in packets:
            view = WirePacket.of(packet)
            batches.setdefault(self.route(view), []).append((0, view))
        for shard_id, items in batches.items():
            self.wire_bytes_to[shard_id] += sum(view.size for _tag, view in items)
            self.frames_to[shard_id] += len(items)
            self._inflight[shard_id] += 1
            self._conns[shard_id].send_bytes(encode_frames(items))
        return sum(len(items) for items in batches.values())

    def collect(self, count: int, timeout_s: float = 30.0) -> list[WirePacket]:
        """Gather ``count`` reply packets from the worker pipes."""
        deadline = time.monotonic() + timeout_s  # lint: allow[RL002] wall-clock IPC timeout: fork workers run outside simulated time
        results: list[WirePacket] = []
        pending = {conn: shard_id for shard_id, conn in enumerate(self._conns)}
        while len(results) < count:
            remaining = deadline - time.monotonic()  # lint: allow[RL002] wall-clock IPC timeout: fork workers run outside simulated time
            if remaining <= 0:
                raise NDNError(
                    f"shard pool timed out with {len(results)}/{count} replies"
                )
            ready = multiprocessing.connection.wait(list(pending), timeout=remaining)
            for conn in ready:
                blob = conn.recv_bytes()
                shard_id = pending[conn]
                self._inflight[shard_id] -= 1
                for _tag, packet in iter_frames(blob):
                    self.wire_bytes_from[shard_id] += packet.size
                    self.frames_from[shard_id] += 1
                    results.append(packet)
        return results

    def stream(
        self,
        packets: Iterable["WirePacket | AnyPacket"],
        window: int = 4,
        max_batch: int = 32,
        timeout_s: float = 30.0,
    ) -> Iterator[WirePacket]:
        """Pipelined submit-while-collecting: yield replies as they arrive.

        The batch-synchronous API (:meth:`submit` then :meth:`collect`)
        makes an interactive client pay a full pipe round-trip per
        request.  This generator instead keeps up to ``window`` coalesced
        frame batches (each at most ``max_batch`` frames) in flight *per
        pipe*, refilling windows as reply blobs drain — parent-side encode
        overlaps worker-side processing and pipe latency is hidden behind
        the in-flight window.

        Exact byte/frame accounting is preserved: every frame is counted
        into ``wire_bytes_to``/``frames_to`` when sent and
        ``wire_bytes_from``/``frames_from`` when its reply blob is read —
        a whole blob is accounted *before* its frames are yielded, so
        abandoning the generator mid-blob cannot lose frames from the
        ledger.  Replies from one worker stay in submission order; across
        workers, arrival order is OS-timing dependent.  ``timeout_s`` is
        an inactivity bound (no reply blob for that long raises).  After
        abandoning a stream mid-flight, only :meth:`close` is safe — it
        drains the remaining windows deterministically.

        The parent drains every ready reply *before* each potentially
        blocking send, so the in-flight window may exceed the OS pipe
        buffers without wedging either end.  The remaining requirement is
        per-message: one coalesced batch (``max_batch * frame_size``, and
        its reply) must fit the pipe buffer — typically 64 KiB; the
        defaults coalesce a few KiB.
        """
        if self._closed:
            raise NDNError("cannot stream through a closed shard pool")
        if window < 1:
            raise NDNError(f"stream window must be >= 1, got {window}")
        if max_batch < 1:
            raise NDNError(f"stream max_batch must be >= 1, got {max_batch}")
        source = iter(packets)
        pending: list[deque[WirePacket]] = [deque() for _ in range(self.num_shards)]
        shard_of = {id(conn): shard_id for shard_id, conn in enumerate(self._conns)}
        outbox: deque[WirePacket] = deque()
        high_water = self.num_shards * window * max_batch
        exhausted = False

        def drain(timeout: float) -> bool:
            """Receive ready reply blobs into the outbox; True if any came."""
            waitable = [
                conn for shard_id, conn in enumerate(self._conns)
                if self._inflight[shard_id]
            ]
            if not waitable:
                return False
            ready = multiprocessing.connection.wait(waitable, timeout=timeout)
            for conn in ready:
                shard_id = shard_of[id(conn)]
                blob = conn.recv_bytes()
                self._inflight[shard_id] -= 1
                frames = list(iter_frames(blob))
                self.wire_bytes_from[shard_id] += sum(v.size for _t, v in frames)
                self.frames_from[shard_id] += len(frames)
                outbox.extend(view for _tag, view in frames)
            return bool(ready)

        while True:
            # Top up the partition queues, then every open window.
            while not exhausted and sum(map(len, pending)) < high_water:
                try:
                    view = WirePacket.of(next(source))
                except StopIteration:
                    exhausted = True
                    break
                pending[self.route(view)].append(view)
            for shard_id, backlog in enumerate(pending):
                while self._inflight[shard_id] < window and backlog:
                    items: list[tuple[int, WirePacket]] = []
                    while backlog and len(items) < max_batch:
                        items.append((0, backlog.popleft()))
                    # Clear the reply pipes before a send that may block:
                    # a worker stuck writing its reply would otherwise stop
                    # reading input, wedging both ends mid-write.
                    drain(0)
                    self.wire_bytes_to[shard_id] += sum(v.size for _t, v in items)
                    self.frames_to[shard_id] += len(items)
                    self._inflight[shard_id] += 1
                    self._conns[shard_id].send_bytes(encode_frames(items))
            while outbox:
                yield outbox.popleft()
            if exhausted and not any(pending) and not any(self._inflight):
                return
            if not drain(timeout_s):
                raise NDNError(
                    f"shard pool stream stalled for {timeout_s}s with "
                    f"{sum(self._inflight)} batches in flight"
                )
            while outbox:
                yield outbox.popleft()

    def close(self, timeout_s: float = 10.0) -> list[dict]:
        """Shut every worker down and return their final stats reports.

        Reply batches still sitting in a pipe — a close without (or after
        a failed) ``collect``, or a :meth:`stream` abandoned with windows
        in flight — are drained and counted into
        ``wire_bytes_from``/``frames_from``, not mistaken for the stats
        report.  The ``_QUIT`` sentinel queues behind every batch already
        sent, and the worker replies once per batch before acknowledging
        it, so the drain is deterministic: afterwards the parent's frame
        ledger matches the workers' own ``frames_in``/``frames_out``
        reports exactly — zero lost frames.  Workers are joined (and
        terminated if hung) even when a pipe read fails.
        """
        if self._closed:
            return []
        self._closed = True
        reports: list[dict] = []
        try:
            for conn in self._conns:
                try:
                    conn.send_bytes(_QUIT)
                except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                    continue
            for shard_id, conn in enumerate(self._conns):
                try:
                    # The stats report follows any unconsumed reply batches.
                    while conn.poll(timeout_s):
                        blob = conn.recv_bytes()
                        report = self._parse_stats(blob)
                        if report is not None:
                            reports.append(report)
                            break
                        self._inflight[shard_id] -= 1
                        for _tag, packet in iter_frames(blob):
                            self.wire_bytes_from[shard_id] += packet.size
                            self.frames_from[shard_id] += 1
                except (EOFError, OSError, NDNError):  # pragma: no cover - dead worker
                    pass
                finally:
                    conn.close()
        finally:
            for proc in self._procs:
                proc.join(timeout=timeout_s)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=timeout_s)
        return reports

    @staticmethod
    def _parse_stats(blob: bytes) -> "dict | None":
        """The worker's JSON stats report, or ``None`` for a frame batch."""
        if not blob.startswith(b"{"):
            return None
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):  # pragma: no cover - defensive
            return None

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
