"""Segmentation of large content objects into Data packets.

Genomics datasets and BLAST outputs are far larger than a single packet; the
data lake publishes them as a sequence of segments named
``<object>/seg=<index>`` with the final block id set on every segment, exactly
as NDN repos do.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.exceptions import NDNError
from repro.ndn.name import Component, Name
from repro.ndn.packet import Data
from repro.ndn.security import DigestSigner, HmacSigner

__all__ = ["segment_content", "reassemble", "segment_names", "DEFAULT_SEGMENT_SIZE"]

#: Default segment payload size in bytes (mirrors common NDN repo settings).
DEFAULT_SEGMENT_SIZE = 8192


def segment_content(
    base_name: "Name | str",
    content: bytes,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    signer: "DigestSigner | HmacSigner | None" = None,
    freshness_period: float = 0.0,
) -> list[Data]:
    """Split ``content`` into signed Data segments under ``base_name``.

    Even empty content produces a single (empty) segment so consumers always
    find ``seg=0``.
    """
    if segment_size <= 0:
        raise NDNError(f"segment size must be positive, got {segment_size}")
    base = Name(base_name)
    signer = signer or DigestSigner()
    chunks: list[bytes] = [
        content[offset:offset + segment_size] for offset in range(0, len(content), segment_size)
    ] or [b""]
    final_block = Component(f"seg={len(chunks) - 1}")
    packets = []
    for index, chunk in enumerate(chunks):
        packet = Data(
            name=base.append(f"seg={index}"),
            content=chunk,
            freshness_period=freshness_period,
            final_block_id=final_block,
        ).sign(signer)
        packets.append(packet)
    return packets


def segment_names(base_name: "Name | str", total_size: int,
                  segment_size: int = DEFAULT_SEGMENT_SIZE) -> list[Name]:
    """The names the segments of an object of ``total_size`` bytes would use."""
    if segment_size <= 0:
        raise NDNError(f"segment size must be positive, got {segment_size}")
    base = Name(base_name)
    count = max(1, -(-total_size // segment_size))
    return [base.append(f"seg={index}") for index in range(count)]


def _segment_index(data: Data) -> int:
    label = data.name.last().to_str()
    if not label.startswith("seg="):
        raise NDNError(f"not a segment name: {data.name}")
    try:
        return int(label[len("seg="):])
    except ValueError as exc:
        raise NDNError(f"malformed segment index in {data.name}") from exc


def reassemble(segments: "Sequence[Data] | Iterable[Data]") -> bytes:
    """Reassemble segments (any order) into the original byte string.

    Raises :class:`NDNError` on missing or duplicate segments, or when the
    final block id disagrees with the number of segments supplied.
    """
    packets = list(segments)
    if not packets:
        raise NDNError("cannot reassemble zero segments")
    indexed: dict[int, Data] = {}
    expected_last: Optional[int] = None
    for packet in packets:
        index = _segment_index(packet)
        if index in indexed:
            raise NDNError(f"duplicate segment {index} for {packet.name.prefix(-1)}")
        indexed[index] = packet
        if packet.final_block_id is not None:
            label = packet.final_block_id.to_str()
            if label.startswith("seg="):
                last = int(label[len("seg="):])
                if expected_last is not None and expected_last != last:
                    raise NDNError("segments disagree on the final block id")
                expected_last = last
    last_index = expected_last if expected_last is not None else max(indexed)
    missing = [i for i in range(last_index + 1) if i not in indexed]
    if missing:
        raise NDNError(f"missing segments: {missing}")
    return b"".join(indexed[i].content for i in range(last_index + 1))
