"""Signing and verification for NDN Data packets.

The paper leans on NDN's built-in data authentication ("NDN inherently secures
data") — every Data packet carries a signature.  Two signer types are
implemented:

* :class:`DigestSigner` — SHA-256 digest of the signed portion (integrity
  only, equivalent to ``DigestSha256`` in the NDN spec);
* :class:`HmacSigner` — HMAC-SHA256 with a named shared key (authentication).

A :class:`KeyChain` stores keys by name, picks a default signer, and verifies
packets produced by either signer type.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import VerificationError
from repro.ndn.name import Name

__all__ = [
    "SignatureType",
    "SignatureInfo",
    "sha256_digest",
    "DigestSigner",
    "HmacSigner",
    "KeyChain",
]


class SignatureType:
    """Signature type codes (mirrors the NDN packet spec where possible)."""

    DIGEST_SHA256 = 0
    HMAC_SHA256 = 4


@dataclass(frozen=True)
class SignatureInfo:
    """Metadata describing how a packet was signed."""

    signature_type: int
    key_locator: Optional[Name] = None


def sha256_digest(payload: bytes) -> bytes:
    """SHA-256 digest of ``payload``."""
    return hashlib.sha256(payload).digest()


class DigestSigner:
    """Integrity-only signer: the signature is the SHA-256 of the payload."""

    signature_type = SignatureType.DIGEST_SHA256

    def signature_info(self) -> SignatureInfo:
        return SignatureInfo(signature_type=self.signature_type)

    def sign(self, payload: bytes) -> bytes:
        return sha256_digest(payload)

    def verify(self, payload: bytes, signature: bytes) -> bool:
        return hmac.compare_digest(sha256_digest(payload), signature)


class HmacSigner:
    """HMAC-SHA256 signer bound to a named shared key."""

    signature_type = SignatureType.HMAC_SHA256

    def __init__(self, key_name: "Name | str", key: bytes) -> None:
        if not key:
            raise VerificationError("empty HMAC key")
        self.key_name = key_name if isinstance(key_name, Name) else Name(key_name)
        self._key = key

    def signature_info(self) -> SignatureInfo:
        return SignatureInfo(signature_type=self.signature_type, key_locator=self.key_name)

    def sign(self, payload: bytes) -> bytes:
        return hmac.new(self._key, payload, hashlib.sha256).digest()

    def verify(self, payload: bytes, signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(payload), signature)


class KeyChain:
    """Holds named HMAC keys and a default signer; verifies signed packets."""

    def __init__(self) -> None:
        self._signers: dict[Name, HmacSigner] = {}
        self._default: "HmacSigner | DigestSigner" = DigestSigner()

    def add_key(self, key_name: "Name | str", key: bytes, default: bool = False) -> HmacSigner:
        """Register a shared HMAC key under ``key_name``."""
        signer = HmacSigner(key_name, key)
        self._signers[signer.key_name] = signer
        if default:
            self._default = signer
        return signer

    def get_signer(self, key_name: "Name | str | None" = None) -> "HmacSigner | DigestSigner":
        """The signer for ``key_name`` (or the default signer when ``None``)."""
        if key_name is None:
            return self._default
        name = key_name if isinstance(key_name, Name) else Name(key_name)
        try:
            return self._signers[name]
        except KeyError:
            raise VerificationError(f"unknown signing key {name}") from None

    def verify(self, payload: bytes, signature: bytes, info: SignatureInfo) -> bool:
        """Verify ``signature`` over ``payload`` according to ``info``."""
        if info.signature_type == SignatureType.DIGEST_SHA256:
            return DigestSigner().verify(payload, signature)
        if info.signature_type == SignatureType.HMAC_SHA256:
            if info.key_locator is None:
                raise VerificationError("HMAC signature without key locator")
            signer = self.get_signer(info.key_locator)
            return signer.verify(payload, signature)
        raise VerificationError(f"unsupported signature type {info.signature_type}")
