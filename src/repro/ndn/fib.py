"""Forwarding Information Base (FIB) backed by a name-prefix trie.

The FIB maps name prefixes to next-hop faces with costs.  Lookup is
longest-prefix match over name components — the mechanism that lets
``/ndn/k8s/compute`` and ``/ndn/k8s/data`` route to different places while a
bare ``/ndn/k8s`` route acts as a fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import NDNError
from repro.ndn.name import Component, Name

__all__ = ["NextHop", "FibEntry", "NameTree", "Fib"]


@dataclass(frozen=True)
class NextHop:
    """One next-hop: a face id plus a routing cost."""

    face_id: int
    cost: float = 0.0


@dataclass
class FibEntry:
    """A FIB entry: a prefix and its next hops sorted by cost."""

    prefix: Name
    nexthops: list[NextHop] = field(default_factory=list)

    def add_nexthop(self, face_id: int, cost: float = 0.0) -> None:
        """Add or update a next hop, keeping the list sorted by cost."""
        self.nexthops = [hop for hop in self.nexthops if hop.face_id != face_id]
        self.nexthops.append(NextHop(face_id=face_id, cost=cost))
        self.nexthops.sort(key=lambda hop: (hop.cost, hop.face_id))

    def remove_nexthop(self, face_id: int) -> bool:
        before = len(self.nexthops)
        self.nexthops = [hop for hop in self.nexthops if hop.face_id != face_id]
        return len(self.nexthops) != before

    def has_nexthops(self) -> bool:
        return bool(self.nexthops)

    def best(self) -> Optional[NextHop]:
        return self.nexthops[0] if self.nexthops else None


class _TrieNode:
    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: dict[Component, _TrieNode] = {}
        self.entry: Optional[FibEntry] = None


class NameTree:
    """A trie over name components holding :class:`FibEntry` objects."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: "Name | str") -> FibEntry:
        """Get-or-create the entry at ``prefix``."""
        prefix = Name(prefix)
        node = self._root
        for comp in prefix:
            node = node.children.setdefault(comp, _TrieNode())
        if node.entry is None:
            node.entry = FibEntry(prefix=prefix)
            self._size += 1
        return node.entry

    def exact(self, prefix: "Name | str") -> Optional[FibEntry]:
        """The entry exactly at ``prefix``, if any."""
        prefix = Name(prefix)
        node = self._root
        for comp in prefix:
            node = node.children.get(comp)
            if node is None:
                return None
        return node.entry

    def longest_prefix_match(self, name: "Name | str") -> Optional[FibEntry]:
        """The deepest entry whose prefix is a prefix of ``name``."""
        name = Name(name)
        node = self._root
        best = node.entry
        for comp in name:
            node = node.children.get(comp)
            if node is None:
                break
            if node.entry is not None:
                best = node.entry
        return best

    def remove(self, prefix: "Name | str") -> bool:
        """Remove the entry at ``prefix`` (pruning empty branches)."""
        prefix = Name(prefix)
        path: list[tuple[_TrieNode, Component]] = []
        node = self._root
        for comp in prefix:
            child = node.children.get(comp)
            if child is None:
                return False
            path.append((node, comp))
            node = child
        if node.entry is None:
            return False
        node.entry = None
        self._size -= 1
        # Prune childless, entry-less nodes bottom-up.
        for parent, comp in reversed(path):
            child = parent.children[comp]
            if child.entry is None and not child.children:
                del parent.children[comp]
            else:
                break
        return True

    def entries(self) -> Iterator[FibEntry]:
        """All entries, depth-first in canonical component order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.entry is not None:
                yield node.entry
            for comp in sorted(node.children, reverse=True):
                stack.append(node.children[comp])


class Fib:
    """The forwarder's FIB: prefix registration plus longest-prefix lookup."""

    def __init__(self) -> None:
        self._tree = NameTree()
        self.lookups = 0

    def __len__(self) -> int:
        return len(self._tree)

    def add_route(self, prefix: "Name | str", face_id: int, cost: float = 0.0) -> FibEntry:
        """Register ``prefix`` towards ``face_id`` with the given cost."""
        if face_id < 0:
            raise NDNError(f"invalid face id {face_id}")
        entry = self._tree.insert(prefix)
        entry.add_nexthop(face_id, cost)
        return entry

    def remove_route(self, prefix: "Name | str", face_id: int) -> bool:
        """Unregister one next hop; drops the entry when no hops remain."""
        entry = self._tree.exact(prefix)
        if entry is None:
            return False
        removed = entry.remove_nexthop(face_id)
        if removed and not entry.has_nexthops():
            self._tree.remove(prefix)
        return removed

    def remove_face(self, face_id: int) -> int:
        """Remove ``face_id`` from every entry (face went down); returns count."""
        removed = 0
        for entry in list(self._tree.entries()):
            if entry.remove_nexthop(face_id):
                removed += 1
                if not entry.has_nexthops():
                    self._tree.remove(entry.prefix)
        return removed

    def lookup(self, name: "Name | str") -> Optional[FibEntry]:
        """Longest-prefix match for ``name`` (entries with live next hops only)."""
        self.lookups += 1
        entry = self._tree.longest_prefix_match(name)
        if entry is not None and entry.has_nexthops():
            return entry
        return None

    def exact(self, prefix: "Name | str") -> Optional[FibEntry]:
        return self._tree.exact(prefix)

    def entries(self) -> list[FibEntry]:
        return list(self._tree.entries())

    def prefixes(self) -> list[Name]:
        return [entry.prefix for entry in self._tree.entries()]
