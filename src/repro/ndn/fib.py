"""Forwarding Information Base (FIB) backed by a name-prefix trie.

The FIB maps name prefixes to next-hop faces with costs.  Lookup is
longest-prefix match over name components — the mechanism that lets
``/ndn/k8s/compute`` and ``/ndn/k8s/data`` route to different places while a
bare ``/ndn/k8s`` route acts as a fallback.

The trie itself lives in :mod:`repro.ndn.nametree` and is shared with the
Content Store; this module specialises it to :class:`FibEntry` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import NDNError
from repro.ndn.name import Name
from repro.ndn.nametree import NameTree as _GenericNameTree, as_name

__all__ = ["NextHop", "FibEntry", "NameTree", "Fib"]


@dataclass(frozen=True, slots=True)
class NextHop:
    """One next-hop: a face id plus a routing cost."""

    face_id: int
    cost: float = 0.0


@dataclass(slots=True)
class FibEntry:
    """A FIB entry: a prefix and its next hops sorted by cost.

    Slotted (lint rule RL006): a 10k-node overlay FIB holds an entry per
    route and a NextHop per adjacency; both must stay cheap to hold.
    """

    prefix: Name
    nexthops: list[NextHop] = field(default_factory=list)

    def add_nexthop(self, face_id: int, cost: float = 0.0) -> None:
        """Add or update a next hop, keeping the list sorted by cost."""
        self.nexthops = [hop for hop in self.nexthops if hop.face_id != face_id]
        self.nexthops.append(NextHop(face_id=face_id, cost=cost))
        self.nexthops.sort(key=lambda hop: (hop.cost, hop.face_id))

    def remove_nexthop(self, face_id: int) -> bool:
        before = len(self.nexthops)
        self.nexthops = [hop for hop in self.nexthops if hop.face_id != face_id]
        return len(self.nexthops) != before

    def has_nexthops(self) -> bool:
        return bool(self.nexthops)

    def best(self) -> Optional[NextHop]:
        return self.nexthops[0] if self.nexthops else None


class NameTree:
    """A trie over name components holding :class:`FibEntry` objects.

    A thin :class:`FibEntry`-typed facade over the generic
    :class:`repro.ndn.nametree.NameTree`, kept for API (and import)
    compatibility with earlier revisions.
    """

    __slots__ = ("_tree",)

    def __init__(self) -> None:
        self._tree = _GenericNameTree()

    def __len__(self) -> int:
        return len(self._tree)

    def insert(self, prefix: "Name | str") -> FibEntry:
        """Get-or-create the entry at ``prefix``."""
        return self._tree.setdefault(prefix, lambda name: FibEntry(prefix=name))

    def exact(self, prefix: "Name | str") -> Optional[FibEntry]:
        """The entry exactly at ``prefix``, if any."""
        return self._tree.get(prefix)

    def longest_prefix_match(self, name: "Name | str") -> Optional[FibEntry]:
        """The deepest entry whose prefix is a prefix of ``name``."""
        item = self._tree.longest_prefix_item(name)
        return item[1] if item is not None else None

    def remove(self, prefix: "Name | str") -> bool:
        """Remove the entry at ``prefix`` (pruning empty branches)."""
        return self._tree.remove(prefix)

    def entries(self) -> Iterator[FibEntry]:
        """All entries, depth-first in canonical component order."""
        for _name, entry in self._tree.items():
            yield entry


class Fib:
    """The forwarder's FIB: prefix registration plus longest-prefix lookup."""

    def __init__(self) -> None:
        self._tree = NameTree()
        self.lookups = 0

    def __len__(self) -> int:
        return len(self._tree)

    def add_route(self, prefix: "Name | str", face_id: int, cost: float = 0.0) -> FibEntry:
        """Register ``prefix`` towards ``face_id`` with the given cost."""
        if face_id < 0:
            raise NDNError(f"invalid face id {face_id}")
        entry = self._tree.insert(as_name(prefix))
        entry.add_nexthop(face_id, cost)
        return entry

    def remove_route(self, prefix: "Name | str", face_id: int) -> bool:
        """Unregister one next hop; drops the entry when no hops remain."""
        prefix = as_name(prefix)
        entry = self._tree.exact(prefix)
        if entry is None:
            return False
        removed = entry.remove_nexthop(face_id)
        if removed and not entry.has_nexthops():
            self._tree.remove(prefix)
        return removed

    def remove_face(self, face_id: int) -> int:
        """Remove ``face_id`` from every entry (face went down); returns count."""
        removed = 0
        for entry in list(self._tree.entries()):
            if entry.remove_nexthop(face_id):
                removed += 1
                if not entry.has_nexthops():
                    self._tree.remove(entry.prefix)
        return removed

    def lookup(self, name: "Name | str") -> Optional[FibEntry]:
        """Longest-prefix match for ``name`` (entries with live next hops only)."""
        self.lookups += 1
        entry = self._tree.longest_prefix_match(name)
        if entry is not None and entry.has_nexthops():
            return entry
        return None

    def exact(self, prefix: "Name | str") -> Optional[FibEntry]:
        return self._tree.exact(prefix)

    def entries(self) -> list[FibEntry]:
        return list(self._tree.entries())

    def prefixes(self) -> list[Name]:
        return [entry.prefix for entry in self._tree.entries()]
