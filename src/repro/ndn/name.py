"""Hierarchical NDN names.

A name is an ordered sequence of components, written in URI form as
``/ndn/k8s/compute/mem=4&cpu=6&app=BLAST``.  Names support prefix tests,
append/slice operations and canonical ordering — everything the FIB's
longest-prefix match and the LIDC semantic naming scheme need.
"""

from __future__ import annotations

import urllib.parse
from functools import total_ordering
from typing import Iterable, Iterator, Union

from repro.exceptions import NameError_

__all__ = ["Component", "Name"]


@total_ordering
class Component:
    """A single name component (a byte string).

    Components are compared canonically: shorter components sort first, equal
    lengths compare lexicographically — the NDN canonical order.
    """

    __slots__ = ("_value", "_hash")

    def __init__(self, value: Union[str, bytes, "Component"]) -> None:
        if isinstance(value, Component):
            self._value = value._value
        elif isinstance(value, bytes):
            self._value = value
        elif isinstance(value, str):
            if not value:
                raise NameError_("empty name component")
            self._value = value.encode("utf-8")
        else:
            raise NameError_(f"cannot build a component from {value!r}")
        if not self._value:
            raise NameError_("empty name component")
        # Components key every trie level of the FIB/CS name tree; caching
        # the hash keeps those dict descents off the bytes-hashing path.
        self._hash = hash(self._value)

    @property
    def value(self) -> bytes:
        """Raw component bytes."""
        return self._value

    def to_str(self) -> str:
        """Best-effort text form (escaped when not valid UTF-8)."""
        try:
            return self._value.decode("utf-8")
        except UnicodeDecodeError:
            return urllib.parse.quote_from_bytes(self._value)

    @classmethod
    def from_escaped(cls, text: str) -> "Component":
        """Parse a URI-escaped component string."""
        if not text:
            raise NameError_("empty name component")
        return cls(urllib.parse.unquote_to_bytes(text))

    def escaped(self) -> str:
        """URI-escaped form used when formatting a name."""
        return urllib.parse.quote(self._value, safe="-_.~=&+:")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Component):
            return self._value == other._value
        if isinstance(other, (str, bytes)):
            return self._value == Component(other)._value
        return NotImplemented

    def __lt__(self, other: "Component") -> bool:
        if not isinstance(other, Component):
            return NotImplemented
        if len(self._value) != len(other._value):
            return len(self._value) < len(other._value)
        return self._value < other._value

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._value)

    def __repr__(self) -> str:
        return f"Component({self.to_str()!r})"


class Name:
    """An immutable hierarchical NDN name."""

    __slots__ = ("_components", "_hash")

    def __init__(self, value: "Union[str, Name, Iterable[Union[str, bytes, Component]], None]" = None) -> None:
        components: tuple[Component, ...]
        if value is None:
            components = ()
        elif isinstance(value, Name):
            components = value._components
        elif isinstance(value, str):
            components = tuple(self._parse_uri(value))
        else:
            components = tuple(Component(part) for part in value)
        self._components = components
        self._hash = hash(components)

    @staticmethod
    def _parse_uri(uri: str) -> Iterator[Component]:
        text = uri.strip()
        if text.startswith("ndn:"):
            text = text[len("ndn:"):]
        if text in ("", "/"):
            return iter(())
        if not text.startswith("/"):
            raise NameError_(f"name URI must start with '/': {uri!r}")
        parts = [part for part in text.split("/") if part != ""]
        return iter(Component.from_escaped(part) for part in parts)

    # -- basic container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components)

    def __getitem__(self, index: "int | slice") -> "Component | Name":
        if isinstance(index, slice):
            return Name(self._components[index])
        return self._components[index]

    def __bool__(self) -> bool:
        return bool(self._components)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._components == other._components
        if isinstance(other, str):
            return self == Name(other)
        return NotImplemented

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._components < other._components

    def __le__(self, other: "Name") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return other < self

    def __ge__(self, other: "Name") -> bool:
        return self == other or self > other

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Name({self.to_uri()!r})"

    def __str__(self) -> str:
        return self.to_uri()

    # -- formatting ---------------------------------------------------------------

    def to_uri(self) -> str:
        """Canonical URI form, e.g. ``/ndn/k8s/compute``."""
        if not self._components:
            return "/"
        return "/" + "/".join(comp.escaped() for comp in self._components)

    @property
    def components(self) -> tuple[Component, ...]:
        return self._components

    # -- construction helpers ---------------------------------------------------------

    def append(self, *parts: Union[str, bytes, Component, "Name"]) -> "Name":
        """Return a new name with ``parts`` appended.

        Strings are treated as single components unless they contain ``/``,
        in which case they are parsed as a relative multi-component path.
        """
        new_components = list(self._components)
        for part in parts:
            if isinstance(part, Name):
                new_components.extend(part._components)
            elif isinstance(part, str) and "/" in part:
                new_components.extend(Name("/" + part.strip("/"))._components)
            else:
                new_components.append(Component(part))
        return Name(new_components)

    def prefix(self, n_components: int) -> "Name":
        """The first ``n_components`` components as a new name."""
        if n_components < 0:
            n_components = max(0, len(self) + n_components)
        return Name(self._components[:n_components])

    def parent(self) -> "Name":
        """The name with its final component removed."""
        if not self._components:
            raise NameError_("the root name has no parent")
        return Name(self._components[:-1])

    def suffix(self, start: int) -> "Name":
        """Components from position ``start`` to the end."""
        return Name(self._components[start:])

    # -- relations ----------------------------------------------------------------------

    def is_prefix_of(self, other: "Name | str") -> bool:
        """True when this name is a (non-strict) prefix of ``other``."""
        other = other if isinstance(other, Name) else Name(other)
        if len(self) > len(other):
            return False
        return self._components == other._components[: len(self)]

    def starts_with(self, prefix: "Name | str") -> bool:
        """True when ``prefix`` is a prefix of this name."""
        prefix = prefix if isinstance(prefix, Name) else Name(prefix)
        return prefix.is_prefix_of(self)

    def common_prefix_length(self, other: "Name | str") -> int:
        """Number of leading components shared with ``other``."""
        other = other if isinstance(other, Name) else Name(other)
        count = 0
        for mine, theirs in zip(self._components, other._components):
            if mine != theirs:
                break
            count += 1
        return count

    def last(self) -> Component:
        """The final component."""
        if not self._components:
            raise NameError_("the root name has no components")
        return self._components[-1]
