"""Named Data Networking (NDN) substrate.

This package implements, from scratch, the NDN primitives LIDC relies on:

* hierarchical :class:`~repro.ndn.name.Name` objects with component-wise
  operations and longest-prefix semantics;
* :class:`~repro.ndn.packet.Interest`, :class:`~repro.ndn.packet.Data` and
  :class:`~repro.ndn.packet.Nack` packets with a TLV wire format
  (:mod:`repro.ndn.tlv`) and HMAC/digest signatures
  (:mod:`repro.ndn.security`);
* the three forwarder tables — Content Store (:mod:`repro.ndn.cs`), Pending
  Interest Table (:mod:`repro.ndn.pit`) and Forwarding Information Base
  (:mod:`repro.ndn.fib`);
* faces and channels (:mod:`repro.ndn.face`), forwarding strategies
  (:mod:`repro.ndn.strategy`) and the forwarder itself
  (:mod:`repro.ndn.forwarder`), an NFD equivalent;
* a prefix-advertisement routing layer (:mod:`repro.ndn.routing`) in the
  spirit of NLSR;
* consumer/producer helpers (:mod:`repro.ndn.client`) and content
  segmentation (:mod:`repro.ndn.segmentation`).
"""

from repro.ndn.name import Component, Name
from repro.ndn.packet import Data, Interest, Nack, NackReason, WirePacket
from repro.ndn.security import DigestSigner, HmacSigner, KeyChain, sha256_digest
from repro.ndn.cs import CachePolicy, ContentStore
from repro.ndn.pit import PendingInterestTable, PitEntry
from repro.ndn.fib import Fib, FibEntry, NameTree
from repro.ndn.face import Face, FaceStats, LocalFace, NetworkFace, connect
from repro.ndn.strategy import (
    BestRouteStrategy,
    LoadBalanceStrategy,
    MulticastStrategy,
    Strategy,
)
from repro.ndn.forwarder import Forwarder
from repro.ndn.shard import (
    ShardedForwarder,
    ShardFace,
    ShardWorkerPool,
    forwarder_for_node,
    shard_for_name,
)
from repro.ndn.routing import PrefixAnnouncement, RoutingDaemon
from repro.ndn.client import Consumer, Producer
from repro.ndn.segmentation import reassemble, segment_content

__all__ = [
    "Name",
    "Component",
    "Interest",
    "Data",
    "Nack",
    "NackReason",
    "WirePacket",
    "KeyChain",
    "DigestSigner",
    "HmacSigner",
    "sha256_digest",
    "ContentStore",
    "CachePolicy",
    "PendingInterestTable",
    "PitEntry",
    "Fib",
    "FibEntry",
    "NameTree",
    "Face",
    "FaceStats",
    "LocalFace",
    "NetworkFace",
    "connect",
    "Strategy",
    "BestRouteStrategy",
    "MulticastStrategy",
    "LoadBalanceStrategy",
    "Forwarder",
    "RoutingDaemon",
    "PrefixAnnouncement",
    "Consumer",
    "Producer",
    "segment_content",
    "reassemble",
]
