"""Core discrete-event engine: environment, events, processes.

The engine is deliberately small and deterministic:

* Time is a ``float`` number of simulated seconds.
* Events scheduled at the same time are processed in FIFO order of scheduling
  (a monotonically increasing sequence number breaks ties), which makes runs
  reproducible regardless of hash randomisation.
* Processes are plain Python generators that ``yield`` events; the engine
  resumes them with the event's value (or throws the event's exception).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.exceptions import ProcessInterrupt, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "Queue",
    "SerialServer",
]

#: Scheduling priority for urgent events (process resumption).
PRIORITY_URGENT = 0
#: Scheduling priority for normal events.
PRIORITY_NORMAL = 1


class Event:
    """A single occurrence that processes can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (scheduled with a value or an exception), and *processed* (callbacks ran).
    """

    __slots__ = (
        "env", "callbacks", "_value", "_ok", "_triggered", "_processed",
        "_abandoned", "name",
    )

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        #: Callables invoked with the event once it is processed.
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._abandoned = False

    # -- state -------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        return self._ok

    @property
    def abandoned(self) -> bool:
        """True when the process waiting on this event was interrupted away.

        Primitives that hold waiter queues (e.g. :class:`Queue`) check this
        so a value is never handed to an event nobody will ever observe.
        """
        return self._abandoned

    @property
    def value(self) -> Any:
        """The value (or exception) the event was triggered with."""
        if not self._triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env.schedule(self, priority=PRIORITY_NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env.schedule(self, priority=PRIORITY_NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name}" if self.name else ""
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env, name=f"timeout({delay})")
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env.schedule(self, priority=PRIORITY_NORMAL, delay=delay)


class _Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env, name="init")
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        self._triggered = True
        env.schedule(self, priority=PRIORITY_URGENT)


class _Interruption(Event):
    """Internal event used to deliver an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env, name="interrupt")
        self.process = process
        self.callbacks.append(self._interrupt)
        self._ok = False
        self._value = ProcessInterrupt(cause)
        self._triggered = True
        self.env.schedule(self, priority=PRIORITY_URGENT)

    def _interrupt(self, event: Event) -> None:
        proc = self.process
        if proc._value is not _PENDING_SENTINEL:
            return  # process already terminated
        # Unsubscribe from whatever the process was waiting on, and forget it:
        # a stale target would make introspection (and a later re-interrupt)
        # believe the process still waits on the abandoned event.  The event
        # itself is marked abandoned so waiter-queue primitives (Queue.get)
        # never hand a value to it.
        if proc._target is not None:
            if proc._resume in proc._target.callbacks:
                proc._target.callbacks.remove(proc._resume)
            proc._target._abandoned = True
        proc._target = None
        proc._resume(self)


class _PendingSentinel:
    def __repr__(self) -> str:  # pragma: no cover
        return "<PENDING>"


_PENDING_SENTINEL = _PendingSentinel()


class Process(Event):
    """A running process wrapping a generator of events.

    A process is itself an event that triggers when the generator returns
    (with the generator's return value) or raises (with the exception).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._target: Optional[Event] = None
        self._value: Any = _PENDING_SENTINEL
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _PENDING_SENTINEL

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        _Interruption(self, cause)

    # -- engine internals ----------------------------------------------------

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            try:
                if event.ok:
                    next_event = self._generator.send(event.value)
                else:
                    exc = event.value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._value = stop.value
                self._ok = True
                self._triggered = True
                self._target = None
                env.schedule(self, priority=PRIORITY_NORMAL)
                break
            except BaseException as exc:  # lint: allow[RL004] engine contract: any process failure propagates into waiters as the event value
                self._value = exc
                self._ok = False
                self._triggered = True
                self._target = None
                env.schedule(self, priority=PRIORITY_NORMAL)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = error
                event._triggered = True
                continue

            if next_event.env is not env:
                raise SimulationError("event belongs to a different environment")

            if next_event._processed:
                # Event already happened — resume immediately with its value.
                event = next_event
                continue

            self._target = next_event
            next_event.callbacks.append(self._resume)
            break
        else:  # pragma: no cover - unreachable
            pass
        env._active_process = None

    # Expose the triggered value under Event's API once finished.
    @property
    def value(self) -> Any:  # type: ignore[override]
        if self._value is _PENDING_SENTINEL:
            raise SimulationError(f"value of running process {self!r}")
        return self._value


class ConditionEvent(Event):
    """Base class for composite events over a set of child events."""

    __slots__ = ("events", "_results", "_remaining")

    #: Whether an empty child set completes immediately (vacuous truth) or is
    #: rejected at construction time.  Subclasses choose.
    _empty_succeeds = True

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, name=type(self).__name__)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all condition events must share one environment")
        self._results: dict[Event, Any] = {}
        self._remaining = len(self.events)
        if not self.events:
            if not self._empty_succeeds:
                raise SimulationError(
                    f"{type(self).__name__} of no events can never trigger"
                )
            self.succeed({})
            return
        for ev in self.events:
            if ev._processed:
                self._child_done(ev)
            else:
                ev.callbacks.append(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers when *all* child events have triggered.

    The value is a dict mapping each child event to its value.  Fails as soon
    as any child fails.

    ``AllOf([])`` succeeds immediately with ``{}`` — "all of nothing" is
    vacuously true, mirroring :func:`all`.  Contrast :class:`AnyOf`, where an
    empty set can never trigger and is rejected at construction time.
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._results[event] = event.value
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(dict(self._results))


class AnyOf(ConditionEvent):
    """Triggers as soon as *any* child event triggers.

    The value is a dict with the single completed event.  Fails if the first
    child to complete failed.

    ``AnyOf([])`` raises :class:`SimulationError`: with no children the event
    can never semantically complete, and silently succeeding with ``{}`` (the
    old behaviour) deadlocks callers that expect at least one result.
    """

    __slots__ = ()

    _empty_succeeds = False

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed({event: event.value})


class Queue:
    """An unbounded deterministic FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that completes with the
    next item.  Items are handed to getters strictly in FIFO order on both
    sides (first ``put`` pairs with first ``get``), so any number of
    producer/consumer processes sharing a queue stay reproducible —
    this is what lets a sharded forwarder's per-shard service loops run
    concurrently in simulated time without introducing scheduling
    nondeterminism.

    A pending ``get`` is *not* a scheduled event: a drained simulation with
    idle queue consumers simply ends (``Environment.run()`` returns when the
    event schedule is empty), which is how benchmark runs terminate without
    poisoning the queue.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes the oldest waiting getter, if any.

        Getters whose process was interrupted away (``Event.abandoned``)
        are discarded rather than fed: handing them the item would lose it
        in an event nobody observes.
        """
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered or getter.abandoned:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """An event completing with the next item (immediately if available)."""
        event = self.env.event(name="queue-get")
        # The queue watches its own getter events: if one processes after
        # its waiter was interrupted away (abandoned with the value already
        # attached — a put() and an interrupt in the same timestep), the
        # item is recovered instead of dying in an event nobody observes.
        event.callbacks.append(self._redeliver)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def _redeliver(self, event: Event) -> None:
        if event._abandoned and event.ok:
            self.put(event.value)


class SerialServer:
    """One serial execution resource in simulated time (a worker's core).

    ``submit`` runs actions in FIFO order, spending ``service_time_s`` of
    simulated time on each; a zero service time short-circuits to an
    immediate synchronous call so the default configuration adds no
    scheduling overhead at all.  This is the engine primitive behind the
    sharded forwarder's dispatcher and per-shard service loops — promoted
    here so any model needing a deterministic single-threaded resource
    (one queue, one consumer, FIFO) can reuse it.
    """

    __slots__ = ("env", "service_time_s", "served", "_queue")

    def __init__(self, env: "Environment", service_time_s: float, name: str = "serial") -> None:
        if service_time_s < 0:
            raise SimulationError(f"negative service time {service_time_s!r}")
        self.env = env
        self.service_time_s = service_time_s
        self.served = 0
        self._queue: Optional[Queue] = None
        if service_time_s > 0:
            self._queue = Queue(env)
            env.process(self._run(), name=f"serve:{name}")

    def __len__(self) -> int:
        """Actions queued but not yet served (0 in synchronous mode)."""
        return len(self._queue) if self._queue is not None else 0

    def submit(self, action: Callable[[], None]) -> None:
        if self._queue is None:
            self.served += 1
            action()
            return
        self._queue.put(action)

    def _run(self):
        queue = self._queue
        assert queue is not None
        while True:
            action = yield queue.get()
            yield self.env.timeout(self.service_time_s)
            self.served += 1
            action()


class Environment:
    """The simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Failed events that were processed without any subscriber.  They are
        #: kept for inspection rather than raised, because fire-and-forget
        #: completions (e.g. an Interest that times out after its workflow
        #: already moved on) are legitimate.
        self.unhandled_failures: list[Event] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def queue_size(self) -> int:
        """Number of scheduled, not yet processed, events."""
        return len(self._queue)

    # -- event creation helpers ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event completing when all ``events`` complete."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event completing when any of ``events`` completes."""
        return AnyOf(self, events)

    # -- scheduling and execution ----------------------------------------------

    def schedule(self, event: Event, priority: int = PRIORITY_NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("cannot step an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        # Failed events nobody subscribed to are recorded rather than raised:
        # callers waiting via run(until=event) still receive the exception.
        if not event.ok and not callbacks:
            self.unhandled_failures.append(event)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (simulated-time horizon), or an :class:`Event` (run until it is
        processed; its value is returned).
        """
        stop_event: Optional[Event] = None
        horizon: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon} lies in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event._processed:
                break
            if horizon is not None and self.peek() > horizon:
                self._now = horizon
                break
            self.step()

        if stop_event is not None:
            if not stop_event._triggered:
                raise SimulationError(
                    "run(until=event) finished but the event never triggered"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if horizon is not None and self._now < horizon and not self._queue:
            self._now = horizon
        return None

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: start ``generator`` as a process and run to completion."""
        proc = self.process(generator, name=name)
        return self.run(until=proc)
