"""Deterministic random-number streams.

Every stochastic component in the reproduction draws from a named stream of a
single :class:`SeededRNG`, so experiments are reproducible from a single seed
while distinct subsystems stay statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["SeededRNG"]

T = TypeVar("T")


def _stream_seed(seed: int, stream: str) -> int:
    """Derive a 64-bit sub-seed for ``stream`` from the master ``seed``."""
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeededRNG:
    """A family of named, independent, deterministic random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        #: Normalised cumulative distributions memoised per (n, alpha) — a
        #: Zipf draw is then one uniform plus one binary search instead of
        #: an O(n) weight computation per sample.
        self._zipf_cdfs: dict[tuple[int, float], np.ndarray] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if necessary) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(_stream_seed(self.seed, name))
        return self._streams[name]

    # Convenience wrappers -----------------------------------------------------

    def uniform(self, low: float, high: float, stream: str = "default") -> float:
        """Uniform float in ``[low, high)``."""
        return float(self.stream(stream).uniform(low, high))

    def exponential(self, mean: float, stream: str = "default") -> float:
        """Exponentially distributed float with the given mean."""
        return float(self.stream(stream).exponential(mean))

    def normal(self, mean: float, std: float, stream: str = "default") -> float:
        """Normally distributed float."""
        return float(self.stream(stream).normal(mean, std))

    def lognormal(self, mean: float, sigma: float, stream: str = "default") -> float:
        """Log-normally distributed float."""
        return float(self.stream(stream).lognormal(mean, sigma))

    def integer(self, low: int, high: int, stream: str = "default") -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return int(self.stream(stream).integers(low, high + 1))

    def choice(self, options: Sequence[T], stream: str = "default") -> T:
        """Uniform choice from a non-empty sequence."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        idx = int(self.stream(stream).integers(0, len(options)))
        return options[idx]

    def shuffle(self, items: Iterable[T], stream: str = "default") -> list[T]:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self.stream(stream).shuffle(out)  # type: ignore[arg-type]
        return out

    def bernoulli(self, p: float, stream: str = "default") -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {p}")
        return bool(self.stream(stream).random() < p)

    def zipf(self, n: int, alpha: float, stream: str = "default") -> int:
        """A 0-based rank drawn from a truncated Zipf(``alpha``) over ``n`` items.

        Rank ``k`` (0-based) is drawn with probability proportional to
        ``(k + 1) ** -alpha``; ``alpha = 0`` degenerates to uniform.  The
        normalised CDF is memoised per ``(n, alpha)`` so repeated draws —
        the workload-generator hot path — cost one uniform variate and one
        binary search each.
        """
        if n < 1:
            raise ValueError(f"zipf needs a catalog of >= 1 items, got n={n}")
        if alpha < 0.0:
            raise ValueError(f"zipf exponent must be >= 0, got {alpha}")
        key = (int(n), float(alpha))
        cdf = self._zipf_cdfs.get(key)
        if cdf is None:
            weights = np.arange(1, n + 1, dtype=np.float64) ** -float(alpha)
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._zipf_cdfs[key] = cdf
        u = self.stream(stream).random()
        return int(np.searchsorted(cdf, u, side="right"))

    def weighted_choice(
        self,
        options: Sequence[T],
        weights: Sequence[float],
        stream: str = "default",
    ) -> T:
        """Choose from ``options`` with probability proportional to ``weights``.

        Weights must be non-negative with a positive sum; they need not be
        normalised.  A zero-weight option is never chosen.
        """
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        if len(weights) != len(options):
            raise ValueError(
                f"got {len(options)} options but {len(weights)} weights"
            )
        total = 0.0
        for weight in weights:
            if weight < 0.0:
                raise ValueError(f"weights must be >= 0, got {weight}")
            total += weight
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        u = self.stream(stream).random() * total
        acc = 0.0
        for option, weight in zip(options, weights):
            acc += weight
            if u < acc:
                return option
        # Float accumulation can land u a hair past the final edge.
        return options[-1]

    def spawn(self, name: str) -> "SeededRNG":
        """Derive a child RNG whose streams are independent of the parent's."""
        return SeededRNG(_stream_seed(self.seed, f"spawn:{name}"))
