"""Shared-resource primitives built on the event engine.

Three classic primitives are provided:

* :class:`Resource` — capacity-limited resource with FIFO request queue
  (models CPU slots, NodePort sockets, concurrent job slots, …).
* :class:`Container` — continuous level with put/get (models memory pools,
  storage quotas, token buckets).
* :class:`Store` / :class:`PriorityStore` — object queues (models mailboxes,
  work queues, network buffers).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError
from repro.sim.engine import Environment, Event

__all__ = [
    "Resource",
    "Request",
    "Release",
    "Container",
    "ContainerPut",
    "ContainerGet",
    "Store",
    "StorePut",
    "StoreGet",
    "PriorityStore",
]


class Request(Event):
    """A pending request for one unit of a :class:`Resource`.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ...  # holding the resource
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env, name=f"request({resource.name})")
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the queue."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Release(Event):
    """Event representing the release of a previously granted request."""

    __slots__ = ()


class Resource:
    """A capacity-limited resource with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self._capacity = int(capacity)
        self._users: list[Request] = []
        self._queue: deque[Request] = deque()

    @property
    def capacity(self) -> int:
        """Total number of concurrent users allowed."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting to be granted."""
        return len(self._queue)

    def request(self) -> Request:
        """Queue a request for the resource; yields once granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a previously granted (or pending) request."""
        if request in self._users:
            self._users.remove(request)
        else:
            request.cancel()
        release = Release(self.env, name=f"release({self.name})")
        release.succeed()
        self._trigger_requests()
        return release

    def _trigger_requests(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            req = self._queue.popleft()
            self._users.append(req)
            req.succeed(req)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env, name="container.put")
        if amount <= 0:
            raise SimulationError(f"put amount must be positive, got {amount}")
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env, name="container.get")
        if amount <= 0:
            raise SimulationError(f"get amount must be positive, got {amount}")
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous-level container with blocking put/get semantics."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if init < 0 or init > capacity:
            raise SimulationError("initial level must lie within [0, capacity]")
        self.env = env
        self.name = name
        self._capacity = capacity
        self._level = init
        self._put_queue: deque[ContainerPut] = deque()
        self._get_queue: deque[ContainerGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Current amount stored in the container."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; blocks while it would exceed capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; blocks until the level suffices."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and self._level + self._put_queue[0].amount <= self._capacity:
                put = self._put_queue.popleft()
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._get_queue and self._level >= self._get_queue[0].amount:
                get = self._get_queue.popleft()
                self._level -= get.amount
                get.succeed(get.amount)
                progressed = True


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env, name="store.put")
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env, name="store.get")
        self.filter = filter
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO object store with optional capacity and filtered gets."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        name: str = "store",
    ) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.name = name
        self._capacity = capacity
        self.items: list[Any] = []
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; blocks while the store is full."""
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove and return the oldest item (optionally matching ``filter``)."""
        return StoreGet(self, filter)

    def _do_put(self, put: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(put.item)
            put.succeed()
            return True
        return False

    def _do_get(self, get: StoreGet) -> bool:
        if get.filter is None:
            if self.items:
                get.succeed(self.items.pop(0))
                return True
            return False
        for idx, item in enumerate(self.items):
            if get.filter(item):
                del self.items[idx]
                get.succeed(item)
                return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Serve puts first so same-tick put/get pairs complete.
            if self._put_queue and self._do_put(self._put_queue[0]):
                self._put_queue.popleft()
                progressed = True
            # Serve any satisfiable get (filters may skip the head).
            for get in list(self._get_queue):
                if self._do_get(get):
                    self._get_queue.remove(get)
                    progressed = True
                    break


class PriorityStore(Store):
    """A store that always yields the smallest item first.

    Items must be orderable; ``(priority, payload)`` tuples are the usual
    pattern.  Insertion order breaks ties deterministically.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = "pstore") -> None:
        super().__init__(env, capacity=capacity, name=name)
        self._seq = 0

    def _do_put(self, put: StorePut) -> bool:
        if len(self.items) < self._capacity:
            heapq.heappush(self.items, (put.item, self._seq))
            self._seq += 1
            put.succeed()
            return True
        return False

    def _do_get(self, get: StoreGet) -> bool:
        if get.filter is not None:
            raise SimulationError("PriorityStore does not support filtered gets")
        if self.items:
            item, _ = heapq.heappop(self.items)
            get.succeed(item)
            return True
        return False
