"""Structured event tracing.

A :class:`Tracer` records ``(time, category, event, attributes)`` tuples.
The benchmarks use traces to decompose end-to-end latencies into per-step
contributions (e.g. the five protocol steps of the paper's Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record."""

    time: float
    category: str
    event: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def matches(self, category: Optional[str] = None, event: Optional[str] = None) -> bool:
        """True when the record matches the given category/event filters."""
        if category is not None and self.category != category:
            return False
        if event is not None and self.event != event:
            return False
        return True


class Tracer:
    """Collects :class:`TraceEvent` records in arrival order."""

    def __init__(self, clock: Optional[Callable[[], float]] = None, enabled: bool = True) -> None:
        self._clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, category: str, event: str, **attrs: Any) -> Optional[TraceEvent]:
        """Append a trace record stamped with the current simulated time.

        Attribute values that are not primitives are stringified here — so
        hot paths can pass rich objects (e.g. NDN names) and only pay the
        formatting cost when tracing is actually enabled.
        """
        if not self.enabled:
            return None
        attrs = {
            key: value if isinstance(value, (str, int, float, bool, type(None))) else str(value)
            for key, value in attrs.items()
        }
        record = TraceEvent(time=self._clock(), category=category, event=event, attrs=attrs)
        self.events.append(record)
        return record

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # Without this, an *empty* tracer is falsy (via ``__len__``) and
        # every ``tracer or Tracer(...)`` default silently replaces a
        # caller-supplied tracer that simply has no events yet.
        return True

    def filter(self, category: Optional[str] = None, event: Optional[str] = None) -> list[TraceEvent]:
        """All records matching the filters, in order."""
        return [ev for ev in self.events if ev.matches(category, event)]

    def spans(self, start_event: str, end_event: str, key: str) -> list[tuple[Any, float]]:
        """Pair up start/end records sharing ``attrs[key]`` and return durations.

        Useful for latency decomposition: ``spans("gateway", "job-done", "job_id")``.
        """
        starts: dict[Any, float] = {}
        durations: list[tuple[Any, float]] = []
        for record in self.events:
            ident = record.attrs.get(key)
            if ident is None:
                continue
            if record.event == start_event and ident not in starts:
                starts[ident] = record.time
            elif record.event == end_event and ident in starts:
                durations.append((ident, record.time - starts.pop(ident)))
        return durations

    def clear(self) -> None:
        self.events.clear()

    def categories(self) -> set[str]:
        return {ev.category for ev in self.events}

    def to_dicts(self) -> list[dict[str, Any]]:
        """Serialize the trace as a list of plain dicts."""
        return [
            {"time": ev.time, "category": ev.category, "event": ev.event, **ev.attrs}
            for ev in self.events
        ]

    @staticmethod
    def merge(tracers: Iterable["Tracer"]) -> list[TraceEvent]:
        """Merge several tracers' records into a single time-ordered list."""
        merged: list[TraceEvent] = []
        for tracer in tracers:
            merged.extend(tracer.events)
        merged.sort(key=lambda ev: ev.time)
        return merged
