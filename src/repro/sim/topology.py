"""Network topology model: nodes, latency/bandwidth links, path queries.

LIDC's evaluation ran on GCP VMs; here the wide-area network between clusters,
data lakes and clients is modelled as a graph whose edges carry propagation
latency (seconds) and bandwidth (bytes/second).  The NDN faces use this model
to compute per-packet transfer delays, and the placement strategies use the
path latencies to pick the "nearest" cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.exceptions import SimulationError

__all__ = ["TopologyNode", "Link", "Topology"]


@dataclass(frozen=True)
class TopologyNode:
    """A site in the wide-area topology (cluster gateway, client, data lake).

    ``shards`` declares how many forwarder worker shards the node's data
    plane runs (1 = a plain single-process forwarder), ``partitioner``
    which key placement function partitions its namespace (``"ring"``
    consistent hashing or ``"rendezvous"`` HRW), and ``shard_weights``
    optional per-shard weights for weighted rendezvous (heterogeneous
    shard capacity).  The topology layer only records the intent;
    :func:`repro.ndn.shard.forwarder_for_node` builds the matching
    :class:`~repro.ndn.forwarder.Forwarder` or
    :class:`~repro.ndn.shard.ShardedForwarder` — the NDN layer imports the
    sim layer, never the reverse.
    """

    name: str
    kind: str = "host"
    region: str = "default"
    shards: int = 1
    partitioner: str = "ring"
    shard_weights: Optional[tuple] = None
    attrs: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise SimulationError(
                f"node {self.name!r} needs at least one shard, got {self.shards}"
            )
        if self.partitioner not in ("ring", "rendezvous"):
            raise SimulationError(
                f"node {self.name!r}: unknown partitioner {self.partitioner!r} "
                "(expected 'ring' or 'rendezvous')"
            )
        if self.shard_weights is not None:
            if self.partitioner != "rendezvous":
                raise SimulationError(
                    f"node {self.name!r}: shard weights require the "
                    "'rendezvous' partitioner"
                )
            if len(self.shard_weights) != self.shards:
                raise SimulationError(
                    f"node {self.name!r}: {len(self.shard_weights)} weights "
                    f"for {self.shards} shards"
                )
            if any(weight <= 0 for weight in self.shard_weights):
                raise SimulationError(
                    f"node {self.name!r}: shard weights must be positive"
                )


@dataclass(frozen=True)
class Link:
    """A bidirectional link with propagation latency and bandwidth."""

    a: str
    b: str
    latency_s: float = 0.001
    bandwidth_bps: float = 10e9  # bytes per second
    loss: float = 0.0

    def transfer_time(self, size_bytes: int) -> float:
        """Time to push ``size_bytes`` through this link (propagation + serialisation)."""
        if size_bytes < 0:
            raise SimulationError("negative transfer size")
        serialisation = size_bytes / self.bandwidth_bps if self.bandwidth_bps > 0 else 0.0
        return self.latency_s + serialisation

    def transfer_time_packet(self, packet) -> float:
        """Transfer time for an encoded packet.

        ``packet`` is anything exposing ``.size`` as its wire length — a
        :class:`~repro.ndn.packet.WirePacket` view on the bytes-first
        transport path (where size is ``len(wire)`` with no encoder walk)
        or a decoded packet object.
        """
        return self.transfer_time(packet.size)


class Topology:
    """A named graph of sites and links with shortest-path queries."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._nodes: dict[str, TopologyNode] = {}

    # -- construction --------------------------------------------------------

    def add_node(self, node: "TopologyNode | str", **attrs) -> TopologyNode:
        """Add a site; accepts either a node object or a bare name."""
        if isinstance(node, str):
            node = TopologyNode(name=node, **attrs)
        if node.name in self._nodes:
            raise SimulationError(f"duplicate topology node {node.name!r}")
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        return node

    def add_link(self, link: "Link | tuple[str, str]", **kwargs) -> Link:
        """Add a link; accepts a Link or an ``(a, b)`` pair plus attributes."""
        if isinstance(link, tuple):
            link = Link(link[0], link[1], **kwargs)
        for endpoint in (link.a, link.b):
            if endpoint not in self._nodes:
                raise SimulationError(f"unknown topology node {endpoint!r}")
        self._graph.add_edge(link.a, link.b, link=link, weight=link.latency_s)
        return link

    def remove_node(self, name: str) -> None:
        """Remove a site and all its links (cluster leaving the overlay)."""
        if name not in self._nodes:
            raise SimulationError(f"unknown topology node {name!r}")
        del self._nodes[name]
        self._graph.remove_node(name)

    def remove_link(self, a: str, b: str) -> None:
        if not self._graph.has_edge(a, b):
            raise SimulationError(f"no link between {a!r} and {b!r}")
        self._graph.remove_edge(a, b)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[TopologyNode]:
        return iter(self._nodes.values())

    def node(self, name: str) -> TopologyNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"unknown topology node {name!r}") from None

    def link(self, a: str, b: str) -> Link:
        """The link between two adjacent sites."""
        try:
            return self._graph.edges[a, b]["link"]
        except KeyError:
            raise SimulationError(f"no link between {a!r} and {b!r}") from None

    def neighbors(self, name: str) -> list[str]:
        return sorted(self._graph.neighbors(name))

    def has_path(self, src: str, dst: str) -> bool:
        if src not in self._nodes or dst not in self._nodes:
            return False
        return nx.has_path(self._graph, src, dst)

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Latency-weighted shortest path as a list of node names."""
        if not self.has_path(src, dst):
            raise SimulationError(f"no path between {src!r} and {dst!r}")
        return nx.shortest_path(self._graph, src, dst, weight="weight")

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of propagation latencies along the shortest path."""
        path = self.shortest_path(src, dst)
        return sum(self.link(a, b).latency_s for a, b in zip(path, path[1:]))

    def path_transfer_time(self, src: str, dst: str, size_bytes: int) -> float:
        """Store-and-forward transfer time of a payload along the shortest path."""
        path = self.shortest_path(src, dst)
        return sum(self.link(a, b).transfer_time(size_bytes) for a, b in zip(path, path[1:]))

    def nearest(self, src: str, candidates: Iterable[str]) -> Optional[str]:
        """The reachable candidate with the smallest path latency from ``src``."""
        best: Optional[str] = None
        best_latency = float("inf")
        for cand in candidates:
            if cand == src:
                return cand
            if not self.has_path(src, cand):
                continue
            latency = self.path_latency(src, cand)
            if latency < best_latency:
                best, best_latency = cand, latency
        return best

    # -- canned topologies -------------------------------------------------------

    @classmethod
    def star(cls, center: str, leaves: Iterable[str], latency_s: float = 0.01,
             bandwidth_bps: float = 1e9) -> "Topology":
        """A star topology: every leaf connects to ``center``."""
        topo = cls()
        topo.add_node(TopologyNode(center, kind="router"))
        for leaf in leaves:
            topo.add_node(TopologyNode(leaf))
            topo.add_link(Link(center, leaf, latency_s=latency_s, bandwidth_bps=bandwidth_bps))
        return topo

    @classmethod
    def line(cls, names: list[str], latency_s: float = 0.01,
             bandwidth_bps: float = 1e9) -> "Topology":
        """A chain topology in the order given."""
        topo = cls()
        for name in names:
            topo.add_node(name)
        for a, b in zip(names, names[1:]):
            topo.add_link(Link(a, b, latency_s=latency_s, bandwidth_bps=bandwidth_bps))
        return topo

    @classmethod
    def full_mesh(cls, names: list[str], latency_s: float = 0.02,
                  bandwidth_bps: float = 1e9) -> "Topology":
        """A full mesh between all sites."""
        topo = cls()
        for name in names:
            topo.add_node(name)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                topo.add_link(Link(a, b, latency_s=latency_s, bandwidth_bps=bandwidth_bps))
        return topo
