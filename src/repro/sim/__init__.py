"""Discrete-event simulation kernel.

The kernel follows the classic process-interaction style (generators that
``yield`` events), similar in spirit to SimPy but implemented from scratch so
the reproduction has no external runtime dependencies.

Public API
----------

* :class:`~repro.sim.engine.Environment` — the event loop and simulated clock.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Process`, :class:`~repro.sim.engine.AllOf`,
  :class:`~repro.sim.engine.AnyOf` — the yieldable primitives.
* :class:`~repro.sim.resources.Resource` — a capacity-limited resource with a
  FIFO queue (models CPUs, network links, …).
* :class:`~repro.sim.resources.Container` — a continuous-level container
  (models memory pools, storage quotas).
* :class:`~repro.sim.resources.Store` — a FIFO object store (models queues and
  mailboxes).
* :class:`~repro.sim.topology.Topology` — latency/bandwidth network topology.
* :class:`~repro.sim.metrics.MetricsRegistry` — counters, gauges, histograms.
* :class:`~repro.sim.trace.Tracer` — structured event tracing.
* :class:`~repro.sim.rng.SeededRNG` — deterministic random streams.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store, PriorityStore
from repro.sim.topology import Link, Topology, TopologyNode
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.rng import SeededRNG

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Resource",
    "Container",
    "Store",
    "PriorityStore",
    "Topology",
    "TopologyNode",
    "Link",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Tracer",
    "TraceEvent",
    "SeededRNG",
]
