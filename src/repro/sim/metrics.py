"""Lightweight metrics: counters, gauges, histograms, and timers.

The registry is used across all substrates to record simulation measurements
(latencies, hit rates, queue lengths) that the benchmarks later report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "Timer", "MetricsRegistry", "merge_histograms"]


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for decrements")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move up and down, remembering its extremes."""

    name: str
    value: float = 0.0
    min_seen: float = math.inf
    max_seen: float = -math.inf

    def set(self, value: float) -> None:
        self.value = value
        self.min_seen = min(self.min_seen, value)
        self.max_seen = max(self.max_seen, value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


@dataclass
class Histogram:
    """An exact-sample histogram with percentile queries.

    Samples are kept in full (simulations here are small enough); percentile
    queries use numpy.
    """

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (0–100) of the samples."""
        if not self.samples:
            return 0.0
        return float(np.percentile(np.asarray(self.samples), q))

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return float(np.std(np.asarray(self.samples), ddof=1))

    def summary(self) -> dict[str, float]:
        """Dict summary used by the analysis layer."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.maximum,
            "stddev": self.stddev,
        }


class Timer:
    """Context manager recording a simulated-time duration into a histogram."""

    def __init__(self, histogram: Histogram, clock) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None and exc_type is None:
            self._histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self, clock=None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    def timer(self, name: str) -> Timer:
        return Timer(self.histogram(name), self._clock)

    def names(self) -> list[str]:
        """All metric names currently registered."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> dict[str, object]:
        """A plain-dict snapshot of every metric (for reports and tests)."""
        out: dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[name] = hist.summary()
        return out

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold another registry's metrics into this one (used by reports)."""
        for name, counter in other._counters.items():
            self.counter(prefix + name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(prefix + name).set(gauge.value)
        for name, hist in other._histograms.items():
            mine = self.histogram(prefix + name)
            mine.samples.extend(hist.samples)


def merge_histograms(histograms: Iterable[Histogram], name: str = "merged") -> Histogram:
    """Combine several histograms' samples into one."""
    merged = Histogram(name)
    for hist in histograms:
        merged.samples.extend(hist.samples)
    return merged
