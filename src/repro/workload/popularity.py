"""Content-popularity models: who asks for *what*.

A popularity model maps a stream of draws from a :class:`~repro.sim.rng.
SeededRNG` onto request names.  The models here cover the regimes the
bench trajectory needs (ROADMAP open item 3):

* :class:`ZipfPopularity` — skewed power-law popularity over a fixed name
  catalog, the empirical shape of content-distribution traffic.  ``alpha``
  controls the skew: 0 is uniform, 0.8 is web-like, 1.2+ is flash-video-like.
* :class:`UniformPopularity` — every catalog name equally likely; the
  regime where caching looks artificially *worst* for its hit rate but
  best per hit (all prior benches used this or round-robin).
* :class:`ScanPopularity` — cache-hostile: every request names a brand-new
  object, so any cache sees a 0% hit rate by construction.  This is the
  adversarial floor a caching tier must not regress below parity on.
* :class:`MixedPopularity` — a weighted mixture of sub-models, for
  multi-tenant profiles (e.g. 80% Zipf repeat traffic + 20% scan floods).

All entropy flows through named ``SeededRNG`` streams, so a model is
deterministic per (seed, stream) and two models on distinct streams are
statistically independent (reprolint RL002 applies to this package).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.rng import SeededRNG

__all__ = [
    "PopularityModel",
    "ZipfPopularity",
    "UniformPopularity",
    "ScanPopularity",
    "MixedPopularity",
    "make_catalog",
]


def make_catalog(
    size: int, tenants: Optional[Sequence[str]] = None, label: str = "obj"
) -> list[str]:
    """A catalog of ``size`` names spread round-robin across tenant prefixes.

    Tenant prefixes are the shard-partitioning key (first name component),
    so a catalog built this way exercises every shard of a
    :class:`~repro.ndn.shard.ShardedForwarder` rather than pinning the
    whole workload onto one.
    """
    if size < 1:
        raise ValueError(f"catalog size must be >= 1, got {size}")
    if tenants is None:
        tenants = [f"/w{i:03d}" for i in range(min(size, 16))]
    return [
        f"{tenants[k % len(tenants)]}/{label}{k:05d}" for k in range(size)
    ]


class PopularityModel:
    """Base: maps RNG draws to request names.

    Subclasses implement :meth:`next_name`; :meth:`describe` feeds the
    benchmark JSON so every artefact records exactly which model (and
    parameters) produced its numbers.
    """

    #: RNG stream drawn from; models sharing an RNG but using distinct
    #: streams stay decorrelated.
    stream = "popularity"

    def next_name(self, rng: SeededRNG) -> str:
        raise NotImplementedError

    def describe(self) -> dict:
        raise NotImplementedError


class ZipfPopularity(PopularityModel):
    """Zipf(``alpha``) popularity over a fixed catalog.

    Rank 0 (the hottest name) is requested with probability proportional
    to ``1``, rank k to ``(k + 1) ** -alpha``.  The catalog order *is* the
    popularity order, so tests can check empirical frequencies against the
    analytic distribution directly.
    """

    def __init__(
        self,
        alpha: float,
        catalog: Optional[Sequence[str]] = None,
        size: int = 1024,
        stream: str = "popularity",
    ) -> None:
        if alpha < 0.0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self.catalog = list(catalog) if catalog is not None else make_catalog(size)
        if not self.catalog:
            raise ValueError("catalog must be non-empty")
        self.stream = stream

    def next_name(self, rng: SeededRNG) -> str:
        rank = rng.zipf(len(self.catalog), self.alpha, stream=self.stream)
        return self.catalog[rank]

    def describe(self) -> dict:
        return {
            "model": "zipf",
            "alpha": self.alpha,
            "catalog_size": len(self.catalog),
        }


class UniformPopularity(PopularityModel):
    """Every catalog name equally likely (Zipf with ``alpha = 0``)."""

    def __init__(
        self,
        catalog: Optional[Sequence[str]] = None,
        size: int = 1024,
        stream: str = "popularity",
    ) -> None:
        self.catalog = list(catalog) if catalog is not None else make_catalog(size)
        if not self.catalog:
            raise ValueError("catalog must be non-empty")
        self.stream = stream

    def next_name(self, rng: SeededRNG) -> str:
        idx = rng.integer(0, len(self.catalog) - 1, stream=self.stream)
        return self.catalog[idx]

    def describe(self) -> dict:
        return {"model": "uniform", "catalog_size": len(self.catalog)}


class ScanPopularity(PopularityModel):
    """Cache-hostile unique-name scan: every request is a fresh object.

    Deterministic without any RNG draw — a monotone counter under rotating
    tenant prefixes — so a scan embedded in a mixture consumes no entropy
    and cannot shift the draws of its sibling models.
    """

    def __init__(
        self, tenants: Optional[Sequence[str]] = None, label: str = "scan"
    ) -> None:
        self.tenants = (
            list(tenants) if tenants is not None else [f"/w{i:03d}" for i in range(16)]
        )
        if not self.tenants:
            raise ValueError("tenants must be non-empty")
        self.label = label
        self._counter = 0

    def next_name(self, rng: SeededRNG) -> str:
        k = self._counter
        self._counter += 1
        return f"{self.tenants[k % len(self.tenants)]}/{self.label}{k:08d}"

    def describe(self) -> dict:
        return {"model": "scan", "tenants": len(self.tenants)}


class MixedPopularity(PopularityModel):
    """A weighted mixture of sub-models (multi-tenant traffic profiles).

    Each request first picks a sub-model (weighted, on this model's own
    stream) and then draws the name from it (on *its* stream), so the
    mixture decision never perturbs any component's draw sequence.
    """

    def __init__(
        self,
        components: Sequence[tuple[float, PopularityModel]],
        stream: str = "popularity-mix",
    ) -> None:
        if not components:
            raise ValueError("a mixture needs at least one component")
        self.weights = [float(weight) for weight, _model in components]
        self.models = [model for _weight, model in components]
        self.stream = stream
        # Validate eagerly with the same rules a draw would apply.
        if any(weight < 0.0 for weight in self.weights) or sum(self.weights) <= 0.0:
            raise ValueError("mixture weights must be >= 0 and sum > 0")

    def next_name(self, rng: SeededRNG) -> str:
        model = rng.weighted_choice(self.models, self.weights, stream=self.stream)
        return model.next_name(rng)

    def describe(self) -> dict:
        return {
            "model": "mixed",
            "components": [
                {"weight": weight, **model.describe()}
                for weight, model in zip(self.weights, self.models)
            ],
        }
