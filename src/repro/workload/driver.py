"""Drive modelled workloads through the data and service planes.

The driver separates *generation* from *execution*:

1. :func:`build_trace` expands a :class:`WorkloadSpec` (popularity model x
   arrival process x request budget) into a concrete request trace — a
   list of :class:`TraceRecord` — using only named ``SeededRNG`` streams.
   The trace is the reproducibility contract: :func:`trace_hash` pins it,
   identical seeds produce byte-identical traces, and a recorded trace
   replays against any node without re-consuming entropy.
2. :class:`WorkloadDriver` walks a trace on the simulation clock through a
   :class:`~repro.ndn.client.Consumer` attached to any forwarder-shaped
   node (:class:`~repro.ndn.forwarder.Forwarder` or
   :class:`~repro.ndn.shard.ShardedForwarder`), recording per-request
   outcome and simulated latency plus the node's cache counters into a
   :class:`WorkloadReport`.
3. :class:`LIDCWorkloadDriver` maps the same traces onto the service
   plane: each trace record becomes a :class:`~repro.core.spec.
   ComputeRequest` submitted through an :class:`~repro.core.client.
   LIDCClient` at the record's arrival time.

Nothing here reads a wall clock or ambient entropy (reprolint RL002/RL010
apply to this package); wall-clock measurement belongs to the benchmarks
that wrap the driver.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.exceptions import InterestTimeout
from repro.ndn.client import Consumer, RetryPolicy
from repro.sim.engine import Environment, Event
from repro.sim.rng import SeededRNG
from repro.workload.arrivals import ArrivalProcess
from repro.workload.popularity import PopularityModel

__all__ = [
    "TraceRecord",
    "WorkloadSpec",
    "WorkloadReport",
    "WorkloadDriver",
    "LIDCWorkloadDriver",
    "build_trace",
    "trace_hash",
]


@dataclass(slots=True, frozen=True)
class TraceRecord:
    """One scheduled request: sequence number, arrival time, name."""

    seq: int
    t: float
    name: str

    def line(self) -> str:
        """The canonical text form hashed by :func:`trace_hash`.

        ``repr`` of the float keeps full precision, so two traces hash
        equal exactly when they are bit-identical.
        """
        return f"{self.seq} {self.t!r} {self.name}"


def trace_hash(trace: "list[TraceRecord] | tuple[TraceRecord, ...]") -> str:
    """A stable sha256 over the full request trace."""
    digest = hashlib.sha256()
    for record in trace:
        digest.update(record.line().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class WorkloadSpec:
    """What to generate: popularity x arrivals x budget x Interest shape."""

    label: str
    popularity: PopularityModel
    arrivals: ArrivalProcess
    #: Stop after this many requests ...
    requests: int = 1000
    #: ... or when the arrival clock passes this horizon, whichever first
    #: (``None`` = request budget only).
    horizon_s: Optional[float] = None
    lifetime_s: float = 4.0
    must_be_fresh: bool = False
    retries: int = 0
    #: Self-healing retry: a :class:`~repro.ndn.client.RetryPolicy` adds
    #: jittered exponential backoff and (optionally) retransmission on
    #: retriable Nacks on top of the plain ``retries`` budget.
    retry_policy: Optional["RetryPolicy"] = None

    def describe(self) -> dict:
        return {
            "label": self.label,
            "popularity": self.popularity.describe(),
            "arrivals": self.arrivals.describe(),
            "requests": self.requests,
            "horizon_s": self.horizon_s,
        }


def build_trace(spec: WorkloadSpec, rng: SeededRNG) -> list[TraceRecord]:
    """Expand ``spec`` into a concrete, replayable request trace.

    Consumes the spec's arrival and popularity streams of ``rng`` in a
    fixed order (arrival time first, then name), so a given (seed, spec)
    always yields the identical trace.
    """
    if spec.requests < 1:
        raise ValueError(f"request budget must be >= 1, got {spec.requests}")
    trace: list[TraceRecord] = []
    times: Iterator[float] = spec.arrivals.times(rng)
    for seq in range(spec.requests):
        t = next(times)
        if spec.horizon_s is not None and t > spec.horizon_s:
            break
        trace.append(TraceRecord(seq=seq, t=t, name=spec.popularity.next_name(rng)))
    if not trace:
        raise ValueError(
            f"workload {spec.label!r}: no arrivals inside horizon "
            f"{spec.horizon_s}s — raise the rate or the horizon"
        )
    return trace


@dataclass
class WorkloadReport:
    """Outcome of one driven workload (all latencies in simulated seconds)."""

    label: str
    requests: int = 0
    satisfied: int = 0
    timeouts: int = 0
    nacks: int = 0
    trace_hash: str = ""
    first_arrival_s: float = 0.0
    last_arrival_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    #: Cache counters harvested from the node after the run (hot-cache
    #: hits/misses, per-shard CS hits/misses) — empty for bare nodes.
    cache: dict = field(default_factory=dict)
    spec: dict = field(default_factory=dict)

    def latency_percentiles(self) -> dict:
        """min / p50 / p90 / p99 / max over the satisfied requests."""
        if not self.latencies_s:
            return {}
        ordered = sorted(self.latencies_s)
        n = len(ordered)

        def pct(q: float) -> float:
            return ordered[min(n - 1, int(q * (n - 1) + 0.5))]

        return {
            "min": ordered[0],
            "p50": pct(0.50),
            "p90": pct(0.90),
            "p99": pct(0.99),
            "max": ordered[-1],
        }

    def to_json(self) -> dict:
        """The BENCH-artefact form (drops the raw latency vector)."""
        return {
            "label": self.label,
            "requests": self.requests,
            "satisfied": self.satisfied,
            "timeouts": self.timeouts,
            "nacks": self.nacks,
            "trace_hash": self.trace_hash,
            "span_s": self.last_arrival_s - self.first_arrival_s,
            "latency_s": self.latency_percentiles(),
            "cache": self.cache,
            "spec": self.spec,
        }


def _cache_stats(node) -> dict:
    """Hot-cache and Content-Store counters, duck-typed across node kinds."""
    stats: dict = {}
    hot = getattr(node, "hot_cache", None)
    if hot is not None:
        stats["hot_cache"] = {
            "hits": hot.hits,
            "misses": hot.misses,
            "insertions": hot.insertions,
            "invalidations": hot.invalidations,
            "expirations": hot.expirations,
            "evictions": hot.evictions,
        }
    shards = getattr(node, "shards", None)
    if shards is not None:
        stats["shard_cs"] = [
            {"hits": shard.cs.hits, "misses": shard.cs.misses} for shard in shards
        ]
        stats["shard_interests"] = [
            int(shard.metrics.counter("interests_received").value)
            for shard in shards
        ]
    else:
        cs = getattr(node, "cs", None)
        if cs is not None:
            stats["cs"] = {"hits": cs.hits, "misses": cs.misses}
    return stats


class WorkloadDriver:
    """Drive one trace through a Consumer attached to ``node``.

    The trace is either built from ``spec`` at construction or injected
    via ``trace=`` (replay of a recorded run).  :meth:`run` schedules each
    record at its arrival time on the simulation clock, drives the
    environment until every request has completed (Data, Nack or
    timeout), and returns the :class:`WorkloadReport`.
    """

    def __init__(
        self,
        env: Environment,
        node,
        spec: WorkloadSpec,
        rng: Optional[SeededRNG] = None,
        trace: Optional[list[TraceRecord]] = None,
        on_data: Optional[Callable[[TraceRecord, object], None]] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.spec = spec
        if trace is None:
            if rng is None:
                raise ValueError("need an rng to generate a trace (or pass trace=)")
            trace = build_trace(spec, rng)
        self.trace = trace
        self.on_data = on_data
        self.consumer = Consumer(env, node, name=f"wl:{spec.label}")
        self._completed = 0
        self._done: Optional[Event] = None
        self.report = WorkloadReport(
            label=spec.label,
            requests=len(trace),
            trace_hash=trace_hash(trace),
            first_arrival_s=trace[0].t,
            last_arrival_s=trace[-1].t,
            spec=spec.describe(),
        )

    # ------------------------------------------------------------------ running

    def run(self) -> WorkloadReport:
        """Drive the whole trace; returns the filled-in report."""
        self._done = self.env.event(name=f"workload-done:{self.spec.label}")
        start = self.env.now
        self.env.process(self._pump(start), name=f"workload:{self.spec.label}")
        self.env.run(until=self._done)
        self.report.cache = _cache_stats(self.node)
        return self.report

    def _pump(self, start: float):
        for record in self.trace:
            at = start + record.t
            delay = at - self.env.now
            if delay > 0.0:
                yield self.env.timeout(delay)
            completion = self.consumer.express_interest(
                record.name,
                lifetime=self.spec.lifetime_s,
                must_be_fresh=self.spec.must_be_fresh,
                retries=self.spec.retries,
                retry_policy=self.spec.retry_policy,
            )
            sent_at = self.env.now
            completion.callbacks.append(
                lambda event, _record=record, _sent=sent_at: self._finish(
                    _record, _sent, event
                )
            )

    def _finish(self, record: TraceRecord, sent_at: float, event: Event) -> None:
        if event.ok:
            self.report.satisfied += 1
            self.report.latencies_s.append(self.env.now - sent_at)
            if self.on_data is not None:
                self.on_data(record, event.value)
        elif isinstance(event.value, InterestTimeout):
            self.report.timeouts += 1
        else:
            self.report.nacks += 1
        self._completed += 1
        if self._completed == len(self.trace) and self._done is not None:
            if not self._done.triggered:
                self._done.succeed(self.report)


class LIDCWorkloadDriver:
    """Map a trace onto the service plane: one ComputeRequest per record.

    Each record's catalog name becomes the request's ``dataset`` (slashes
    folded so it stays one name component), submitted through an
    :class:`~repro.core.client.LIDCClient` at the record's arrival time
    via the handle scheduler's ``delay_s``.  Popularity skew then
    exercises the gateway's result caching exactly as it does the data
    plane's Content Stores.
    """

    def __init__(
        self,
        env: Environment,
        client,
        spec: WorkloadSpec,
        rng: Optional[SeededRNG] = None,
        trace: Optional[list[TraceRecord]] = None,
        app: str = "BLAST",
        cpu: float = 2,
        memory_gb: float = 4,
        reference: str = "HUMAN",
        dataset_fn: Optional[Callable[[TraceRecord], str]] = None,
    ) -> None:
        from repro.core.spec import ComputeRequest

        self.env = env
        self.client = client
        self.spec = spec
        if trace is None:
            if rng is None:
                raise ValueError("need an rng to generate a trace (or pass trace=)")
            trace = build_trace(spec, rng)
        self.trace = trace
        self.trace_hash = trace_hash(trace)
        if dataset_fn is None:
            # Fold the catalog name into one name component; callers whose
            # catalogs are real dataset ids pass ``dataset_fn=lambda r: r.name``.
            def dataset_fn(record: TraceRecord) -> str:
                return record.name.strip("/").replace("/", "-")
        self.requests = [
            ComputeRequest(
                app=app,
                cpu=cpu,
                memory_gb=memory_gb,
                dataset=dataset_fn(record),
                reference=reference,
            )
            for record in trace
        ]

    def submit_all(self, unique: bool = False) -> list:
        """Submit every record's request at its arrival offset.

        ``unique=False`` (the default) keeps the canonical request name,
        so repeat draws of a hot dataset are answerable by the gateway's
        result cache — the service-plane analogue of a CS hit.
        """
        return [
            self.client.submit(request, unique=unique, delay_s=record.t)
            for record, request in zip(self.trace, self.requests)
        ]

    def run(self) -> dict:
        """Submit, wait for every job session, and summarise."""
        handles = self.submit_all()
        self.env.run(until=self.client.wait_all(handles))
        accepted = sum(
            1 for handle in handles
            if handle.submission is not None and handle.submission.accepted
        )
        return {
            "label": self.spec.label,
            "submitted": len(handles),
            "accepted": accepted,
            "trace_hash": self.trace_hash,
            "makespan_s": self.env.now,
            "spec": self.spec.describe(),
        }
