"""Arrival processes: *when* requests happen, on the simulation clock.

An arrival process yields a monotone non-decreasing sequence of request
times (simulated seconds).  The non-homogeneous processes are built on
Lewis–Shedler thinning against an explicit rate function, so the same two
RNG streams (candidate gaps + acceptance) reproduce the same arrival
sequence bit-for-bit at a fixed seed:

* :class:`PoissonArrivals` — homogeneous Poisson at ``rate`` req/s.
* :class:`OnOffArrivals` — consumers alternating fixed on/off phases,
  Poisson inside the on-phase; models duty-cycled clients.
* :class:`DiurnalArrivals` — sinusoidal day/night modulation around a
  mean rate; over whole periods the arrival count integrates to
  ``mean_rate * horizon``.
* :class:`FlashCrowdArrivals` — a base rate plus scheduled spike windows
  during which the rate is multiplied (the flash-crowd regime the
  gateway hot cache exists for).

All times are relative to the start of the workload (t=0); drivers shift
them onto the live :class:`~repro.sim.engine.Environment` clock.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.sim.rng import SeededRNG

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "SpikeWindow",
]


class ArrivalProcess:
    """Base: an unbounded, reproducible sequence of arrival times.

    Subclasses either override :meth:`times` wholesale or provide
    :meth:`rate` (requests/s at time ``t``) plus :attr:`peak_rate` and
    inherit the thinning generator.
    """

    #: RNG stream for candidate inter-arrival gaps.
    stream = "arrivals"
    #: An upper bound on :meth:`rate` over all t; thinning candidates are
    #: drawn at this rate and accepted with probability rate(t)/peak.
    peak_rate = 0.0

    def rate(self, t: float) -> float:
        raise NotImplementedError

    def describe(self) -> dict:
        raise NotImplementedError

    def times(self, rng: SeededRNG) -> Iterator[float]:
        """Yield arrival times from t=0 (Lewis–Shedler thinning)."""
        peak = self.peak_rate
        if peak <= 0.0:
            raise ValueError(f"peak rate must be > 0, got {peak}")
        accept_stream = f"{self.stream}:accept"
        t = 0.0
        while True:
            t += rng.exponential(1.0 / peak, stream=self.stream)
            accept = rng.uniform(0.0, 1.0, stream=accept_stream)
            if accept * peak < self.rate(t):
                yield t


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    def __init__(self, rate_per_s: float, stream: str = "arrivals") -> None:
        if rate_per_s <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate_per_s}")
        self.rate_per_s = float(rate_per_s)
        self.stream = stream
        self.peak_rate = self.rate_per_s

    def rate(self, t: float) -> float:
        return self.rate_per_s

    def times(self, rng: SeededRNG) -> Iterator[float]:
        # Homogeneous case: draw gaps directly, no thinning (half the RNG
        # draws, and the inter-arrival gaps are exactly Exp(1/rate) — the
        # distribution the KS property test checks).
        mean_gap = 1.0 / self.rate_per_s
        t = 0.0
        while True:
            t += rng.exponential(mean_gap, stream=self.stream)
            yield t

    def describe(self) -> dict:
        return {"process": "poisson", "rate_per_s": self.rate_per_s}


class OnOffArrivals(ArrivalProcess):
    """Fixed on/off duty cycle; Poisson at ``rate_per_s`` while on.

    The phase schedule is deterministic — on for ``on_s`` from t=0, off
    for ``off_s``, repeating — so tests can assert every arrival lands
    inside a scheduled on-window.
    """

    def __init__(
        self,
        rate_per_s: float,
        on_s: float,
        off_s: float,
        stream: str = "arrivals",
    ) -> None:
        if rate_per_s <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate_per_s}")
        if on_s <= 0.0 or off_s < 0.0:
            raise ValueError(f"need on_s > 0 and off_s >= 0, got {on_s}/{off_s}")
        self.rate_per_s = float(rate_per_s)
        self.on_s = float(on_s)
        self.off_s = float(off_s)
        self.stream = stream
        self.peak_rate = self.rate_per_s

    def is_on(self, t: float) -> bool:
        period = self.on_s + self.off_s
        return (t % period) < self.on_s

    def rate(self, t: float) -> float:
        return self.rate_per_s if self.is_on(t) else 0.0

    def times(self, rng: SeededRNG) -> Iterator[float]:
        # Exact (not thinned): accumulate exponential *busy-time* and map
        # it through the deterministic on-window schedule, so off-phases
        # are skipped without burning rejected candidates.
        period = self.on_s + self.off_s
        mean_gap = 1.0 / self.rate_per_s
        busy = 0.0
        while True:
            busy += rng.exponential(mean_gap, stream=self.stream)
            cycles, within_on = divmod(busy, self.on_s)
            yield cycles * period + within_on

    def describe(self) -> dict:
        return {
            "process": "on-off",
            "rate_per_s": self.rate_per_s,
            "on_s": self.on_s,
            "off_s": self.off_s,
        }


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate modulation around ``mean_rate_per_s``.

    ``rate(t) = mean * (1 + depth * sin(2*pi*t / period_s))`` with
    ``0 <= depth < 1``; integrated over any whole number of periods the
    expected arrival count is exactly ``mean * horizon``.
    """

    def __init__(
        self,
        mean_rate_per_s: float,
        period_s: float,
        depth: float = 0.5,
        stream: str = "arrivals",
    ) -> None:
        if mean_rate_per_s <= 0.0:
            raise ValueError(f"mean rate must be > 0, got {mean_rate_per_s}")
        if period_s <= 0.0:
            raise ValueError(f"period must be > 0, got {period_s}")
        if not 0.0 <= depth < 1.0:
            raise ValueError(f"depth must lie in [0, 1), got {depth}")
        self.mean_rate_per_s = float(mean_rate_per_s)
        self.period_s = float(period_s)
        self.depth = float(depth)
        self.stream = stream
        self.peak_rate = self.mean_rate_per_s * (1.0 + self.depth)

    def rate(self, t: float) -> float:
        phase = math.sin(2.0 * math.pi * t / self.period_s)
        return self.mean_rate_per_s * (1.0 + self.depth * phase)

    def describe(self) -> dict:
        return {
            "process": "diurnal",
            "mean_rate_per_s": self.mean_rate_per_s,
            "period_s": self.period_s,
            "depth": self.depth,
        }


class SpikeWindow:
    """One flash-crowd spike: ``[start_s, start_s + duration_s)`` at
    ``multiplier`` times the base rate."""

    __slots__ = ("start_s", "duration_s", "multiplier")

    def __init__(self, start_s: float, duration_s: float, multiplier: float) -> None:
        if start_s < 0.0 or duration_s <= 0.0:
            raise ValueError(
                f"need start >= 0 and duration > 0, got {start_s}/{duration_s}"
            )
        if multiplier < 1.0:
            raise ValueError(f"spike multiplier must be >= 1, got {multiplier}")
        self.start_s = float(start_s)
        self.duration_s = float(duration_s)
        self.multiplier = float(multiplier)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.end_s

    def describe(self) -> dict:
        return {
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "multiplier": self.multiplier,
        }


class FlashCrowdArrivals(ArrivalProcess):
    """A base Poisson rate with scheduled spike windows.

    During a spike the rate is ``base * multiplier``; outside every spike
    it is ``base``.  Overlapping spikes take the max multiplier (they do
    not compound).
    """

    def __init__(
        self,
        base_rate_per_s: float,
        spikes: Sequence[SpikeWindow],
        stream: str = "arrivals",
    ) -> None:
        if base_rate_per_s <= 0.0:
            raise ValueError(f"base rate must be > 0, got {base_rate_per_s}")
        if not spikes:
            raise ValueError("a flash-crowd process needs at least one spike")
        self.base_rate_per_s = float(base_rate_per_s)
        self.spikes = list(spikes)
        self.stream = stream
        self.peak_rate = self.base_rate_per_s * max(
            spike.multiplier for spike in self.spikes
        )

    def rate(self, t: float) -> float:
        multiplier = 1.0
        for spike in self.spikes:
            if spike.covers(t):
                multiplier = max(multiplier, spike.multiplier)
        return self.base_rate_per_s * multiplier

    def describe(self) -> dict:
        return {
            "process": "flash-crowd",
            "base_rate_per_s": self.base_rate_per_s,
            "spikes": [spike.describe() for spike in self.spikes],
        }
