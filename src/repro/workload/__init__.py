"""Seeded workload models: realistic traffic for benchmarks and soaks.

See ``README.md`` in this directory for the "choosing a workload model"
recipe; the short form:

* pick *what* gets requested from :mod:`repro.workload.popularity`
  (Zipf skew, uniform, cache-hostile scan, weighted tenant mixes),
* pick *when* from :mod:`repro.workload.arrivals` (Poisson, on/off duty
  cycles, diurnal modulation, flash-crowd spikes),
* bind them in a :class:`~repro.workload.driver.WorkloadSpec` and drive a
  node with :class:`~repro.workload.driver.WorkloadDriver` (data plane)
  or :class:`~repro.workload.driver.LIDCWorkloadDriver` (service plane).

Every draw flows through :class:`repro.sim.rng.SeededRNG` streams and the
generated trace is pinned by :func:`~repro.workload.driver.trace_hash`,
so any run is reproducible from (seed, spec) alone.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    OnOffArrivals,
    PoissonArrivals,
    SpikeWindow,
)
from repro.workload.driver import (
    LIDCWorkloadDriver,
    TraceRecord,
    WorkloadDriver,
    WorkloadReport,
    WorkloadSpec,
    build_trace,
    trace_hash,
)
from repro.workload.popularity import (
    MixedPopularity,
    PopularityModel,
    ScanPopularity,
    UniformPopularity,
    ZipfPopularity,
    make_catalog,
)

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "OnOffArrivals",
    "PoissonArrivals",
    "SpikeWindow",
    "LIDCWorkloadDriver",
    "TraceRecord",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "build_trace",
    "trace_hash",
    "MixedPopularity",
    "PopularityModel",
    "ScanPopularity",
    "UniformPopularity",
    "ZipfPopularity",
    "make_catalog",
]
