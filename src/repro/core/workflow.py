"""Workflow helpers: the genomics workflow of paper §IV and Fig. 5.

A :class:`GenomicsWorkflow` drives the full protocol — named compute request,
status polling, result retrieval — through an :class:`~repro.core.client.LIDCClient`
and decomposes the end-to-end latency into the protocol steps, which is what
the Fig. 5 benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.client import JobOutcome, LIDCClient
from repro.core.spec import ComputeRequest

__all__ = ["StepTiming", "WorkflowReport", "GenomicsWorkflow", "CampaignResult", "decompose"]


@dataclass(frozen=True)
class StepTiming:
    """Duration of one protocol step."""

    step: str
    duration_s: float
    fraction: float


@dataclass
class WorkflowReport:
    """One workflow execution with its per-step latency decomposition."""

    outcome: JobOutcome
    steps: list[StepTiming] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.outcome.succeeded

    @property
    def end_to_end_s(self) -> float:
        return self.outcome.end_to_end_s or 0.0

    def step(self, name: str) -> Optional[StepTiming]:
        for timing in self.steps:
            if timing.step == name:
                return timing
        return None


#: The protocol steps of Fig. 5, in order, as (name, start-key, end-key) over
#: the client timeline.
PROTOCOL_STEPS = (
    ("submit_and_ack", "submitted", "acknowledged"),
    ("computation_and_status", "acknowledged", "completed"),
    ("result_retrieval", "completed", "finished"),
)


def decompose(outcome: JobOutcome) -> list[StepTiming]:
    """Split an outcome's timeline into the Fig. 5 protocol steps."""
    total = outcome.end_to_end_s or 0.0
    steps = []
    for step_name, start_key, end_key in PROTOCOL_STEPS:
        if start_key in outcome.timeline and end_key in outcome.timeline:
            duration = outcome.timeline[end_key] - outcome.timeline[start_key]
        else:
            duration = 0.0
        fraction = duration / total if total > 0 else 0.0
        steps.append(StepTiming(step=step_name, duration_s=duration, fraction=fraction))
    return steps


@dataclass
class CampaignResult:
    """Aggregate over a sequence of workflow executions."""

    reports: list[WorkflowReport] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for report in self.reports if report.succeeded)

    @property
    def failed(self) -> int:
        return len(self.reports) - self.completed

    def mean_end_to_end_s(self) -> float:
        finished = [report.end_to_end_s for report in self.reports if report.succeeded]
        return sum(finished) / len(finished) if finished else 0.0

    def clusters_used(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for report in self.reports:
            cluster = report.outcome.submission.cluster
            if cluster:
                counts[cluster] = counts.get(cluster, 0) + 1
        return counts

    def cache_hits(self) -> int:
        return sum(1 for report in self.reports if report.outcome.from_cache)


class GenomicsWorkflow:
    """Drives BLAST workflows through a client."""

    def __init__(self, client: LIDCClient, poll_interval_s: Optional[float] = None,
                 fetch_results: bool = True) -> None:
        self.client = client
        self.poll_interval_s = poll_interval_s
        self.fetch_results = fetch_results

    # -- single request ------------------------------------------------------------

    def run(self, request: ComputeRequest, unique: bool = True):
        """Process generator: run one workflow; returns a :class:`WorkflowReport`."""
        outcome = yield from self.client.run_workflow(
            request, poll_interval_s=self.poll_interval_s,
            fetch_result=self.fetch_results, unique=unique,
        )
        return WorkflowReport(outcome=outcome, steps=decompose(outcome))

    def blast(self, srr_id: str, reference: str = "HUMAN", cpu: float = 2,
              memory_gb: float = 4, unique: bool = True):
        """Process generator: BLAST one SRA sample against a reference."""
        request = ComputeRequest(
            app="BLAST", cpu=cpu, memory_gb=memory_gb, dataset=srr_id, reference=reference
        )
        return (yield from self.run(request, unique=unique))

    # -- campaigns -----------------------------------------------------------------------

    def run_campaign(self, requests: Sequence[ComputeRequest], unique: bool = True,
                     inter_arrival_s: float = 0.0):
        """Process generator: run several workflows sequentially; returns a campaign."""
        campaign = CampaignResult()
        for index, request in enumerate(requests):
            if index > 0 and inter_arrival_s > 0:
                yield self.client.env.timeout(inter_arrival_s)
            report = yield from self.run(request, unique=unique)
            campaign.reports.append(report)
        return campaign

    def run_concurrent(self, requests: Sequence[ComputeRequest], unique: bool = True,
                       stagger_s: float = 0.0):
        """Process generator: drive all workflows concurrently through one client.

        Every request becomes an in-flight :class:`~repro.core.client.JobHandle`
        on the shared Consumer; the campaign completes when the last handle
        does, so the makespan is the slowest job rather than the sum.
        """
        handles = self.client.submit_many(
            requests, unique=unique, fetch_result=self.fetch_results,
            poll_interval_s=self.poll_interval_s, stagger_s=stagger_s,
        )
        yield self.client.wait_all(handles)
        campaign = CampaignResult()
        for handle in handles:
            outcome = handle.outcome
            campaign.reports.append(
                WorkflowReport(outcome=outcome, steps=decompose(outcome))
            )
        return campaign
