"""HTTP(S)-style naming of computations (paper §II).

"Similarly, HTTP(s)-based naming of computational jobs can also match them to
appropriate endpoints."  LIDC's contribution is the *semantic naming*, not NDN
specifically; this module demonstrates that claim by providing a lossless
mapping between :class:`~repro.core.spec.ComputeRequest` objects and HTTP
URLs / request descriptions, plus a tiny HTTP-style facade over a gateway so a
RESTful client can drive the same admission path.
"""

from __future__ import annotations

import json
import urllib.parse
from dataclasses import dataclass, field
from typing import Optional

from repro.core import naming
from repro.core.gateway import Gateway
from repro.core.spec import ComputeRequest
from repro.exceptions import InvalidComputeName, ValidationFailure

__all__ = ["HttpRequest", "HttpResponse", "request_to_url", "url_to_request", "HttpGatewayFacade"]

#: Path prefixes mirroring the NDN namespaces.
COMPUTE_PATH = "/ndn/k8s/compute"
STATUS_PATH = "/ndn/k8s/status"
DATA_PATH = "/ndn/k8s/data"


@dataclass(frozen=True)
class HttpRequest:
    """A minimal HTTP request description (method, path, query, body)."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def url(self) -> str:
        query = ("?" + urllib.parse.urlencode(sorted(self.query.items()))) if self.query else ""
        return f"{self.path}{query}"


@dataclass(frozen=True)
class HttpResponse:
    """A minimal HTTP response description."""

    status: int
    body: bytes = b""

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8")) if self.body else {}

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def request_to_url(request: ComputeRequest, base_url: str = "https://lidc.example.org") -> str:
    """Encode a compute request as an HTTPS URL.

    The query string carries exactly the parameters the NDN name would carry,
    so the two naming schemes are interchangeable.
    """
    params = request.to_params()
    query = urllib.parse.urlencode(sorted(params.items()))
    return f"{base_url.rstrip('/')}{COMPUTE_PATH}?{query}"


def url_to_request(url: str) -> ComputeRequest:
    """Decode an HTTPS compute URL back into a :class:`ComputeRequest`."""
    parsed = urllib.parse.urlparse(url)
    if not parsed.path.endswith(COMPUTE_PATH.lstrip("/")) and parsed.path != COMPUTE_PATH:
        raise InvalidComputeName(f"{url!r} is not a compute URL (path {parsed.path!r})")
    pairs = urllib.parse.parse_qsl(parsed.query, keep_blank_values=True)
    if not pairs:
        raise InvalidComputeName(f"{url!r} carries no computation parameters")
    params: dict[str, str] = {}
    for key, value in pairs:
        if key in params:
            raise InvalidComputeName(f"duplicate query parameter {key!r}")
        params[key] = value
    return ComputeRequest.from_params(params)


class HttpGatewayFacade:
    """An HTTP-style facade over an LIDC gateway.

    Routes:

    * ``POST /ndn/k8s/compute?app=...&cpu=...`` — submit a computation;
      202 with ``{"job_id", "status_url"}`` on success, 400 on validation
      errors, 503 when the cluster has no capacity.
    * ``GET /ndn/k8s/status/<job-id>`` — job status; 404 for unknown jobs.
    * ``GET /ndn/k8s/data/<dataset>`` — dataset manifest; 404 when absent.
    """

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self.requests_handled = 0

    # -- dispatch -----------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one HTTP request to the gateway."""
        self.requests_handled += 1
        path = request.path.rstrip("/")
        if request.method.upper() == "POST" and path == COMPUTE_PATH:
            return self._submit(request)
        if request.method.upper() == "GET" and path.startswith(STATUS_PATH + "/"):
            return self._status(path[len(STATUS_PATH) + 1:])
        if request.method.upper() == "GET" and path.startswith(DATA_PATH + "/"):
            return self._dataset(path[len(DATA_PATH) + 1:])
        return self._json(404, {"error": f"no route for {request.method} {request.path}"})

    # -- handlers ------------------------------------------------------------------------

    def _submit(self, request: HttpRequest) -> HttpResponse:
        try:
            compute_request = ComputeRequest.from_params(dict(request.query))
        except (InvalidComputeName, ValueError) as exc:
            return self._json(400, {"error": f"malformed request: {exc}"})
        if not self.gateway.applications.has_app(compute_request.app):
            return self._json(400, {"error": f"unknown application {compute_request.app!r}"})
        validation = self.gateway.validators.validate(compute_request, self.gateway.datalake)
        if not validation.ok:
            return self._json(400, {"error": validation.message})
        from repro.cluster.quantity import parse_memory
        from repro.cluster.quantity import Quantity

        requested = Quantity(cpu=compute_request.cpu,
                             memory=parse_memory(f"{compute_request.memory_gb:g}Gi"))
        if self.gateway.reject_when_busy and not self.gateway.cluster.can_fit(requested):
            return self._json(503, {"error": "insufficient capacity on this cluster"})
        try:
            record = self.gateway.submit_local(compute_request, validate=False)
        except ValidationFailure as exc:  # pragma: no cover - validated above
            return self._json(400, {"error": str(exc)})
        return self._json(202, {
            "job_id": record.job_id,
            "status_url": f"{STATUS_PATH}/{record.job_id}",
            "cluster": record.cluster,
            "equivalent_ndn_name": str(compute_request.to_name()),
        })

    def _status(self, job_id: str) -> HttpResponse:
        record = self.gateway.tracker.try_get(job_id)
        if record is None:
            return self._json(404, {"error": f"unknown job id {job_id!r}"})
        self.gateway._refresh_state(record)
        return self._json(200, record.status_payload())

    def _dataset(self, dataset_id: str) -> HttpResponse:
        if not self.gateway.datalake.has_dataset(dataset_id):
            return self._json(404, {"error": f"unknown dataset {dataset_id!r}"})
        return HttpResponse(status=200, body=self.gateway.datalake.read_manifest(dataset_id))

    # -- helpers --------------------------------------------------------------------------

    @staticmethod
    def _json(status: int, payload: dict) -> HttpResponse:
        return HttpResponse(status=status, body=json.dumps(payload, sort_keys=True).encode("utf-8"))
