"""Completion-time prediction (paper §VII future work).

"We aim to enable the network to identify the most suitable cluster for
executing requests and optimize the system by leveraging machine learning
algorithms to predict completion times."

The predictor is an online least-squares regressor over simple request
features.  It is trained from completed job records (features → observed
runtime) and used by the learned placement strategy to rank clusters by the
predicted completion time (predicted runtime plus the cluster's current queue
delay estimate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.spec import ComputeRequest, JobRecord

__all__ = ["TrainingExample", "CompletionTimePredictor"]


@dataclass(frozen=True)
class TrainingExample:
    """One (features, runtime) observation."""

    features: tuple[float, ...]
    runtime_s: float
    app: str


def _request_features(request: ComputeRequest, dataset_size_bytes: float) -> tuple[float, ...]:
    """Feature vector: bias, 1/cpu, 1/mem, dataset size (GB), dataset size / cpu."""
    size_gb = dataset_size_bytes / 1e9
    return (
        1.0,
        1.0 / max(request.cpu, 1e-6),
        1.0 / max(request.memory_gb, 1e-6),
        size_gb,
        size_gb / max(request.cpu, 1e-6),
    )


class CompletionTimePredictor:
    """Per-application online linear regression for job runtimes."""

    def __init__(self, min_examples: int = 3, ridge: float = 1e-3) -> None:
        self.min_examples = min_examples
        self.ridge = ridge
        self._examples: dict[str, list[TrainingExample]] = {}
        self._weights: dict[str, np.ndarray] = {}
        self.predictions_made = 0

    # -- training -------------------------------------------------------------------

    def observe(self, request: ComputeRequest, runtime_s: float,
                dataset_size_bytes: float = 0.0) -> TrainingExample:
        """Add one completed-job observation and refit that application's model."""
        example = TrainingExample(
            features=_request_features(request, dataset_size_bytes),
            runtime_s=float(runtime_s),
            app=request.app.upper(),
        )
        self._examples.setdefault(example.app, []).append(example)
        self._fit(example.app)
        return example

    def observe_record(self, record: JobRecord, dataset_size_bytes: float = 0.0) -> Optional[TrainingExample]:
        """Convenience: train from a completed :class:`JobRecord`."""
        runtime = record.runtime()
        if runtime is None:
            return None
        return self.observe(record.request, runtime, dataset_size_bytes)

    def _fit(self, app: str) -> None:
        examples = self._examples.get(app, [])
        if len(examples) < self.min_examples:
            return
        features = np.array([ex.features for ex in examples], dtype=float)
        targets = np.array([ex.runtime_s for ex in examples], dtype=float)
        n_features = features.shape[1]
        gram = features.T @ features + self.ridge * np.eye(n_features)
        self._weights[app] = np.linalg.solve(gram, features.T @ targets)

    # -- prediction -------------------------------------------------------------------

    def is_trained(self, app: str) -> bool:
        return app.upper() in self._weights

    def example_count(self, app: str) -> int:
        return len(self._examples.get(app.upper(), []))

    def predict(self, request: ComputeRequest, dataset_size_bytes: float = 0.0) -> Optional[float]:
        """Predicted runtime in seconds, or ``None`` before enough training data."""
        app = request.app.upper()
        weights = self._weights.get(app)
        if weights is None:
            # Fall back to the mean runtime of whatever examples exist.
            examples = self._examples.get(app, [])
            if not examples:
                return None
            return float(np.mean([ex.runtime_s for ex in examples]))
        self.predictions_made += 1
        features = np.array(_request_features(request, dataset_size_bytes), dtype=float)
        prediction = float(features @ weights)
        return max(0.0, prediction)

    def mean_absolute_error(self, app: str) -> Optional[float]:
        """In-sample MAE of the fitted model (observability for the ablation bench)."""
        app = app.upper()
        weights = self._weights.get(app)
        examples = self._examples.get(app, [])
        if weights is None or not examples:
            return None
        features = np.array([ex.features for ex in examples], dtype=float)
        targets = np.array([ex.runtime_s for ex in examples], dtype=float)
        predictions = features @ weights
        return float(np.mean(np.abs(predictions - targets)))

    def applications(self) -> Sequence[str]:
        return sorted(self._examples)
