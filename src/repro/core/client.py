"""The LIDC client library.

The client is what a workflow runs on its own machine: it expresses compute
Interests, receives the acknowledgement with the job id, polls
``/ndn/k8s/status/<job-id>``, and finally retrieves the result from the data
lake by name (paper Fig. 5).  The client never learns which cluster executed
the job unless it inspects the acknowledgement — that is the point.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.core import naming
from repro.core.spec import ComputeRequest, JobState
from repro.exceptions import InterestNacked, InterestTimeout, LIDCError
from repro.ndn.client import Consumer
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.sim.engine import Environment

__all__ = ["SubmissionResult", "JobOutcome", "LIDCClient"]

#: Default interval between status polls, in simulated seconds.
DEFAULT_POLL_INTERVAL_S = 30.0
#: Default Interest lifetime for LIDC control-plane exchanges.
DEFAULT_LIFETIME_S = 10.0


@dataclass
class SubmissionResult:
    """Outcome of the initial compute Interest."""

    accepted: bool
    job_id: Optional[str] = None
    status_name: Optional[Name] = None
    cluster: Optional[str] = None
    cached: bool = False
    result_name: Optional[Name] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    acknowledged_at: float = 0.0

    @property
    def ack_latency(self) -> float:
        return self.acknowledged_at - self.submitted_at


@dataclass
class JobOutcome:
    """Outcome of a full submit → wait → retrieve workflow."""

    request: ComputeRequest
    submission: SubmissionResult
    state: JobState = JobState.FAILED
    result_name: Optional[Name] = None
    result_size_bytes: Optional[int] = None
    result_payload: Optional[bytes] = None
    runtime_s: Optional[float] = None
    error: Optional[str] = None
    from_cache: bool = False
    status_polls: int = 0
    #: Named timestamps of the protocol steps (used by the Fig. 5 benchmark).
    timeline: dict[str, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.state == JobState.COMPLETED

    @property
    def turnaround_s(self) -> Optional[float]:
        if "completed" not in self.timeline or "submitted" not in self.timeline:
            return None
        return self.timeline["completed"] - self.timeline["submitted"]

    @property
    def end_to_end_s(self) -> Optional[float]:
        if "finished" not in self.timeline or "submitted" not in self.timeline:
            return None
        return self.timeline["finished"] - self.timeline["submitted"]


class LIDCClient:
    """Client-side API: submit computations, poll status, retrieve results."""

    _instance_counter = itertools.count(1)

    def __init__(
        self,
        env: Environment,
        forwarder: Forwarder,
        name: Optional[str] = None,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        lifetime_s: float = DEFAULT_LIFETIME_S,
        retries: int = 2,
    ) -> None:
        self.env = env
        self.name = name or f"lidc-client-{next(self._instance_counter)}"
        self.poll_interval_s = poll_interval_s
        self.lifetime_s = lifetime_s
        self.retries = retries
        self.consumer = Consumer(env, forwarder, name=self.name)
        self._request_counter = itertools.count(1)
        self.submissions = 0

    # ------------------------------------------------------------------ submission

    def _request_name(self, request: ComputeRequest, unique: bool) -> Name:
        if not unique:
            return request.to_name()
        params = request.to_params()
        params["req"] = f"{self.name}-{next(self._request_counter)}"
        return naming.compute_name(params)

    def submit(self, request: ComputeRequest, unique: bool = True):
        """Process generator: submit one request and return a :class:`SubmissionResult`.

        ``unique=False`` reuses the canonical request name, which lets the
        network's content store and the gateway's result cache answer repeated
        identical requests (the paper's caching future-work).
        """
        name = self._request_name(request, unique)
        submitted_at = self.env.now
        self.submissions += 1
        try:
            data = yield self.consumer.express_interest(
                name, lifetime=self.lifetime_s, retries=self.retries, must_be_fresh=True
            )
        except (InterestTimeout, InterestNacked) as exc:
            return SubmissionResult(
                accepted=False, error=str(exc),
                submitted_at=submitted_at, acknowledged_at=self.env.now,
            )
        payload = json.loads(data.content_text())
        if not payload.get("accepted", False):
            return SubmissionResult(
                accepted=False, error=payload.get("error", "rejected"),
                submitted_at=submitted_at, acknowledged_at=self.env.now,
            )
        return SubmissionResult(
            accepted=True,
            job_id=payload["job_id"],
            status_name=Name(payload["status_name"]),
            cluster=payload.get("cluster"),
            cached=bool(payload.get("cached", False)),
            result_name=Name(payload["result_name"]) if payload.get("result_name") else None,
            submitted_at=submitted_at,
            acknowledged_at=self.env.now,
        )

    # ------------------------------------------------------------------ status

    def poll_status(self, job_id: str):
        """Process generator: one status poll; returns the status payload dict."""
        name = naming.status_name(job_id)
        data = yield self.consumer.express_interest(
            name, lifetime=self.lifetime_s, must_be_fresh=True, retries=self.retries
        )
        return json.loads(data.content_text())

    def wait_for_completion(self, job_id: str, poll_interval_s: Optional[float] = None,
                            max_polls: int = 100_000):
        """Process generator: poll until the job is terminal; returns the final payload."""
        interval = poll_interval_s if poll_interval_s is not None else self.poll_interval_s
        polls = 0
        while True:
            payload = yield from self.poll_status(job_id)
            polls += 1
            state = JobState(payload.get("state", JobState.FAILED.value))
            if state.is_terminal():
                payload["_polls"] = polls
                return payload
            if polls >= max_polls:
                raise LIDCError(f"job {job_id} still not terminal after {polls} polls")
            yield self.env.timeout(interval)

    # ------------------------------------------------------------------ results

    def retrieve_result(self, result_name: "Name | str", fetch_payload: bool = True):
        """Process generator: fetch a result's manifest (and payload when materialised).

        Returns ``(manifest_dict, payload_bytes_or_None)``.
        """
        result_name = Name(result_name)
        manifest_data = yield self.consumer.express_interest(
            result_name, lifetime=self.lifetime_s, retries=self.retries
        )
        manifest = json.loads(manifest_data.content_text())
        payload: Optional[bytes] = None
        if fetch_payload and manifest.get("has_payload"):
            payload = yield from self.consumer.fetch_segments(
                result_name, lifetime=self.lifetime_s, retries=self.retries
            )
        return manifest, payload

    def retrieve_dataset(self, dataset_id: str, fetch_payload: bool = True):
        """Process generator: retrieve a dataset from the data lake by id."""
        return (yield from self.retrieve_result(naming.data_name(dataset_id), fetch_payload))

    # ------------------------------------------------------------------ end-to-end workflow

    def run_workflow(
        self,
        request: ComputeRequest,
        poll_interval_s: Optional[float] = None,
        fetch_result: bool = True,
        unique: bool = True,
    ):
        """Process generator implementing the full Fig. 5 protocol.

        Returns a :class:`JobOutcome` with a per-step timeline.
        """
        outcome_timeline: dict[str, float] = {"submitted": self.env.now}
        submission = yield from self.submit(request, unique=unique)
        outcome_timeline["acknowledged"] = self.env.now
        outcome = JobOutcome(request=request, submission=submission, timeline=outcome_timeline)
        if not submission.accepted:
            outcome.state = JobState.FAILED
            outcome.error = submission.error
            outcome_timeline["finished"] = self.env.now
            return outcome

        if submission.cached and submission.result_name is not None:
            # Cache hit: the result already exists, skip straight to retrieval.
            outcome.state = JobState.COMPLETED
            outcome.from_cache = True
            outcome.result_name = submission.result_name
            outcome_timeline["completed"] = self.env.now
        else:
            final = yield from self.wait_for_completion(
                submission.job_id or "", poll_interval_s=poll_interval_s
            )
            outcome.status_polls = int(final.get("_polls", 0))
            outcome_timeline["completed"] = self.env.now
            outcome.state = JobState(final.get("state", JobState.FAILED.value))
            outcome.from_cache = bool(final.get("from_cache", False))
            outcome.runtime_s = final.get("runtime_s")
            if outcome.state == JobState.FAILED:
                outcome.error = final.get("error", "job failed")
                outcome_timeline["finished"] = self.env.now
                return outcome
            if final.get("result_name"):
                outcome.result_name = Name(final["result_name"])
            outcome.result_size_bytes = final.get("result_size_bytes")

        if fetch_result and outcome.result_name is not None:
            manifest, payload = yield from self.retrieve_result(outcome.result_name)
            outcome.result_size_bytes = manifest.get("size_bytes", outcome.result_size_bytes)
            outcome.result_payload = payload
            outcome_timeline["result_retrieved"] = self.env.now
        outcome_timeline["finished"] = self.env.now
        return outcome
