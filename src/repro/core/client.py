"""The LIDC client library: non-blocking job sessions over named Interests.

The client is what a workflow runs on its own machine: it expresses compute
Interests, receives the acknowledgement with the job id, tracks
``/ndn/k8s/status/<job-id>``, and finally retrieves the result from the data
lake by name (paper Fig. 5).  The client never learns which cluster executed
the job unless it inspects the acknowledgement — that is the point.

:meth:`LIDCClient.submit` returns a :class:`JobHandle` immediately: a future
for one computation whose lifecycle (submit → ack → status tracking → result
retrieval) is driven by a background simulation process.  Many handles can be
in flight on one client at once — :meth:`LIDCClient.submit_many` drives N
concurrent jobs through a single :class:`~repro.ndn.client.Consumer` — and
status is tracked with long-lived status Interests whose re-expression
interval backs off exponentially (instead of the old fixed 30 s poll loop).

Synchronous call sites use::

    handle = client.submit(request)
    outcome = env.run(until=handle.done)

and process generators use::

    outcome = yield from client.run_workflow(request)     # or
    outcome = yield handle.done
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core import naming
from repro.core.spec import ComputeRequest, JobState
from repro.exceptions import InterestNacked, InterestTimeout, LIDCError, ProcessInterrupt
from repro.ndn.client import Consumer, RetryPolicy
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.sim.engine import Environment, Event

__all__ = ["SubmissionResult", "JobOutcome", "JobHandle", "LIDCClient", "RetryPolicy"]

#: Default cap on the interval between status Interests, in simulated seconds.
#: Tracking starts at :data:`DEFAULT_INITIAL_POLL_S` and backs off
#: exponentially up to this cap.
DEFAULT_POLL_INTERVAL_S = 30.0
#: First re-expression interval of the status-tracking loop.
DEFAULT_INITIAL_POLL_S = 1.0
#: Multiplier applied to the status interval after each non-terminal answer.
DEFAULT_POLL_BACKOFF = 2.0
#: Default Interest lifetime for LIDC control-plane exchanges.
DEFAULT_LIFETIME_S = 10.0


@dataclass
class SubmissionResult:
    """Outcome of the initial compute Interest."""

    accepted: bool
    job_id: Optional[str] = None
    status_name: Optional[Name] = None
    cluster: Optional[str] = None
    cached: bool = False
    result_name: Optional[Name] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    acknowledged_at: float = 0.0

    @property
    def ack_latency(self) -> float:
        return self.acknowledged_at - self.submitted_at


@dataclass
class JobOutcome:
    """Outcome of a full submit → wait → retrieve workflow."""

    request: ComputeRequest
    submission: SubmissionResult
    state: JobState = JobState.FAILED
    result_name: Optional[Name] = None
    result_size_bytes: Optional[int] = None
    result_payload: Optional[bytes] = None
    runtime_s: Optional[float] = None
    error: Optional[str] = None
    from_cache: bool = False
    status_polls: int = 0
    #: Named timestamps of the protocol steps (used by the Fig. 5 benchmark).
    timeline: dict[str, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.state == JobState.COMPLETED

    @property
    def turnaround_s(self) -> Optional[float]:
        if "completed" not in self.timeline or "submitted" not in self.timeline:
            return None
        return self.timeline["completed"] - self.timeline["submitted"]

    @property
    def end_to_end_s(self) -> Optional[float]:
        if "finished" not in self.timeline or "submitted" not in self.timeline:
            return None
        return self.timeline["finished"] - self.timeline["submitted"]


class JobHandle:
    """A non-blocking session for one submitted computation.

    Returned immediately by :meth:`LIDCClient.submit`; a background process
    drives the whole protocol.  ``handle.done`` is a simulation event that
    triggers with the final :class:`JobOutcome` once the job is terminal
    (it never fails — errors are materialised in the outcome), so handles
    compose with ``env.all_of`` and ``env.run(until=...)``.
    """

    _id_counter = itertools.count(1)

    def __init__(
        self,
        client: "LIDCClient",
        request: ComputeRequest,
        done: Event,
        unique: bool = True,
        fetch_result: bool = False,
        poll_interval_s: Optional[float] = None,
        delay_s: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.handle_id = next(self._id_counter)
        self.client = client
        self.request = request
        self.done = done
        self.unique = unique
        self.fetch_result = fetch_result
        self.poll_interval_s = poll_interval_s
        self.delay_s = delay_s
        #: Per-exchange self-healing policy (falls back to the client's).
        self.retry_policy = retry_policy
        #: Whole-job budget in simulated seconds, counted from submission;
        #: when exceeded the session resolves to a FAILED outcome.
        self.deadline_s = deadline_s
        self.deadline_exceeded = False
        #: Protocol timestamps, shared with the outcome's timeline.
        self.timeline: dict[str, float] = {}
        self.job_id: Optional[str] = None
        self.cancelled = False
        self.status_polls = 0
        self._state = JobState.PENDING
        self._submission: Optional[SubmissionResult] = None
        self._outcome: Optional[JobOutcome] = None
        self._status_payload: Optional[dict] = None
        self._process = None

    # -- state ------------------------------------------------------------------

    @property
    def state(self) -> JobState:
        """The paper's four-state lifecycle, as currently known to the client."""
        if self._outcome is not None:
            return self._outcome.state
        return self._state

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def submission(self) -> Optional[SubmissionResult]:
        return self._submission

    @property
    def accepted(self) -> Optional[bool]:
        """True/False once the gateway answered; None while the ack is pending."""
        if self._submission is None:
            return None
        return self._submission.accepted

    @property
    def cluster(self) -> Optional[str]:
        return self._submission.cluster if self._submission else None

    @property
    def outcome(self) -> Optional[JobOutcome]:
        return self._outcome

    @property
    def succeeded(self) -> bool:
        return self._outcome is not None and self._outcome.succeeded

    def status(self) -> dict:
        """The latest known status document (client-side view, no network)."""
        if self._status_payload is not None:
            return dict(self._status_payload)
        payload: dict = {"state": self.state.value}
        if self.job_id:
            payload["job_id"] = self.job_id
        if self._submission is not None and self._submission.cluster:
            payload["cluster"] = self._submission.cluster
        return payload

    def result(self) -> Optional[bytes]:
        """The retrieved result payload (None until fetched / when modelled)."""
        return self._outcome.result_payload if self._outcome else None

    # -- waiting -----------------------------------------------------------------

    def wait(self):
        """Process generator: wait for completion; returns the :class:`JobOutcome`."""
        outcome = yield self.done
        return outcome

    # -- cancellation ------------------------------------------------------------

    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Stop tracking this job client-side.

        The computation itself keeps running on the cluster (the paper's
        protocol has no revocation message); the handle resolves to a FAILED
        outcome carrying the cancellation reason.  Returns False when the job
        already finished.
        """
        if self.finished:
            return False
        if self._process is not None and self._process.is_alive:
            self._process.interrupt(reason)
            return True
        return False

    # -- driver internals --------------------------------------------------------

    def _complete(self, outcome: JobOutcome) -> None:
        self._outcome = outcome
        self._state = outcome.state
        if not self.done.triggered:
            self.done.succeed(outcome)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<JobHandle #{self.handle_id} {self.request.app}"
                f" job_id={self.job_id} state={self.state.value}>")


class LIDCClient:
    """Client-side API: submit computations, track status, retrieve results."""

    _instance_counter = itertools.count(1)

    def __init__(
        self,
        env: Environment,
        forwarder: Forwarder,
        name: Optional[str] = None,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        initial_poll_s: float = DEFAULT_INITIAL_POLL_S,
        poll_backoff: float = DEFAULT_POLL_BACKOFF,
        lifetime_s: float = DEFAULT_LIFETIME_S,
        retries: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.env = env
        self.name = name or f"lidc-client-{next(self._instance_counter)}"
        self.poll_interval_s = poll_interval_s
        self.initial_poll_s = initial_poll_s
        self.poll_backoff = max(1.0, poll_backoff)
        self.lifetime_s = lifetime_s
        self.retries = retries
        #: Client-wide self-healing policy for every control-plane exchange
        #: (submission ack, status tracking, result retrieval); per-handle
        #: policies override it.  None keeps the legacy fixed-interval
        #: retransmission driven by ``retries``.
        self.retry_policy = retry_policy
        self.consumer = Consumer(env, forwarder, name=self.name)
        self._request_counter = itertools.count(1)
        self.submissions = 0
        self._in_flight: set[JobHandle] = set()
        self.max_in_flight = 0

    # ------------------------------------------------------------------ submission

    def _request_name(self, request: ComputeRequest, unique: bool) -> Name:
        if not unique:
            return request.to_name()
        params = request.to_params()
        params["req"] = f"{self.name}-{next(self._request_counter)}"
        return naming.compute_name(params)

    def submit_interest(self, request: ComputeRequest, unique: bool = True,
                        retry_policy: Optional[RetryPolicy] = None):
        """Process generator: express one compute Interest; returns a
        :class:`SubmissionResult` (the raw ack exchange, no status tracking).

        ``unique=False`` reuses the canonical request name, which lets the
        network's content store and the gateway's result cache answer repeated
        identical requests (the paper's caching future-work).
        """
        name = self._request_name(request, unique)
        submitted_at = self.env.now
        self.submissions += 1
        try:
            data = yield self.consumer.express_interest(
                name, lifetime=self.lifetime_s, retries=self.retries,
                must_be_fresh=True,
                retry_policy=retry_policy if retry_policy is not None else self.retry_policy,
            )
        except (InterestTimeout, InterestNacked) as exc:
            return SubmissionResult(
                accepted=False, error=str(exc),
                submitted_at=submitted_at, acknowledged_at=self.env.now,
            )
        payload = json.loads(data.content_text())
        if not payload.get("accepted", False):
            return SubmissionResult(
                accepted=False, error=payload.get("error", "rejected"),
                submitted_at=submitted_at, acknowledged_at=self.env.now,
            )
        return SubmissionResult(
            accepted=True,
            job_id=payload["job_id"],
            status_name=Name(payload["status_name"]),
            cluster=payload.get("cluster"),
            cached=bool(payload.get("cached", False)),
            result_name=Name(payload["result_name"]) if payload.get("result_name") else None,
            submitted_at=submitted_at,
            acknowledged_at=self.env.now,
        )

    def submit(
        self,
        request: ComputeRequest,
        unique: bool = True,
        fetch_result: bool = False,
        poll_interval_s: Optional[float] = None,
        delay_s: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
    ) -> JobHandle:
        """Submit a computation and return a :class:`JobHandle` immediately.

        The handle's lifecycle runs as a background process; the calling
        code decides when (and whether) to wait on ``handle.done``.
        ``deadline_s`` bounds the whole session: a job not terminal within
        the budget resolves to a FAILED outcome (typed, never a hang).
        """
        handle = JobHandle(
            self, request,
            done=self.env.event(name=f"job:{request.app}"),
            unique=unique, fetch_result=fetch_result,
            poll_interval_s=poll_interval_s, delay_s=delay_s,
            retry_policy=retry_policy, deadline_s=deadline_s,
        )
        self._in_flight.add(handle)
        self.max_in_flight = max(self.max_in_flight, len(self._in_flight))
        handle._process = self.env.process(
            self._drive(handle), name=f"job-session:{handle.handle_id}"
        )
        if deadline_s is not None:
            self.env.process(
                self._deadline_watch(handle), name=f"job-deadline:{handle.handle_id}"
            )
        return handle

    def _deadline_watch(self, handle: JobHandle):
        """Background process enforcing a handle's whole-job deadline."""
        yield self.env.timeout(handle.delay_s + (handle.deadline_s or 0.0))
        if not handle.finished and handle._process is not None and handle._process.is_alive:
            handle.deadline_exceeded = True
            handle._process.interrupt(
                f"job deadline of {handle.deadline_s}s exceeded"
            )

    def submit_many(
        self,
        requests: Sequence[ComputeRequest],
        unique: bool = True,
        fetch_result: bool = False,
        poll_interval_s: Optional[float] = None,
        stagger_s: float = 0.0,
    ) -> list[JobHandle]:
        """Submit N computations concurrently through this client's one Consumer.

        ``stagger_s`` spaces the submissions out (handle *i* submits at
        ``i * stagger_s``); the default submits everything at once.
        """
        return [
            self.submit(
                request, unique=unique, fetch_result=fetch_result,
                poll_interval_s=poll_interval_s, delay_s=index * stagger_s,
            )
            for index, request in enumerate(requests)
        ]

    def wait_all(self, handles: Iterable[JobHandle]) -> Event:
        """A composite event triggering when every handle is terminal."""
        return self.env.all_of([handle.done for handle in handles])

    def gather(self, handles: Sequence[JobHandle]):
        """Process generator: wait for all handles; returns their outcomes in order."""
        yield self.env.all_of([handle.done for handle in handles])
        return [handle.outcome for handle in handles]

    @property
    def in_flight(self) -> int:
        """Number of job sessions currently being driven."""
        return len(self._in_flight)

    # ------------------------------------------------------------------ session driver

    def _drive(self, handle: JobHandle):
        """Background process running one handle's full protocol."""
        try:
            outcome = yield from self._lifecycle(handle)
        except ProcessInterrupt as exc:
            handle.cancelled = True
            outcome = self._failed_outcome(
                handle, str(exc.cause) if exc.cause else "cancelled")
        except Exception as exc:  # lint: allow[RL004] handle.done must always trigger; any session error becomes a FAILED outcome
            # Unexpected errors (corrupt status payloads, non-gateway
            # producers, ...) are materialised into a FAILED outcome so
            # waiters never hang on an event that cannot trigger.
            outcome = self._failed_outcome(handle, f"job session error: {exc!r}")
        finally:
            self._in_flight.discard(handle)
        handle._complete(outcome)
        return outcome

    def _failed_outcome(self, handle: JobHandle, reason: str) -> JobOutcome:
        """Resolve a dying session into a FAILED outcome carrying ``reason``."""
        outcome = handle._outcome
        if outcome is None:
            outcome = JobOutcome(
                request=handle.request,
                submission=SubmissionResult(
                    accepted=False, error=reason,
                    submitted_at=handle.timeline.get("submitted", self.env.now),
                    acknowledged_at=self.env.now,
                ),
                timeline=handle.timeline,
            )
        outcome.state = JobState.FAILED
        outcome.error = reason
        handle.timeline.setdefault("finished", self.env.now)
        return outcome

    def _lifecycle(self, handle: JobHandle):
        """Process generator: the full Fig. 5 protocol for one handle."""
        timeline = handle.timeline
        if handle.delay_s > 0:
            yield self.env.timeout(handle.delay_s)
        timeline["submitted"] = self.env.now
        submission = yield from self.submit_interest(
            handle.request, unique=handle.unique, retry_policy=handle.retry_policy
        )
        timeline["acknowledged"] = self.env.now
        handle._submission = submission
        outcome = JobOutcome(request=handle.request, submission=submission, timeline=timeline)
        handle._outcome = outcome
        if not submission.accepted:
            outcome.state = JobState.FAILED
            outcome.error = submission.error
            timeline["finished"] = self.env.now
            return outcome
        handle.job_id = submission.job_id

        if submission.cached and submission.result_name is not None:
            # Cache hit: the result already exists, skip straight to retrieval.
            outcome.state = JobState.COMPLETED
            outcome.from_cache = True
            outcome.result_name = submission.result_name
            handle._state = JobState.COMPLETED
            timeline["completed"] = self.env.now
        else:
            handle._state = JobState.PENDING
            try:
                final = yield from self.wait_for_completion(
                    submission.job_id or "",
                    poll_interval_s=handle.poll_interval_s,
                    _handle=handle,
                )
            except (InterestTimeout, InterestNacked, LIDCError) as exc:
                outcome.state = JobState.FAILED
                outcome.error = f"status tracking failed: {exc}"
                outcome.status_polls = handle.status_polls
                timeline["finished"] = self.env.now
                return outcome
            outcome.status_polls = int(final.get("_polls", 0))
            timeline["completed"] = self.env.now
            outcome.state = JobState(final.get("state", JobState.FAILED.value))
            outcome.from_cache = bool(final.get("from_cache", False))
            outcome.runtime_s = final.get("runtime_s")
            if outcome.state == JobState.FAILED:
                outcome.error = final.get("error", "job failed")
                timeline["finished"] = self.env.now
                return outcome
            if final.get("result_name"):
                outcome.result_name = Name(final["result_name"])
            outcome.result_size_bytes = final.get("result_size_bytes")

        if handle.fetch_result and outcome.result_name is not None:
            try:
                manifest, payload = yield from self.retrieve_result(outcome.result_name)
            except (InterestTimeout, InterestNacked) as exc:
                # The caller asked for the payload and cannot have it: the
                # workflow as a whole failed, even though the cluster-side job
                # completed (result_name/result_size_bytes stay for diagnosis).
                outcome.state = JobState.FAILED
                outcome.error = f"result retrieval failed: {exc}"
                timeline["finished"] = self.env.now
                return outcome
            outcome.result_size_bytes = manifest.get(
                "size_bytes", outcome.result_size_bytes
            )
            outcome.result_payload = payload
            timeline["result_retrieved"] = self.env.now
        timeline["finished"] = self.env.now
        return outcome

    # ------------------------------------------------------------------ status

    def poll_status(self, job_id: str, lifetime_s: Optional[float] = None,
                    retry_policy: Optional[RetryPolicy] = None):
        """Process generator: one status exchange; returns the status payload dict."""
        name = naming.status_name(job_id)
        data = yield self.consumer.express_interest(
            name,
            lifetime=lifetime_s if lifetime_s is not None else self.lifetime_s,
            must_be_fresh=True, retries=self.retries,
            retry_policy=retry_policy if retry_policy is not None else self.retry_policy,
        )
        return json.loads(data.content_text())

    def wait_for_completion(self, job_id: str, poll_interval_s: Optional[float] = None,
                            max_polls: int = 100_000, _handle: Optional[JobHandle] = None):
        """Process generator: track a job until it is terminal; returns the final payload.

        Status Interests are re-expressed with exponential backoff: the first
        follow-up goes out after :attr:`initial_poll_s`, and the interval
        doubles (``poll_backoff``) up to ``poll_interval_s`` (defaulting to
        the client-wide cap).  Short jobs are detected quickly without the
        client hammering the gateway for long ones.
        """
        cap = poll_interval_s if poll_interval_s is not None else self.poll_interval_s
        interval = min(self.initial_poll_s, cap)
        polls = 0
        while True:
            # Long-lived status Interests: the lifetime grows with the backoff
            # interval so a slow gateway has the whole window to answer before
            # the exchange counts as a timeout.
            payload = yield from self.poll_status(
                job_id, lifetime_s=max(self.lifetime_s, interval),
                retry_policy=_handle.retry_policy if _handle is not None else None)
            polls += 1
            state = JobState(payload.get("state", JobState.FAILED.value))
            if _handle is not None:
                _handle._state = state
                _handle._status_payload = payload
                _handle.status_polls = polls
            if state.is_terminal():
                payload["_polls"] = polls
                return payload
            if polls >= max_polls:
                raise LIDCError(f"job {job_id} still not terminal after {polls} polls")
            yield self.env.timeout(interval)
            interval = min(interval * self.poll_backoff, cap)

    # ------------------------------------------------------------------ results

    def retrieve_result(self, result_name: "Name | str", fetch_payload: bool = True):
        """Process generator: fetch a result's manifest (and payload when materialised).

        Returns ``(manifest_dict, payload_bytes_or_None)``.
        """
        result_name = Name(result_name)
        manifest_data = yield self.consumer.express_interest(
            result_name, lifetime=self.lifetime_s, retries=self.retries,
            retry_policy=self.retry_policy,
        )
        manifest = json.loads(manifest_data.content_text())
        payload: Optional[bytes] = None
        if fetch_payload and manifest.get("has_payload"):
            payload = yield from self.consumer.fetch_segments(
                result_name, lifetime=self.lifetime_s, retries=self.retries
            )
        return manifest, payload

    def retrieve_dataset(self, dataset_id: str, fetch_payload: bool = True):
        """Process generator: retrieve a dataset from the data lake by id."""
        return (yield from self.retrieve_result(naming.data_name(dataset_id), fetch_payload))

    # ------------------------------------------------------------------ end-to-end workflow

    def run_workflow(
        self,
        request: ComputeRequest,
        poll_interval_s: Optional[float] = None,
        fetch_result: bool = True,
        unique: bool = True,
    ):
        """Process generator implementing the full Fig. 5 protocol.

        A thin wrapper over :meth:`submit`: opens a job session and waits on
        its handle.  Returns a :class:`JobOutcome` with a per-step timeline.
        """
        handle = self.submit(
            request, unique=unique, fetch_result=fetch_result,
            poll_interval_s=poll_interval_s,
        )
        return (yield from handle.wait())
