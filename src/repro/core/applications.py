"""Application runners: how each named application actually computes.

An :class:`ApplicationRunner` builds the Kubernetes pod workload for one
accepted request.  Dispatch from the ``app=`` parameter to a runner is owned
by the declarative service plane (:mod:`repro.core.service`): each runner is
carried by a :class:`~repro.core.service.ServiceDefinition` together with its
parameter schema, validator and cache policy, and the gateway looks it up in
the :class:`~repro.core.service.ServiceRegistry`.  The
:class:`ApplicationRegistry` below remains as the legacy runner-only table
(standalone uses and ``ServiceRegistry.from_legacy``).

Three applications ship with the reproduction:

* ``BLAST`` — the paper's Magic-BLAST workload.  Paper-scale samples (sized
  placeholders in the data lake) use the calibrated
  :class:`~repro.genomics.runtime_model.BlastRuntimeModel`; small synthetic
  samples with real payloads run the genuine
  :class:`~repro.genomics.blast.MagicBlast` aligner.
* ``COMPRESS`` — the file-compression tool the paper mentions as a second
  application with different validation needs.
* ``SLEEP`` — a trivial fixed-duration application used by benchmarks.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.cluster.pod import Container, PodSpec, ResourceRequirements, WorkloadResult
from repro.core.spec import ComputeRequest
from repro.datalake.repo import DataLake
from repro.exceptions import UnknownApplication
from repro.genomics.blast import MagicBlast
from repro.genomics.reference import ReferenceDatabase
from repro.genomics.runtime_model import BlastRuntimeModel
from repro.genomics.sequences import FastaRecord, FastqRecord
from repro.genomics.sra import SraRegistry

__all__ = [
    "ApplicationRunner",
    "BlastApplication",
    "CompressApplication",
    "SleepApplication",
    "ApplicationRegistry",
]

#: Nominal compression throughput (bytes/second) for the COMPRESS application.
COMPRESS_THROUGHPUT_BPS = 150e6
#: Nominal startup overhead added to every application container.
CONTAINER_STARTUP_S = 2.0


class ApplicationRunner(Protocol):
    """Builds the pod template that executes one request."""

    def build_pod_spec(self, request: ComputeRequest, datalake: Optional[DataLake]) -> PodSpec:
        ...  # pragma: no cover - protocol


def _parse_fasta(text: str) -> list[FastaRecord]:
    records: list[FastaRecord] = []
    identifier, description, chunks = None, "", []
    for line in text.splitlines():
        if line.startswith(">"):
            if identifier is not None:
                records.append(FastaRecord(identifier, "".join(chunks), description))
            header = line[1:].split(None, 1)
            identifier = header[0]
            description = header[1] if len(header) > 1 else ""
            chunks = []
        elif line.strip():
            chunks.append(line.strip())
    if identifier is not None:
        records.append(FastaRecord(identifier, "".join(chunks), description))
    return records


def _parse_fastq(text: str) -> list[FastqRecord]:
    lines = [line for line in text.splitlines() if line]
    records = []
    for offset in range(0, len(lines) - 3, 4):
        records.append(
            FastqRecord(
                identifier=lines[offset].lstrip("@"),
                sequence=lines[offset + 1],
                qualities=lines[offset + 3],
            )
        )
    return records


@dataclass
class BlastApplication:
    """The Magic-BLAST application runner."""

    model: BlastRuntimeModel
    registry: SraRegistry
    #: Simulated duration charged per read when the real aligner runs.
    per_read_cost_s: float = 0.002

    def build_pod_spec(self, request: ComputeRequest, datalake: Optional[DataLake]) -> PodSpec:
        def workload(pod) -> WorkloadResult:
            return self._execute(request, datalake)

        container = Container(
            name="magic-blast",
            image="ncbi/magicblast:1.7",
            resources=ResourceRequirements.of(
                cpu=request.cpu, memory=f"{request.memory_gb:g}Gi"
            ),
            command=["magicblast", "-sra", request.dataset or "", "-db", request.reference or ""],
            workload=workload,
            startup_delay_s=CONTAINER_STARTUP_S,
        )
        return PodSpec(containers=[container])

    # -- execution ---------------------------------------------------------------------

    def _execute(self, request: ComputeRequest, datalake: Optional[DataLake]) -> WorkloadResult:
        dataset_id = request.dataset or ""
        record = datalake.catalog.try_get(dataset_id) if datalake is not None else None
        if record is not None and record.has_payload:
            return self._run_real_aligner(request, datalake)
        return self._run_modelled(request)

    def _run_modelled(self, request: ComputeRequest) -> WorkloadResult:
        estimate = self.model.estimate(
            request.dataset or "", reference=request.reference or "HUMAN",
            cpu=request.cpu, memory_gb=request.memory_gb,
        )
        return WorkloadResult(
            duration_s=estimate.runtime_s,
            output={
                "result_size_bytes": estimate.output_size_bytes,
                "aligner": "modelled",
                "srr_id": estimate.srr_id,
                "reference": estimate.reference,
            },
        )

    def _run_real_aligner(self, request: ComputeRequest, datalake: DataLake) -> WorkloadResult:
        reference_id = (request.reference or "synthetic-reference").lower()
        # Accept either a dataset id present in the lake or the conventional
        # synthetic reference name.
        candidates = [request.reference or "", reference_id, "synthetic-reference"]
        reference_record = None
        for candidate in candidates:
            if candidate and datalake.has_dataset(candidate):
                reference_record = datalake.get_record(candidate)
                break
        if reference_record is None or not reference_record.has_payload:
            return WorkloadResult(
                duration_s=0.0, error=f"reference {request.reference!r} not materialised in the lake"
            )
        contigs = _parse_fasta(datalake.read_bytes(reference_record.dataset_id).decode("utf-8"))
        reference = ReferenceDatabase.from_contigs(reference_record.dataset_id, contigs)
        reads = _parse_fastq(datalake.read_bytes(request.dataset or "").decode("utf-8"))
        aligner = MagicBlast(reference)
        result = aligner.run(reads)
        duration = CONTAINER_STARTUP_S + self.per_read_cost_s * max(1, result.total_reads) / max(
            1.0, request.cpu
        )
        return WorkloadResult(
            duration_s=duration,
            output={
                "result_size_bytes": result.output_size_bytes,
                "result_payload": result.output,
                "aligner": "seed-and-extend",
                "aligned_reads": result.aligned_reads,
                "total_reads": result.total_reads,
                "alignment_rate": result.alignment_rate,
            },
        )


@dataclass
class CompressApplication:
    """A file-compression application (zlib over materialised datasets)."""

    throughput_bps: float = COMPRESS_THROUGHPUT_BPS

    def build_pod_spec(self, request: ComputeRequest, datalake: Optional[DataLake]) -> PodSpec:
        def workload(pod) -> WorkloadResult:
            return self._execute(request, datalake)

        container = Container(
            name="compress",
            image="alpine:gzip",
            resources=ResourceRequirements.of(
                cpu=request.cpu, memory=f"{request.memory_gb:g}Gi"
            ),
            workload=workload,
            startup_delay_s=CONTAINER_STARTUP_S,
        )
        return PodSpec(containers=[container])

    def _execute(self, request: ComputeRequest, datalake: Optional[DataLake]) -> WorkloadResult:
        dataset_id = request.dataset or ""
        if datalake is None or not datalake.has_dataset(dataset_id):
            return WorkloadResult(duration_s=0.0, error=f"dataset {dataset_id!r} not found")
        record = datalake.get_record(dataset_id)
        level = int(request.params.get("level", "6"))
        duration = record.size_bytes / self.throughput_bps * (0.6 + 0.1 * level)
        if record.has_payload:
            compressed = zlib.compress(datalake.read_bytes(dataset_id), level=level)
            return WorkloadResult(
                duration_s=max(duration, 0.001),
                output={
                    "result_size_bytes": len(compressed),
                    "result_payload": compressed,
                    "compression_ratio": len(compressed) / max(1, record.size_bytes),
                },
            )
        # Placeholder datasets: model a 3.2x compression ratio for FASTQ-like text.
        return WorkloadResult(
            duration_s=duration,
            output={"result_size_bytes": int(record.size_bytes / 3.2), "compression_ratio": 1 / 3.2},
        )


@dataclass
class SleepApplication:
    """Fixed-duration no-op application (benchmarks and overlay tests)."""

    default_duration_s: float = 10.0

    def build_pod_spec(self, request: ComputeRequest, datalake: Optional[DataLake]) -> PodSpec:
        duration = float(request.params.get("duration", self.default_duration_s))

        container = Container(
            name="sleep",
            image="busybox:latest",
            resources=ResourceRequirements.of(
                cpu=request.cpu, memory=f"{request.memory_gb:g}Gi"
            ),
            workload=lambda pod: WorkloadResult(
                duration_s=duration, output={"result_size_bytes": 1024}
            ),
            startup_delay_s=0.5,
        )
        return PodSpec(containers=[container])


class ApplicationRegistry:
    """Maps application names to runners (legacy runner-only table).

    New code should register a :class:`~repro.core.service.ServiceDefinition`
    with a :class:`~repro.core.service.ServiceRegistry` instead, which bundles
    the runner with its schema, validator and cache policy in one object.
    """

    def __init__(self) -> None:
        self._runners: dict[str, ApplicationRunner] = {}

    def register(self, app: str, runner: ApplicationRunner) -> None:
        self._runners[app.upper()] = runner

    def unregister(self, app: str) -> None:
        self._runners.pop(app.upper(), None)

    def runner_for(self, app: str) -> ApplicationRunner:
        try:
            return self._runners[app.upper()]
        except KeyError:
            raise UnknownApplication(f"no application registered for {app!r}") from None

    def has_app(self, app: str) -> bool:
        return app.upper() in self._runners

    def applications(self) -> list[str]:
        return sorted(self._runners)

    @classmethod
    def with_defaults(
        cls,
        registry: Optional[SraRegistry] = None,
        model: Optional[BlastRuntimeModel] = None,
    ) -> "ApplicationRegistry":
        """The default LIDC application set: BLAST, COMPRESS and SLEEP."""
        registry = registry or SraRegistry()
        model = model or BlastRuntimeModel(registry=registry)
        apps = cls()
        blast = BlastApplication(model=model, registry=registry)
        apps.register("BLAST", blast)
        apps.register("MAGICBLAST", blast)
        apps.register("COMPRESS", CompressApplication())
        apps.register("SLEEP", SleepApplication())
        return apps
