"""Result caching keyed by canonical request names (paper §VII future work).

"Implementing result caching in the framework would be beneficial, primarily
when multiple clients issue identical requests.  This can be achieved by
uniquely identifying names and using various storage solutions ... to store
the mapping information."

The cache maps a request's canonical key (application + datasets + parameters,
excluding the granted resources) to the name and size of the previously
published result.  On a hit the gateway answers immediately and records a
zero-runtime completed job instead of spawning a Kubernetes Job.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.spec import ComputeRequest
from repro.ndn.name import Name

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """A previously computed result."""

    cache_key: str
    result_name: Name
    result_size_bytes: int
    produced_by_job: str
    stored_at: float


class ResultCache:
    """An LRU map from canonical request keys to published results."""

    def __init__(self, capacity: int = 1024, ttl_s: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.capacity = max(0, capacity)
        self.ttl_s = ttl_s
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- lookup -------------------------------------------------------------------

    def lookup(self, request: "ComputeRequest | str") -> Optional[CachedResult]:
        """Return the cached result for a request, honouring the TTL."""
        key = request if isinstance(request, str) else request.cache_key()
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self.ttl_s is not None and self._clock() - entry.stored_at > self.ttl_s:
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    # -- insertion -------------------------------------------------------------------

    def store(self, request: "ComputeRequest | str", result_name: Name,
              result_size_bytes: int, produced_by_job: str) -> Optional[CachedResult]:
        """Record a freshly produced result (no-op when capacity is zero)."""
        if self.capacity == 0:
            return None
        key = request if isinstance(request, str) else request.cache_key()
        entry = CachedResult(
            cache_key=key,
            result_name=result_name,
            result_size_bytes=result_size_bytes,
            produced_by_job=produced_by_job,
            stored_at=self._clock(),
        )
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        self.insertions += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def invalidate(self, request: "ComputeRequest | str") -> bool:
        key = request if isinstance(request, str) else request.cache_key()
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    # -- reporting --------------------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "size": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_ratio": self.hit_ratio,
            "insertions": float(self.insertions),
            "evictions": float(self.evictions),
        }
