"""The LIDC gateway (paper §III-C, §IV, Figs. 2–5).

The gateway is the decision-maker that sits behind the cluster's externally
exposed NFD: it parses incoming compute Interests, runs the application-
specific validators, spawns a Kubernetes Job with the requested resources,
answers status polls, and publishes results back into the data lake.

Admission outcomes:

* *accepted* — a Data packet acknowledging the job (job id + status name);
* *rejected (validation)* — a Data packet with the error, since retrying at a
  different cluster would fail identically;
* *rejected (capacity)* — a ``Congestion`` NACK, so the NDN forwarding plane
  retries the request at another cluster announcing ``/ndn/k8s/compute``
  (this is what makes the overlay adapt to load without a central
  controller).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.pod import PodPhase
from repro.cluster.quantity import Quantity, parse_memory
from repro.core import naming
from repro.core.applications import ApplicationRegistry
from repro.core.caching import ResultCache
from repro.core.jobs import JobTracker
from repro.core.predictor import CompletionTimePredictor
from repro.core.service import ServiceDefinition, ServiceRegistry
from repro.core.spec import ComputeRequest, JobRecord, JobState
from repro.core.validation import ValidatorRegistry
from repro.datalake.repo import DataLake
from repro.exceptions import InvalidComputeName, UnknownApplication
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.ndn.packet import Data, InterestLike, Nack, NackReason, WirePacket
from repro.sim.engine import Environment
from repro.sim.metrics import MetricsRegistry
from repro.sim.trace import Tracer

__all__ = ["Gateway"]


class Gateway:
    """The per-cluster LIDC gateway application."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        forwarder: Forwarder,
        datalake: DataLake,
        applications: Optional[ApplicationRegistry] = None,
        validators: Optional[ValidatorRegistry] = None,
        services: Optional[ServiceRegistry] = None,
        enable_result_cache: bool = False,
        cache: Optional[ResultCache] = None,
        predictor: Optional[CompletionTimePredictor] = None,
        reject_when_busy: bool = True,
        ack_freshness_s: float = 1.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.forwarder = forwarder
        self.datalake = datalake
        # The gateway dispatches from a single ServiceRegistry.  Legacy
        # ApplicationRegistry/ValidatorRegistry arguments are wrapped so older
        # call sites keep working; ``gateway.applications`` and
        # ``gateway.validators`` stay available as live views over it.
        if services is None:
            if applications is not None or validators is not None:
                services = ServiceRegistry.from_legacy(applications, validators)
            else:
                services = ServiceRegistry.with_defaults()
        self.services = services
        self.enable_result_cache = enable_result_cache
        self.cache = cache or ResultCache(clock=lambda: env.now)
        self.predictor = predictor
        self.reject_when_busy = reject_when_busy
        self.ack_freshness_s = ack_freshness_s
        self.tracker = JobTracker(cluster.name, clock=lambda: env.now)
        self.tracer = tracer or Tracer(clock=lambda: env.now)
        self.metrics = MetricsRegistry(clock=lambda: env.now)
        #: job id → (JobRecord, kubernetes Job) for active jobs.
        self._k8s_jobs: dict[str, Job] = {}

        self.compute_face = forwarder.attach_producer(naming.COMPUTE_PREFIX, self._on_compute)
        self.status_face = forwarder.attach_producer(naming.STATUS_PREFIX, self._on_status)

    # ------------------------------------------------------------------ service plane

    @property
    def applications(self):
        """Legacy ``ApplicationRegistry``-shaped view over the service registry."""
        return self.services.apps

    @property
    def validators(self):
        """Legacy ``ValidatorRegistry``-shaped view over the service registry."""
        return self.services.checks

    def register_service(self, definition: ServiceDefinition) -> ServiceDefinition:
        """Add a new application with one declarative definition (no other edits)."""
        return self.services.register(definition)

    # ------------------------------------------------------------------ compute

    def _on_compute(self, interest: InterestLike) -> "Data | Nack | WirePacket":
        self.metrics.counter("compute_interests").inc()
        self.tracer.record("gateway", "compute-received", name=str(interest.name))
        try:
            request = ComputeRequest.from_name(interest.name)
        except InvalidComputeName as exc:
            self.metrics.counter("compute_malformed").inc()
            return self._error_data(interest.name, f"malformed compute name: {exc}")

        validation = self.services.validate(request, self.datalake)
        if not validation.ok:
            self.metrics.counter("compute_rejected_validation").inc()
            self.tracer.record("gateway", "validation-rejected", name=str(interest.name),
                               reason=validation.message)
            return self._error_data(interest.name, validation.message)

        if not self.services.has_app(request.app):
            self.metrics.counter("compute_rejected_unknown_app").inc()
            return self._error_data(interest.name, f"unknown application {request.app!r}")

        if self.enable_result_cache and self.services.cacheable(request.app):
            cached = self.cache.lookup(request)
            if cached is not None:
                record = self.tracker.new_job(request)
                self.tracker.mark_completed(
                    record.job_id,
                    result_name=cached.result_name,
                    result_size_bytes=cached.result_size_bytes,
                    from_cache=True,
                )
                self.metrics.counter("cache_hits").inc()
                self.tracer.record("gateway", "cache-hit", name=str(interest.name),
                                   job_id=record.job_id)
                return self._ack_data(interest.name, record, cached_result=str(cached.result_name))

        requests = Quantity(cpu=request.cpu, memory=parse_memory(f"{request.memory_gb:g}Gi"))
        if self.reject_when_busy and not self.cluster.can_fit(requests):
            self.metrics.counter("compute_rejected_capacity").inc()
            self.tracer.record("gateway", "capacity-rejected", name=str(interest.name))
            return interest.nack(NackReason.CONGESTION)

        record = self._admit(request)
        return self._ack_data(interest.name, record)

    def submit_local(self, request: ComputeRequest, validate: bool = True) -> JobRecord:
        """Admit a request directly, bypassing the NDN control plane.

        Used by the centralized-controller baseline (which talks to cluster
        gateways over a management API rather than named Interests) and by
        tests that exercise the job path in isolation.
        """
        if validate:
            result = self.services.validate(request, self.datalake)
            result.raise_if_failed()
        return self._admit(request)

    def _admit(self, request: ComputeRequest) -> JobRecord:
        """Create the job record, the Kubernetes Job, and the completion watcher."""
        record = self.tracker.new_job(request)
        try:
            runner = self.services.runner_for(request.app)
        except UnknownApplication as exc:  # defensive; has_app was checked
            self.tracker.mark_failed(record.job_id, str(exc))
            return record
        pod_spec = runner.build_pod_spec(request, self.datalake)
        k8s_job = self.cluster.create_job(
            pod_spec,
            name=f"{record.job_id}-k8s",
            labels={"lidc-job-id": record.job_id, "app": request.app.lower()},
        )
        record.k8s_job_name = k8s_job.name
        self._k8s_jobs[record.job_id] = k8s_job
        self.metrics.counter("jobs_admitted").inc()
        self.tracer.record("gateway", "job-created", job_id=record.job_id,
                           k8s_job=k8s_job.name, app=request.app)
        self.env.process(self._watch_job(record, k8s_job), name=f"watch:{record.job_id}")
        return record

    def _watch_job(self, record: JobRecord, k8s_job: Job):
        """Wait for the Kubernetes Job to finish, then publish and finalise."""
        assert k8s_job.completion is not None
        yield k8s_job.completion
        self._k8s_jobs.pop(record.job_id, None)
        pods = self.cluster.jobs.pods_for(k8s_job)
        finished = [pod for pod in pods if pod.is_terminal]
        if k8s_job.is_complete and finished:
            pod = max(finished, key=lambda p: p.finish_time or 0.0)
            if pod.start_time is not None:
                record.started_at = pod.start_time
                record.state = JobState.RUNNING
            output = pod.output()
            result_name, result_size = self._publish_result(record, output)
            self.tracker.mark_completed(
                record.job_id, result_name=result_name, result_size_bytes=result_size
            )
            self.metrics.counter("jobs_completed").inc()
            self.tracer.record("gateway", "job-completed", job_id=record.job_id,
                               runtime=record.runtime())
            if (self.enable_result_cache and result_name is not None
                    and self.services.cacheable(record.request.app)):
                self.cache.store(record.request, result_name, result_size or 0, record.job_id)
            if self.predictor is not None and record.runtime() is not None:
                dataset_size = self._dataset_size(record.request)
                self.predictor.observe(record.request, record.runtime(), dataset_size)
        else:
            message = k8s_job.status.message or "kubernetes job failed"
            if finished:
                failed_pod = finished[-1]
                if failed_pod.message:
                    message = failed_pod.message
            self.tracker.mark_failed(record.job_id, message)
            self.metrics.counter("jobs_failed").inc()
            self.tracer.record("gateway", "job-failed", job_id=record.job_id, error=message)

    def _publish_result(self, record: JobRecord, output: dict) -> tuple[Optional[Name], Optional[int]]:
        """Store the job's output in the data lake under a result name."""
        result_id = f"{record.job_id}-output"
        size = output.get("result_size_bytes")
        payload = output.get("result_payload")
        if payload is None and size is None:
            return None, None
        dataset_record = self.datalake.publish_result(
            result_id,
            payload=payload,
            size_bytes=int(size) if size is not None else None,
            source_job=record.job_id,
            metadata={"app": record.request.app},
        )
        self.tracer.record("gateway", "result-published", job_id=record.job_id,
                           result=str(dataset_record.content_name),
                           size=dataset_record.size_bytes)
        return dataset_record.content_name, dataset_record.size_bytes

    def _dataset_size(self, request: ComputeRequest) -> float:
        if request.dataset and self.datalake.has_dataset(request.dataset):
            return float(self.datalake.size_of(request.dataset))
        return 0.0

    # ------------------------------------------------------------------ status

    def _on_status(self, interest: InterestLike) -> "Data | Nack | WirePacket":
        self.metrics.counter("status_interests").inc()
        try:
            job_id = naming.parse_status_name(interest.name)
        except InvalidComputeName as exc:
            return self._error_data(interest.name, f"malformed status name: {exc}")
        record = self.tracker.try_get(job_id)
        if record is None:
            # NACK rather than answering with an error: in a multi-cluster overlay
            # the job may live on another cluster, and the NACK lets the
            # forwarding plane retry the poll there.
            self.metrics.counter("status_unknown_job").inc()
            return interest.nack(NackReason.NO_ROUTE)
        self._refresh_state(record)
        payload = record.status_payload()
        self.tracer.record("gateway", "status-served", job_id=job_id, state=record.state.value)
        return Data(
            name=interest.name,
            content=json.dumps(payload, sort_keys=True).encode("utf-8"),
            freshness_period=self.ack_freshness_s,
        ).sign()

    def _refresh_state(self, record: JobRecord) -> None:
        """Promote Pending → Running by looking at the underlying pods."""
        if record.is_terminal:
            return
        k8s_job = self._k8s_jobs.get(record.job_id)
        if k8s_job is None:
            return
        pods = self.cluster.jobs.pods_for(k8s_job)
        if any(pod.phase == PodPhase.RUNNING for pod in pods):
            self.tracker.mark_running(record.job_id)

    # ------------------------------------------------------------------ replies

    def _ack_data(self, name: Name, record: JobRecord, cached_result: Optional[str] = None) -> Data:
        payload = {
            "accepted": True,
            "job_id": record.job_id,
            "status_name": str(naming.status_name(record.job_id)),
            "cluster": record.cluster,
        }
        if cached_result is not None:
            payload["cached"] = True
            payload["result_name"] = cached_result
        return Data(
            name=name,
            content=json.dumps(payload, sort_keys=True).encode("utf-8"),
            freshness_period=self.ack_freshness_s,
        ).sign()

    def _error_data(self, name: Name, message: str) -> Data:
        payload = {"accepted": False, "error": message}
        return Data(
            name=name,
            content=json.dumps(payload, sort_keys=True).encode("utf-8"),
            freshness_period=self.ack_freshness_s,
        ).sign()

    # ------------------------------------------------------------------ reporting

    def active_job_count(self) -> int:
        return len(self.tracker.active())

    def stats(self) -> dict[str, object]:
        return {
            "cluster": self.cluster.name,
            "jobs": self.tracker.stats(),
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
            "services": self.services.applications(),
        }
