"""Gateway-side job tracking.

The gateway assigns a job id to every accepted compute Interest, keeps a
:class:`~repro.core.spec.JobRecord` per job, and answers
``/ndn/k8s/status/<job-id>`` requests from this tracker (paper §IV-A).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.core.spec import ComputeRequest, JobRecord, JobState
from repro.exceptions import JobNotFound
from repro.ndn.name import Name

__all__ = ["JobTracker"]


class JobTracker:
    """Creates job ids and tracks job records for one gateway."""

    def __init__(self, cluster_name: str, clock: Optional[Callable[[], float]] = None) -> None:
        self.cluster_name = cluster_name
        self._clock = clock or (lambda: 0.0)
        self._records: dict[str, JobRecord] = {}
        self._counter = itertools.count(1)

    # -- creation -----------------------------------------------------------------

    def new_job(self, request: ComputeRequest) -> JobRecord:
        """Create a Pending record with a fresh job id."""
        job_id = f"{self.cluster_name}-job-{next(self._counter)}"
        record = JobRecord(
            job_id=job_id,
            request=request,
            cluster=self.cluster_name,
            state=JobState.PENDING,
            submitted_at=self._clock(),
        )
        self._records[job_id] = record
        return record

    # -- state transitions ------------------------------------------------------------

    def mark_running(self, job_id: str) -> JobRecord:
        record = self.get(job_id)
        if record.state == JobState.PENDING:
            record.state = JobState.RUNNING
            record.started_at = self._clock()
        return record

    def mark_completed(self, job_id: str, result_name: "Name | None" = None,
                       result_size_bytes: Optional[int] = None,
                       from_cache: bool = False) -> JobRecord:
        record = self.get(job_id)
        if record.started_at is None:
            record.started_at = record.submitted_at
        record.state = JobState.COMPLETED
        record.finished_at = self._clock()
        record.result_name = result_name
        record.result_size_bytes = result_size_bytes
        record.from_cache = from_cache
        return record

    def mark_failed(self, job_id: str, error: str) -> JobRecord:
        record = self.get(job_id)
        if record.started_at is None:
            record.started_at = record.submitted_at
        record.state = JobState.FAILED
        record.finished_at = self._clock()
        record.error = error
        return record

    # -- queries -------------------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise JobNotFound(f"unknown job id {job_id!r}") from None

    def try_get(self, job_id: str) -> Optional[JobRecord]:
        return self._records.get(job_id)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self, state: Optional[JobState] = None) -> list[JobRecord]:
        records = sorted(self._records.values(), key=lambda rec: rec.submitted_at)
        if state is not None:
            records = [rec for rec in records if rec.state == state]
        return records

    def active(self) -> list[JobRecord]:
        """Jobs that have not reached a terminal state."""
        return [rec for rec in self._records.values() if not rec.is_terminal]

    def completed(self) -> list[JobRecord]:
        return self.records(JobState.COMPLETED)

    def stats(self) -> dict[str, float]:
        records = list(self._records.values())
        completed = [rec for rec in records if rec.state == JobState.COMPLETED]
        turnarounds = [rec.turnaround() for rec in completed if rec.turnaround() is not None]
        return {
            "total": float(len(records)),
            "pending": float(sum(1 for r in records if r.state == JobState.PENDING)),
            "running": float(sum(1 for r in records if r.state == JobState.RUNNING)),
            "completed": float(len(completed)),
            "failed": float(sum(1 for r in records if r.state == JobState.FAILED)),
            "cache_hits": float(sum(1 for r in completed if r.from_cache)),
            "mean_turnaround_s": float(sum(turnarounds) / len(turnarounds)) if turnarounds else 0.0,
        }
