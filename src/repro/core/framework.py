"""The LIDC testbed builder: one call from nothing to a running deployment.

:class:`LIDCTestbed` assembles the pieces (simulation environment, overlay,
clusters, access routers, SRA registry, runtime model) into the deployments
the paper describes:

* :meth:`LIDCTestbed.single_cluster` — the paper's default setup (§III-C:
  "By default, the LIDC is setup with a single Kubernetes node.  This node is
  the gateway to the cluster"), plus a client edge router;
* :meth:`LIDCTestbed.multi_cluster` — N clusters joined through a client edge
  router (star) or a chain, for the multi-cluster experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.cluster import ClusterSpec
from repro.core.client import JobHandle, JobOutcome, LIDCClient
from repro.core.cluster_endpoint import LIDCCluster
from repro.core.overlay import ComputeOverlay
from repro.core.service import ServiceDefinition
from repro.core.spec import ComputeRequest
from repro.core.workflow import GenomicsWorkflow, WorkflowReport
from repro.exceptions import LIDCError
from repro.genomics.runtime_model import BlastRuntimeModel
from repro.genomics.sra import SraRegistry
from repro.sim.engine import Environment
from repro.sim.rng import SeededRNG
from repro.sim.trace import Tracer

__all__ = ["TestbedConfig", "LIDCTestbed"]

#: Default client access-router name.
CLIENT_EDGE = "client-edge"


@dataclass
class TestbedConfig:
    """Knobs shared by every testbed topology."""

    seed: int = 0
    node_count: int = 1
    node_cpu: float = 8
    node_memory: str = "32Gi"
    enable_result_cache: bool = False
    reject_when_busy: bool = True
    load_paper_datasets: bool = True
    load_synthetic_datasets: bool = False
    wan_latency_s: float = 0.02
    wan_bandwidth_bps: float = 1e9
    runtime_noise_fraction: float = 0.0
    regions: Sequence[str] = field(default_factory=lambda: (
        "us-central1", "us-east1", "europe-west1", "asia-east1",
        "us-west1", "europe-north1", "asia-south1", "australia-southeast1",
    ))


class LIDCTestbed:
    """A fully wired LIDC deployment inside one simulation environment."""

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config or TestbedConfig()
        self.env = Environment()
        self.rng = SeededRNG(self.config.seed)
        self.tracer = Tracer(clock=lambda: self.env.now)
        self.registry = SraRegistry()
        self.runtime_model = BlastRuntimeModel(
            registry=self.registry, rng=self.rng,
            noise_fraction=self.config.runtime_noise_fraction,
        )
        self.overlay = ComputeOverlay(self.env, tracer=self.tracer)
        self.overlay.add_access_router(CLIENT_EDGE)
        self._cluster_counter = 0
        #: Extra services registered testbed-wide; applied to every cluster,
        #: including ones added after the registration.
        self._extra_services: list[ServiceDefinition] = []

    # ------------------------------------------------------------------ construction

    @classmethod
    def single_cluster(cls, seed: int = 0, **config_kwargs) -> "LIDCTestbed":
        """One cluster behind one client edge router (the paper's default)."""
        testbed = cls(TestbedConfig(seed=seed, **config_kwargs))
        testbed.add_cluster()
        return testbed

    @classmethod
    def multi_cluster(cls, cluster_count: int, seed: int = 0, topology: str = "star",
                      latencies_s: Optional[Sequence[float]] = None,
                      **config_kwargs) -> "LIDCTestbed":
        """``cluster_count`` clusters in a star (around the client edge) or chain."""
        if cluster_count < 1:
            raise LIDCError("multi_cluster needs at least one cluster")
        testbed = cls(TestbedConfig(seed=seed, **config_kwargs))
        previous = CLIENT_EDGE
        for index in range(cluster_count):
            latency = None
            if latencies_s is not None and index < len(latencies_s):
                latency = latencies_s[index]
            if topology == "star":
                testbed.add_cluster(connect_to=CLIENT_EDGE, latency_s=latency)
            elif topology == "chain":
                testbed.add_cluster(connect_to=previous, latency_s=latency)
                previous = f"cluster-{chr(ord('a') + index)}"
            else:
                raise LIDCError(f"unknown testbed topology {topology!r}")
        return testbed

    def add_cluster(
        self,
        name: Optional[str] = None,
        connect_to: Optional[str] = CLIENT_EDGE,
        latency_s: Optional[float] = None,
        node_count: Optional[int] = None,
        node_cpu: Optional[float] = None,
        node_memory: Optional[str] = None,
        region: Optional[str] = None,
    ) -> LIDCCluster:
        """Create a new LIDC cluster and attach it to the overlay."""
        config = self.config
        index = self._cluster_counter
        self._cluster_counter += 1
        name = name or f"cluster-{chr(ord('a') + index % 26)}{index // 26 or ''}"
        spec = ClusterSpec(
            name=name,
            region=region or config.regions[index % len(config.regions)],
            node_count=node_count if node_count is not None else config.node_count,
            node_cpu=node_cpu if node_cpu is not None else config.node_cpu,
            node_memory=node_memory if node_memory is not None else config.node_memory,
        )
        cluster = LIDCCluster(
            self.env,
            spec,
            registry=self.registry,
            runtime_model=self.runtime_model,
            enable_result_cache=config.enable_result_cache,
            reject_when_busy=config.reject_when_busy,
            load_paper_datasets=config.load_paper_datasets,
            load_synthetic_datasets=config.load_synthetic_datasets,
            seed=config.seed + index,
            tracer=self.tracer,
        )
        for definition in self._extra_services:
            cluster.register_service(definition.clone())
        connections = []
        if connect_to is not None:
            connections = [(connect_to, latency_s if latency_s is not None else config.wan_latency_s)]
        self.overlay.add_cluster(
            cluster, connect_to=connections, bandwidth_bps=config.wan_bandwidth_bps
        )
        return cluster

    # ------------------------------------------------------------------ service plane

    def register_service(self, definition: ServiceDefinition) -> ServiceDefinition:
        """Install a new application on every cluster of the testbed.

        One declarative :class:`~repro.core.service.ServiceDefinition` —
        schema, validator, runner, cache policy — makes the application
        submittable end-to-end without touching gateway, validation or
        application dispatch code.  Clusters added later inherit it too.
        Every cluster receives its own copy, so per-site validator binding
        and later registry mutations cannot alias across sites.
        """
        self._extra_services.append(definition)
        for cluster in self.clusters.values():
            cluster.register_service(definition.clone())
        return definition

    # ------------------------------------------------------------------ accessors

    @property
    def clusters(self) -> dict[str, LIDCCluster]:
        return self.overlay.clusters

    def cluster(self, name: str) -> LIDCCluster:
        try:
            return self.overlay.clusters[name]
        except KeyError:
            raise LIDCError(f"no cluster {name!r} in the testbed") from None

    def client(self, access_router: str = CLIENT_EDGE, **kwargs) -> LIDCClient:
        return self.overlay.client(access_router, **kwargs)

    def workflow(self, client: Optional[LIDCClient] = None, **kwargs) -> GenomicsWorkflow:
        return GenomicsWorkflow(client or self.client(), **kwargs)

    # ------------------------------------------------------------------ execution helpers

    def run(self, until=None):
        """Advance the simulation (see :meth:`repro.sim.engine.Environment.run`)."""
        return self.env.run(until=until)

    def run_process(self, generator, name: str = ""):
        return self.env.run_process(generator, name=name)

    def submit_and_wait(self, request: ComputeRequest, client: Optional[LIDCClient] = None,
                        poll_interval_s: Optional[float] = None,
                        fetch_result: bool = True) -> JobOutcome:
        """Synchronous convenience: open one job session and run it to completion."""
        client = client or self.client()
        handle = client.submit(
            request, fetch_result=fetch_result, poll_interval_s=poll_interval_s
        )
        return self.run(until=handle.done)

    def submit_many_and_wait(
        self,
        requests: Sequence[ComputeRequest],
        client: Optional[LIDCClient] = None,
        poll_interval_s: Optional[float] = None,
        fetch_result: bool = False,
        stagger_s: float = 0.0,
    ) -> list[JobOutcome]:
        """Synchronous convenience: drive N concurrent job sessions to completion.

        All requests go through one client (one Consumer); the handles
        complete independently and the outcomes come back in submission order.
        """
        client = client or self.client()
        handles: list[JobHandle] = client.submit_many(
            requests, fetch_result=fetch_result,
            poll_interval_s=poll_interval_s, stagger_s=stagger_s,
        )
        self.run(until=client.wait_all(handles))
        return [handle.outcome for handle in handles]

    def run_blast(self, srr_id: str, reference: str = "HUMAN", cpu: float = 2,
                  memory_gb: float = 4, client: Optional[LIDCClient] = None) -> WorkflowReport:
        """Synchronous convenience: one full BLAST workflow with step decomposition."""
        workflow = self.workflow(client)
        return self.run_process(
            workflow.blast(srr_id, reference=reference, cpu=cpu, memory_gb=memory_gb),
            name=f"blast:{srr_id}",
        )

    def stats(self) -> dict[str, object]:
        return {
            "clusters": {name: cluster.stats() for name, cluster in self.clusters.items()},
            "overlay": self.overlay.stats(),
            "now": self.env.now,
        }
