"""One LIDC-enabled cluster: the full per-site stack of Figures 3 and 4.

A :class:`LIDCCluster` bundles, for one site:

* the Kubernetes-equivalent :class:`~repro.cluster.cluster.Cluster`;
* a *gateway NFD* (an NDN forwarder exposed through a NodePort service) that
  external clients and the wide-area overlay connect to;
* a *data-lake NFD* with the PVC-backed :class:`~repro.datalake.repo.DataLake`
  and its :class:`~repro.datalake.fileserver.FileServer` behind the
  ``dl-nfd.ndnk8s.svc.cluster.local`` service name;
* the :class:`~repro.core.gateway.Gateway` application answering
  ``/ndn/k8s/compute`` and ``/ndn/k8s/status``;
* a :class:`~repro.ndn.routing.RoutingDaemon` announcing the cluster's
  prefixes into the overlay.

Prefix registrations inside the gateway NFD mirror the paper exactly:
``/ndn/k8s/data`` points at the data lake's NFD, while ``/ndn/k8s/compute``
and ``/ndn/k8s/status`` are handled by the gateway on the node itself.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.pod import Container, PodSpec
from repro.cluster.service import ServiceType
from repro.core import naming
from repro.core.gateway import Gateway
from repro.core.service import ServiceDefinition, ServiceRegistry, ServiceRuntime
from repro.datalake.fileserver import FileServer
from repro.datalake.loader import DataLoadingTool
from repro.datalake.repo import DataLake
from repro.genomics.runtime_model import BlastRuntimeModel
from repro.genomics.sra import SraRegistry
from repro.ndn.cs import CachePolicy
from repro.ndn.face import connect
from repro.ndn.forwarder import Forwarder
from repro.ndn.routing import RoutingDaemon
from repro.ndn.shard import ShardedForwarder
from repro.sim.engine import Environment
from repro.sim.topology import Link
from repro.sim.trace import Tracer

__all__ = ["LIDCCluster"]

#: Prefixes every LIDC cluster announces into the overlay.
ANNOUNCED_PREFIXES = (naming.COMPUTE_PREFIX, naming.STATUS_PREFIX, naming.DATA_PREFIX)


class LIDCCluster:
    """A complete LIDC deployment on one compute cluster."""

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        registry: Optional[SraRegistry] = None,
        runtime_model: Optional[BlastRuntimeModel] = None,
        enable_result_cache: bool = False,
        reject_when_busy: bool = True,
        cs_capacity: int = 4096,
        datalake_size: str = "500Gi",
        load_paper_datasets: bool = True,
        load_synthetic_datasets: bool = False,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        services: Optional[ServiceRegistry] = None,
        gateway_shards: int = 1,
        gateway_partitioner: str = "ring",
        gateway_shard_weights: Optional[tuple] = None,
        gateway_hot_cache: int = 128,
    ) -> None:
        self.env = env
        self.spec = spec
        self.name = spec.name
        self.registry = registry or SraRegistry()
        self.runtime_model = runtime_model or BlastRuntimeModel(registry=self.registry)
        self.tracer = tracer or Tracer(clock=lambda: env.now)

        # -- orchestrator -------------------------------------------------------
        self.cluster = Cluster(env, spec)

        # -- NDN forwarders ------------------------------------------------------
        if gateway_shards > 1:
            # A sharded gateway data plane: the /ndn/k8s namespace shares
            # its first components, so partition on the fourth (application
            # for compute, dataset for data) — deep enough to spread load,
            # shallow enough that every prefix-matched exchange stays on
            # one shard (see the repro.ndn.shard partitioning contract).
            self.gateway_nfd: "Forwarder | ShardedForwarder" = ShardedForwarder(
                env, name=f"{spec.name}-gw-nfd", shards=gateway_shards,
                key_depth=4, cs_capacity=cs_capacity, cs_policy=CachePolicy.LRU,
                tracer=self.tracer, partitioner=gateway_partitioner,
                shard_weights=gateway_shard_weights, hot_cache=gateway_hot_cache,
            )
        else:
            self.gateway_nfd = Forwarder(
                env, name=f"{spec.name}-gw-nfd", cs_capacity=cs_capacity,
                cs_policy=CachePolicy.LRU, tracer=self.tracer,
            )
        self.datalake_nfd = Forwarder(
            env, name=f"{spec.name}-dl-nfd", cs_capacity=cs_capacity,
            cache_unsolicited=True, tracer=self.tracer,
        )
        intra_link = Link(f"{spec.name}-gw", f"{spec.name}-dl",
                          latency_s=0.0005, bandwidth_bps=10e9)
        self._gw_to_dl, self._dl_to_gw = connect(
            env, self.gateway_nfd, self.datalake_nfd, link=intra_link,
            label=f"{spec.name}:gw<->dl",
        )
        # Paper §IV: the gateway NFD has a prefix registration for /ndn/k8s/data
        # pointing at the data lake's NFD.
        self.gateway_nfd.register_prefix(naming.DATA_PREFIX, self._gw_to_dl)

        # -- data lake --------------------------------------------------------------
        self.loader = DataLoadingTool(self.cluster, registry=self.registry, seed=seed)
        self.datalake = self.loader.create_datalake(
            pvc_name="datalake-pvc", size=datalake_size, lake_name=f"{spec.name}-datalake"
        )
        if load_paper_datasets:
            self.loader.load_paper_datasets(self.datalake)
        if load_synthetic_datasets:
            self.loader.load_synthetic_datasets(self.datalake)
        self.fileserver = FileServer(env, self.datalake_nfd, self.datalake)

        # -- gateway application -------------------------------------------------------
        # One declarative service registry per site: the schema, validator,
        # runner and cache policy of every application, wired to this
        # cluster's SRA registry and calibrated runtime model.
        self.services = services or ServiceRegistry.with_defaults(
            runtime=ServiceRuntime(
                sra_registry=self.registry, runtime_model=self.runtime_model,
                clock=lambda: env.now,
            )
        )
        self.gateway = Gateway(
            env,
            cluster=self.cluster,
            forwarder=self.gateway_nfd,
            datalake=self.datalake,
            services=self.services,
            enable_result_cache=enable_result_cache,
            reject_when_busy=reject_when_busy,
            tracer=self.tracer,
        )

        # -- Kubernetes objects mirroring the deployment (Fig. 3) -------------------------
        self._deploy_system_pods()

        # -- routing daemon for the overlay ----------------------------------------------
        self.routing = RoutingDaemon(self.gateway_nfd, node_name=spec.name)
        # The gateway NFD keeps the default best-route strategy: its local
        # producer face has cost 0, so requests that reach this cluster are
        # served here unless the gateway NACKs them (capacity), in which case
        # the downstream router retries another cluster.

    # ------------------------------------------------------------------ system pods

    def _deploy_system_pods(self) -> None:
        """Create the Deployments/Services for the NFD gateway, data-lake NFD and file server."""
        nfd_template = PodSpec(containers=[Container(
            name="nfd", image="ndn/nfd:latest", workload=math.inf, startup_delay_s=0.2
        )])
        fileserver_template = PodSpec(containers=[Container(
            name="fileserver", image="lidc/fileserver:latest", workload=math.inf, startup_delay_s=0.2
        )])
        self.cluster.create_deployment(nfd_template, name="gateway-nfd", replicas=1)
        self.cluster.create_deployment(nfd_template, name="dl-nfd", replicas=1)
        self.cluster.create_deployment(fileserver_template, name="fileserver", replicas=1)
        # NodePort service exposing the gateway NFD to external NDN clients.
        self.nodeport_service = self.cluster.create_service(
            "gateway-nfd", selector={"app": "gateway-nfd"}, port=6363,
            service_type=ServiceType.NODE_PORT,
        )
        # ClusterIP service giving the data-lake NFD its DNS name.
        self.datalake_service = self.cluster.create_service(
            "dl-nfd", selector={"app": "dl-nfd"}, port=6363,
            service_type=ServiceType.CLUSTER_IP,
        )

    # ------------------------------------------------------------------ overlay membership

    def announce_prefixes(self, cost: float = 0.0) -> None:
        """Advertise this cluster's LIDC prefixes into the overlay."""
        for prefix in ANNOUNCED_PREFIXES:
            self.routing.announce(prefix, cost=cost)

    def withdraw_prefixes(self) -> None:
        """Withdraw every announced prefix (cluster leaving the overlay)."""
        for prefix in ANNOUNCED_PREFIXES:
            self.routing.withdraw(prefix)

    # ------------------------------------------------------------------ service plane

    def register_service(self, definition: ServiceDefinition) -> ServiceDefinition:
        """Install a new application on this cluster's gateway."""
        return self.services.register(definition)

    # ------------------------------------------------------------------ convenience

    @property
    def node_port(self) -> Optional[int]:
        """The NodePort through which external clients reach the gateway NFD."""
        return self.nodeport_service.node_port

    def datalake_dns_name(self) -> str:
        """The cluster DNS name of the data-lake NFD service."""
        return self.datalake_service.dns_name

    def utilization(self) -> dict[str, float]:
        return self.cluster.utilization()

    def active_jobs(self) -> int:
        return self.gateway.active_job_count()

    @staticmethod
    def _face_totals(face_stats: dict[int, dict[str, int]]) -> dict[str, int]:
        totals = {"bytes_in": 0, "bytes_out": 0, "drops": 0}
        for counters in face_stats.values():
            totals["bytes_in"] += counters["bytes_in"]
            totals["bytes_out"] += counters["bytes_out"]
            totals["drops"] += counters["drops"]
        return totals

    def transport_stats(self) -> dict[str, dict[str, int]]:
        """Wire-level transport totals, reported per NFD — and per shard.

        Bytes are ``len(wire)`` of the buffers that crossed each face;
        ``drops`` counts packets discarded on down faces, so experiments can
        report loss instead of silently eating packets.  Totals are kept
        separate per forwarder because the intra-site gw↔dl link appears in
        both — summing the two would double-count internal traffic as site
        ingress/egress.  When the gateway runs a sharded data plane
        (``gateway_shards > 1``), each shard additionally reports under
        ``gateway_nfd/shard<i>`` — those totals count the shard's boundary
        and producer faces, i.e. the wire bytes the shard itself handled —
        and ``gateway_nfd/hot_cache`` carries the dispatcher fast-path
        counters (hits there are exchanges the shards never saw, which is
        why shard byte totals can undercount repeat-name traffic).
        """
        report: dict[str, dict[str, int]] = {}
        for key, nfd in (("gateway_nfd", self.gateway_nfd), ("datalake_nfd", self.datalake_nfd)):
            report[key] = self._face_totals(nfd.face_stats())
        if isinstance(self.gateway_nfd, ShardedForwarder):
            for index, shard in enumerate(self.gateway_nfd.shards):
                report[f"gateway_nfd/shard{index}"] = self._face_totals(shard.face_stats())
            if self.gateway_nfd.hot_cache is not None:
                report["gateway_nfd/hot_cache"] = self.gateway_nfd.hot_cache.stats()
        return report

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "cluster": self.cluster.stats(),
            "gateway": self.gateway.stats(),
            "datalake": self.datalake.stats(),
            "gateway_nfd": self.gateway_nfd.stats(),
            "datalake_nfd": self.datalake_nfd.stats(),
            "transport": self.transport_stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LIDCCluster {self.name} nodes={self.spec.node_count}>"
