"""The declarative service plane: one object per application (paper §III-C, §IV-B).

The paper's point is that compute is *location-independent*: a client names a
computation semantically and the network decides where it runs.  On the
cluster side that requires one place that knows, for each named application,

* how its parameters are typed (field names, defaults, required-ness,
  aliases) — the schema that turns the flat ``k=v`` name component into
  typed values and back;
* how a request is validated before admission (paper §IV-B's
  application-specific validations);
* how an admitted request actually computes (the pod-building runner);
* which per-site runtime context the runner needs (SRA registry, calibrated
  runtime model — previously wired implicitly inside
  ``ApplicationRegistry.with_defaults``);
* whether its results may be served from the gateway result cache.

:class:`ServiceDefinition` bundles all five declaratively, and
:class:`ServiceRegistry` is the single dispatch table the
:class:`~repro.core.gateway.Gateway` consults.  Adding an application is one
``register()`` call — no gateway, validator-registry or application-registry
edits:

    >>> from repro.core.service import ParamField, ServiceDefinition, ServiceSchema
    >>> definition = ServiceDefinition(
    ...     name="WORDCOUNT",
    ...     runner=WordCountRunner(),
    ...     schema=ServiceSchema(fields=(
    ...         ParamField("sep", str, default=" "),)),
    ...     validator=WordCountValidator(),
    ... )
    >>> gateway.services.register(definition)

The legacy ``ApplicationRegistry`` / ``ValidatorRegistry`` views remain
available as :attr:`ServiceRegistry.apps` and :attr:`ServiceRegistry.checks`
so existing call sites (``gateway.applications.has_app(...)``,
``gateway.validators.unregister(...)``) keep working unchanged.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field as dataclass_field, replace as dataclass_replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Optional

from repro.exceptions import InvalidComputeName, UnknownApplication

if TYPE_CHECKING:  # pragma: no cover - import cycle guards (spec imports us)
    from repro.core.spec import ComputeRequest
    from repro.core.validation import ValidationResult

__all__ = [
    "ParamField",
    "ServiceSchema",
    "ServiceRuntime",
    "ServiceDefinition",
    "ServiceRegistry",
    "BASE_SCHEMA",
    "make_service",
    "default_service_definitions",
]


# ---------------------------------------------------------------------------
# Typed parameter schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamField:
    """One typed parameter of a compute name.

    ``name`` is the canonical wire key; ``aliases`` are accepted on parse but
    always re-encoded under the canonical key, so two spellings of the same
    request map to the same canonical name (and therefore the same caches).
    """

    name: str
    type: type = str
    default: Any = None
    required: bool = False
    aliases: tuple[str, ...] = ()
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: tuple[str, ...] = ()
    doc: str = ""

    def __post_init__(self) -> None:
        if self.type not in (str, float, int):
            raise ValueError(f"ParamField type must be str/float/int, got {self.type!r}")

    # -- parsing -----------------------------------------------------------------

    def parse(self, text: str) -> Any:
        """Convert the wire string into the field's typed value.

        Raises :class:`InvalidComputeName` (never a bare ``ValueError``) so a
        hostile name like ``cpu=abc`` is rejected with a Data error instead of
        crashing the gateway.
        """
        if self.type is str:
            if self.required and not text:
                raise InvalidComputeName(f"compute name has no {self.name} parameter")
            if self.choices and text not in self.choices:
                raise InvalidComputeName(
                    f"parameter {self.name}={text!r} not one of {sorted(self.choices)}"
                )
            return text
        try:
            value = self.type(text)
        except (TypeError, ValueError):
            raise InvalidComputeName(
                f"parameter {self.name}={text!r} is not a valid {self.type.__name__}"
            ) from None
        if isinstance(value, float) and not math.isfinite(value):
            raise InvalidComputeName(f"parameter {self.name}={text!r} is not finite")
        if self.minimum is not None and value < self.minimum:
            raise InvalidComputeName(
                f"parameter {self.name}={value!r} below minimum {self.minimum:g}"
            )
        if self.maximum is not None and value > self.maximum:
            raise InvalidComputeName(
                f"parameter {self.name}={value!r} above maximum {self.maximum:g}"
            )
        return value

    def encode(self, value: Any) -> str:
        """The canonical wire form of a typed value."""
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)


class ServiceSchema:
    """An ordered set of :class:`ParamField` with alias canonicalisation."""

    def __init__(self, fields: Iterable[ParamField] = (), allow_extra: bool = True) -> None:
        self.fields: tuple[ParamField, ...] = tuple(fields)
        self.allow_extra = allow_extra
        self._by_key: dict[str, ParamField] = {}
        for field in self.fields:
            for key in (field.name, *field.aliases):
                if key in self._by_key:
                    raise ValueError(f"duplicate schema key {key!r}")
                self._by_key[key] = field

    def field_for(self, key: str) -> Optional[ParamField]:
        return self._by_key.get(key)

    def parse(self, params: Mapping[str, str]) -> tuple[dict[str, Any], dict[str, str]]:
        """Split a wire parameter dict into (typed fields, extra params).

        Alias keys are folded onto the canonical field name; supplying a field
        under two spellings at once is an error rather than a silent override.
        Missing optional fields take their declared default.
        """
        remaining = dict(params)
        typed: dict[str, Any] = {}
        for field in self.fields:
            present_key: Optional[str] = None
            raw: Optional[str] = None
            for key in (field.name, *field.aliases):
                if key in remaining:
                    if present_key is not None:
                        raise InvalidComputeName(
                            f"parameter {key!r} duplicates {present_key!r} "
                            f"(both spell {field.name!r})"
                        )
                    present_key, raw = key, remaining.pop(key)
            if present_key is None:
                if field.required:
                    raise InvalidComputeName(f"compute name has no {field.name} parameter")
                typed[field.name] = field.default
            else:
                typed[field.name] = field.parse(raw if raw is not None else "")
        if remaining and not self.allow_extra:
            raise InvalidComputeName(
                f"unexpected parameter(s) {sorted(remaining)} for this service"
            )
        return typed, remaining

    def canonicalise(self, params: Mapping[str, str]) -> dict[str, str]:
        """Re-encode a wire parameter dict under canonical keys only.

        The result is what :func:`repro.core.naming.compute_name` should carry
        so that alias spellings cannot split on-path content-store entries or
        the gateway result cache.
        """
        typed, extras = self.parse(params)
        wire: dict[str, str] = {}
        for field in self.fields:
            value = typed[field.name]
            if value is None:
                continue
            wire[field.name] = field.encode(value)
        wire.update(extras)
        return wire

    def encode(self, typed: Mapping[str, Any]) -> dict[str, str]:
        """Encode typed field values (plus pass-through extras) as wire strings."""
        wire: dict[str, str] = {}
        for field in self.fields:
            value = typed.get(field.name)
            if value is None:
                continue
            wire[field.name] = field.encode(value)
        for key, value in typed.items():
            if key not in self._by_key and value is not None:
                wire[key] = str(value)
        return wire

    def describe(self) -> list[dict[str, object]]:
        """A documentation-friendly summary of the schema."""
        return [
            {
                "name": field.name,
                "type": field.type.__name__,
                "default": field.default,
                "required": field.required,
                "aliases": list(field.aliases),
                "doc": field.doc,
            }
            for field in self.fields
        ]


#: The base schema every compute name shares (paper §III-C's
#: ``mem=4&cpu=6&app=BLAST&srr=...&ref=...`` component).  ``memory`` and
#: ``dataset`` are accepted as aliases but always canonicalised to ``mem`` /
#: ``srr`` so legacy names keep parsing identically while alias spellings can
#: no longer split the result cache.
BASE_SCHEMA = ServiceSchema(
    fields=(
        ParamField("app", str, required=True, doc="application name"),
        ParamField("cpu", float, default=2.0, doc="CPU cores requested"),
        ParamField("mem", float, default=4.0, aliases=("memory",), doc="memory in GB"),
        ParamField("srr", str, default=None, aliases=("dataset",), doc="input dataset id"),
        ParamField("ref", str, default=None, doc="reference database"),
    ),
    allow_extra=True,
)


# ---------------------------------------------------------------------------
# Service definitions
# ---------------------------------------------------------------------------


@dataclass
class ServiceRuntime:
    """Per-site context handed to runner factories.

    Replaces the implicit wiring that used to live inside
    ``ApplicationRegistry.with_defaults`` (which hard-coded how the BLAST
    runner gets its SRA registry and calibrated runtime model).
    """

    sra_registry: Any = None
    runtime_model: Any = None
    clock: Optional[Callable[[], float]] = None

    def resolved(self) -> "ServiceRuntime":
        """Fill in default registry/model lazily (imports are heavyweight)."""
        if self.sra_registry is None or self.runtime_model is None:
            from repro.genomics.runtime_model import BlastRuntimeModel
            from repro.genomics.sra import SraRegistry

            if self.sra_registry is None:
                self.sra_registry = SraRegistry()
            if self.runtime_model is None:
                self.runtime_model = BlastRuntimeModel(registry=self.sra_registry)
        return self


@dataclass
class ServiceDefinition:
    """Everything the service plane needs to know about one application.

    Either ``runner`` (a ready instance) or ``runner_factory`` (built once per
    site from the :class:`ServiceRuntime`) must be provided for the service to
    be submittable; a definition with neither is validator-only.
    """

    name: str
    runner: Any = None
    runner_factory: Optional[Callable[[ServiceRuntime], Any]] = None
    schema: ServiceSchema = dataclass_field(default_factory=ServiceSchema)
    validator: Any = None
    aliases: tuple[str, ...] = ()
    cacheable: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        self.name = self.name.upper()
        self.aliases = tuple(alias.upper() for alias in self.aliases)

    @property
    def runnable(self) -> bool:
        return self.runner is not None or self.runner_factory is not None

    def build_runner(self, runtime: ServiceRuntime) -> Any:
        if self.runner is not None:
            return self.runner
        if self.runner_factory is None:
            raise UnknownApplication(f"no application registered for {self.name!r}")
        return self.runner_factory(runtime.resolved())

    def clone(self) -> "ServiceDefinition":
        """A per-site copy: registering one definition on several clusters must
        not alias mutable state (validator runtime binding, view mutations)."""
        return dataclass_replace(
            self,
            runner=copy.copy(self.runner) if self.runner is not None else None,
            validator=copy.copy(self.validator) if self.validator is not None else None,
        )


def make_service(
    name: str,
    runner: Any = None,
    *,
    runner_factory: Optional[Callable[[ServiceRuntime], Any]] = None,
    fields: Iterable[ParamField] = (),
    validator: Any = None,
    aliases: Iterable[str] = (),
    cacheable: bool = True,
    description: str = "",
) -> ServiceDefinition:
    """Convenience constructor: a :class:`ServiceDefinition` from loose parts."""
    return ServiceDefinition(
        name=name,
        runner=runner,
        runner_factory=runner_factory,
        schema=ServiceSchema(fields=tuple(fields)),
        validator=validator,
        aliases=tuple(aliases),
        cacheable=cacheable,
        description=description,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class ServiceRegistry:
    """The gateway's single dispatch table: app name → :class:`ServiceDefinition`."""

    def __init__(self, runtime: Optional[ServiceRuntime] = None, default_validator: Any = None) -> None:
        self.runtime = (runtime or ServiceRuntime())
        self._services: dict[str, ServiceDefinition] = {}
        self._alias_of: dict[str, str] = {}
        self._runner_cache: dict[str, Any] = {}
        self._default_validator = default_validator
        #: Legacy views (ApplicationRegistry / ValidatorRegistry look-alikes).
        self.apps = _ApplicationsView(self)
        self.checks = _ValidatorsView(self)

    # -- registration -------------------------------------------------------------

    def register(self, definition: ServiceDefinition) -> ServiceDefinition:
        """Install (or replace) a service; aliases resolve to the same definition."""
        canonical = definition.name
        self._services[canonical] = definition
        self._runner_cache.pop(canonical, None)
        if hasattr(definition.validator, "bind"):
            definition.validator.bind(self.runtime)
        # Drop aliases that previously pointed at an older definition of this name.
        for alias, target in list(self._alias_of.items()):
            if target == canonical:
                del self._alias_of[alias]
        for alias in definition.aliases:
            self._alias_of[alias] = canonical
        return definition

    def unregister(self, app: str) -> Optional[ServiceDefinition]:
        canonical = self.resolve(app)
        if canonical is None:
            return None
        definition = self._services.pop(canonical, None)
        self._runner_cache.pop(canonical, None)
        for alias, target in list(self._alias_of.items()):
            if target == canonical:
                del self._alias_of[alias]
        return definition

    # -- lookup -------------------------------------------------------------------

    def resolve(self, app: str) -> Optional[str]:
        """Canonical service name for ``app`` (directly or via alias)."""
        key = app.upper()
        if key in self._services:
            return key
        return self._alias_of.get(key)

    def try_get(self, app: str) -> Optional[ServiceDefinition]:
        canonical = self.resolve(app)
        return self._services.get(canonical) if canonical else None

    def get(self, app: str) -> ServiceDefinition:
        definition = self.try_get(app)
        if definition is None:
            raise UnknownApplication(f"no application registered for {app!r}")
        return definition

    def __contains__(self, app: str) -> bool:
        return self.resolve(app) is not None

    def has_app(self, app: str) -> bool:
        """True when ``app`` names a submittable (runnable) service."""
        definition = self.try_get(app)
        return definition is not None and definition.runnable

    def services(self) -> list[ServiceDefinition]:
        return [self._services[name] for name in sorted(self._services)]

    def applications(self) -> list[str]:
        """Every submittable name, aliases included (legacy-compatible shape)."""
        names = [name for name, defn in self._services.items() if defn.runnable]
        names.extend(
            alias for alias, target in self._alias_of.items()
            if self._services[target].runnable
        )
        return sorted(names)

    # -- dispatch ----------------------------------------------------------------

    def runner_for(self, app: str) -> Any:
        canonical = self.resolve(app)
        if canonical is None:
            raise UnknownApplication(f"no application registered for {app!r}")
        if canonical not in self._runner_cache:
            self._runner_cache[canonical] = self._services[canonical].build_runner(self.runtime)
        return self._runner_cache[canonical]

    def schema_for(self, app: str) -> ServiceSchema:
        definition = self.try_get(app)
        return definition.schema if definition is not None else ServiceSchema()

    def cacheable(self, app: str) -> bool:
        definition = self.try_get(app)
        return definition.cacheable if definition is not None else True

    def validate(self, request: "ComputeRequest", datalake: Any = None) -> "ValidationResult":
        """Schema-check then run the service validator (gateway admission path)."""
        from repro.core.validation import DefaultValidator, ValidationResult

        definition = self.try_get(request.app)
        if definition is not None:
            try:
                definition.schema.parse(request.params)
            except InvalidComputeName as exc:
                return ValidationResult(False, str(exc))
            if definition.validator is not None:
                return definition.validator.validate(request, datalake)
        default = self._default_validator or DefaultValidator()
        return default.validate(request, datalake)

    def describe(self) -> dict[str, object]:
        """Service-plane summary (used by stats and docs)."""
        return {
            definition.name: {
                "aliases": list(definition.aliases),
                "runnable": definition.runnable,
                "validated": definition.validator is not None,
                "cacheable": definition.cacheable,
                "schema": definition.schema.describe(),
                "description": definition.description,
            }
            for definition in self.services()
        }

    # -- defaults -----------------------------------------------------------------

    @classmethod
    def with_defaults(
        cls,
        registry: Any = None,
        model: Any = None,
        runtime: Optional[ServiceRuntime] = None,
    ) -> "ServiceRegistry":
        """The service set LIDC ships with: BLAST (+MAGICBLAST), COMPRESS, SLEEP."""
        if runtime is None:
            runtime = ServiceRuntime(sra_registry=registry, runtime_model=model)
        services = cls(runtime=runtime)
        for definition in default_service_definitions():
            services.register(definition)
        return services

    @classmethod
    def from_legacy(cls, applications: Any = None, validators: Any = None) -> "ServiceRegistry":
        """Wrap legacy ``ApplicationRegistry`` / ``ValidatorRegistry`` instances.

        Kept so call sites that assemble the old registries by hand can hand
        them to the gateway unchanged; runners registered under several names
        (e.g. BLAST and MAGICBLAST) stay independently addressable.
        """
        from repro.core.applications import ApplicationRegistry
        from repro.core.validation import ValidatorRegistry

        applications = applications or ApplicationRegistry.with_defaults()
        validators = validators or ValidatorRegistry.with_defaults()
        services = cls()
        names = set(applications.applications()) | set(validators.registered())
        for name in sorted(names):
            runner = applications.runner_for(name) if applications.has_app(name) else None
            validator = (
                validators.validator_for(name) if validators.has_validator(name) else None
            )
            services.register(ServiceDefinition(
                name=name,
                runner=runner,
                schema=ServiceSchema(),
                validator=validator,
            ))
        return services


def default_service_definitions() -> list[ServiceDefinition]:
    """Declarative definitions of the built-in LIDC applications."""
    from repro.core.applications import (
        BlastApplication,
        CompressApplication,
        SleepApplication,
    )
    from repro.core.validation import BlastValidator, CompressionValidator

    def blast_runner(runtime: ServiceRuntime) -> BlastApplication:
        return BlastApplication(model=runtime.runtime_model, registry=runtime.sra_registry)

    def blast_validator(runtime: ServiceRuntime) -> BlastValidator:
        return BlastValidator(registry=runtime.sra_registry)

    return [
        ServiceDefinition(
            name="BLAST",
            runner_factory=blast_runner,
            schema=ServiceSchema(),
            validator=_LazyValidator(blast_validator),
            aliases=("MAGICBLAST",),
            description="Magic-BLAST alignment of an SRA sample against a reference",
        ),
        ServiceDefinition(
            name="COMPRESS",
            runner=CompressApplication(),
            schema=ServiceSchema(fields=(
                ParamField("level", int, default=6, minimum=1, maximum=9,
                           doc="zlib compression level"),
            )),
            validator=CompressionValidator(),
            description="file compression over a data-lake dataset",
        ),
        ServiceDefinition(
            name="SLEEP",
            runner=SleepApplication(),
            schema=ServiceSchema(fields=(
                ParamField("duration", float, default=10.0, minimum=0.0,
                           doc="simulated job duration in seconds"),
            )),
            description="fixed-duration no-op application (benchmarks)",
        ),
    ]


class _LazyValidator:
    """Build a validator from the registry runtime on first use.

    Needed because the BLAST validator shares the per-site SRA registry, which
    is only known once the definition lands in a :class:`ServiceRegistry`.
    """

    def __init__(self, factory: Callable[[ServiceRuntime], Any]) -> None:
        self._factory = factory
        self._built: Any = None
        self._runtime: Optional[ServiceRuntime] = None

    def bind(self, runtime: ServiceRuntime) -> None:
        if runtime is not self._runtime:
            self._runtime = runtime
            self._built = None

    def validate(self, request: "ComputeRequest", datalake: Any = None) -> "ValidationResult":
        if self._built is None:
            runtime = (self._runtime or ServiceRuntime()).resolved()
            self._built = self._factory(runtime)
        return self._built.validate(request, datalake)


# ---------------------------------------------------------------------------
# Legacy views
# ---------------------------------------------------------------------------


class _ApplicationsView:
    """``ApplicationRegistry``-shaped view over a :class:`ServiceRegistry`."""

    def __init__(self, services: ServiceRegistry) -> None:
        self._services = services

    def register(self, app: str, runner: Any) -> None:
        key = app.upper()
        services = self._services
        if key in services._services:
            definition = services._services[key]
            definition.runner = runner
            definition.runner_factory = None
            services._runner_cache.pop(key, None)
        else:
            # Registering directly under what used to be an alias detaches the
            # alias (mirroring the legacy per-name table): the new standalone
            # definition owns the name from here on.
            services._alias_of.pop(key, None)
            services.register(ServiceDefinition(name=app, runner=runner))

    def unregister(self, app: str) -> None:
        # Legacy semantics are per *name*: unregistering an alias detaches the
        # alias only, never the canonical service behind it.
        key = app.upper()
        services = self._services
        if key in services._services:
            definition = services._services[key]
            definition.runner = None
            definition.runner_factory = None
            services._runner_cache.pop(key, None)
        elif key in services._alias_of:
            del services._alias_of[key]

    def runner_for(self, app: str) -> Any:
        return self._services.runner_for(app)

    def has_app(self, app: str) -> bool:
        return self._services.has_app(app)

    def applications(self) -> list[str]:
        return self._services.applications()


class _ValidatorsView:
    """``ValidatorRegistry``-shaped view over a :class:`ServiceRegistry`."""

    def __init__(self, services: ServiceRegistry) -> None:
        self._services = services

    def register(self, app: str, validator: Any) -> None:
        definition = self._services.try_get(app)
        if definition is None:
            definition = self._services.register(ServiceDefinition(name=app))
        definition.validator = validator

    def unregister(self, app: str) -> None:
        definition = self._services.try_get(app)
        if definition is not None:
            definition.validator = None

    def validator_for(self, app: str) -> Any:
        definition = self._services.try_get(app)
        if definition is not None and definition.validator is not None:
            return definition.validator
        from repro.core.validation import DefaultValidator

        return self._services._default_validator or DefaultValidator()

    def has_validator(self, app: str) -> bool:
        definition = self._services.try_get(app)
        return definition is not None and definition.validator is not None

    def registered(self) -> list[str]:
        return sorted(
            defn.name for defn in self._services.services() if defn.validator is not None
        )

    def validate(self, request: "ComputeRequest", datalake: Any = None) -> "ValidationResult":
        return self._services.validate(request, datalake)
