"""LIDC core: the paper's contribution.

Everything that is LIDC-specific lives here: the semantic naming scheme, the
gateway, per-cluster deployment, the multi-cluster overlay, the client
library, placement strategies, result caching, completion-time prediction and
the centralized baseline.

Most users only need three names::

    from repro.core import LIDCTestbed, ComputeRequest

    testbed = LIDCTestbed.single_cluster(seed=1)
    outcome = testbed.submit_and_wait(
        ComputeRequest(app="BLAST", cpu=2, memory_gb=4,
                       dataset="SRR2931415", reference="HUMAN"))
"""

from repro.core import naming
from repro.core.applications import (
    ApplicationRegistry,
    BlastApplication,
    CompressApplication,
    SleepApplication,
)
from repro.core.baseline import CentralizedController, ControllerUnavailable
from repro.core.caching import CachedResult, ResultCache
from repro.core.client import JobOutcome, LIDCClient, SubmissionResult
from repro.core.cluster_endpoint import LIDCCluster
from repro.core.framework import LIDCTestbed, TestbedConfig
from repro.core.gateway import Gateway
from repro.core.http_naming import (
    HttpGatewayFacade,
    HttpRequest,
    HttpResponse,
    request_to_url,
    url_to_request,
)
from repro.core.jobs import JobTracker
from repro.core.overlay import ComputeOverlay
from repro.core.placement import (
    LearnedPlacement,
    LeastLoadedPlacement,
    NearestPlacement,
    PlacementDecision,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.core.predictor import CompletionTimePredictor
from repro.core.spec import ComputeRequest, JobRecord, JobState
from repro.core.validation import (
    BlastValidator,
    CompressionValidator,
    DefaultValidator,
    ValidatorRegistry,
)
from repro.core.workflow import CampaignResult, GenomicsWorkflow, WorkflowReport

__all__ = [
    "naming",
    "ComputeRequest",
    "JobState",
    "JobRecord",
    "JobTracker",
    "Gateway",
    "LIDCCluster",
    "ComputeOverlay",
    "LIDCClient",
    "SubmissionResult",
    "JobOutcome",
    "LIDCTestbed",
    "TestbedConfig",
    "GenomicsWorkflow",
    "WorkflowReport",
    "CampaignResult",
    "ApplicationRegistry",
    "BlastApplication",
    "CompressApplication",
    "SleepApplication",
    "ValidatorRegistry",
    "BlastValidator",
    "CompressionValidator",
    "DefaultValidator",
    "ResultCache",
    "CachedResult",
    "CompletionTimePredictor",
    "PlacementDecision",
    "RandomPlacement",
    "RoundRobinPlacement",
    "NearestPlacement",
    "LeastLoadedPlacement",
    "LearnedPlacement",
    "CentralizedController",
    "ControllerUnavailable",
    "HttpGatewayFacade",
    "HttpRequest",
    "HttpResponse",
    "request_to_url",
    "url_to_request",
]
