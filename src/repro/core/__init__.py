"""LIDC core: the paper's contribution.

Everything that is LIDC-specific lives here: the semantic naming scheme, the
declarative service plane, the gateway, per-cluster deployment, the
multi-cluster overlay, the session-based client library, placement
strategies, result caching, completion-time prediction and the centralized
baseline.

Most users only need three names::

    from repro.core import LIDCTestbed, ComputeRequest

    testbed = LIDCTestbed.single_cluster(seed=1)
    outcome = testbed.submit_and_wait(
        ComputeRequest(app="BLAST", cpu=2, memory_gb=4,
                       dataset="SRR2931415", reference="HUMAN"))

Non-blocking sessions drive many jobs through one client::

    client = testbed.client()
    handles = client.submit_many([request_a, request_b, request_c])
    testbed.run(until=client.wait_all(handles))

and a new application is one declarative registration::

    testbed.register_service(ServiceDefinition(
        name="WORDCOUNT", runner=WordCountRunner(),
        schema=ServiceSchema(fields=(ParamField("sep", str, default=" "),)),
        validator=WordCountValidator()))
"""

from repro.core import naming
from repro.core.applications import (
    ApplicationRegistry,
    BlastApplication,
    CompressApplication,
    SleepApplication,
)
from repro.core.baseline import CentralizedController, ControllerUnavailable
from repro.core.caching import CachedResult, ResultCache
from repro.core.client import JobHandle, JobOutcome, LIDCClient, SubmissionResult
from repro.core.cluster_endpoint import LIDCCluster
from repro.core.framework import LIDCTestbed, TestbedConfig
from repro.core.gateway import Gateway
from repro.core.http_naming import (
    HttpGatewayFacade,
    HttpRequest,
    HttpResponse,
    request_to_url,
    url_to_request,
)
from repro.core.jobs import JobTracker
from repro.core.overlay import ComputeOverlay
from repro.core.placement import (
    LearnedPlacement,
    LeastLoadedPlacement,
    NearestPlacement,
    PlacementDecision,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.core.predictor import CompletionTimePredictor
from repro.core.service import (
    BASE_SCHEMA,
    ParamField,
    ServiceDefinition,
    ServiceRegistry,
    ServiceRuntime,
    ServiceSchema,
    make_service,
)
from repro.core.spec import ComputeRequest, JobRecord, JobState
from repro.core.validation import (
    BlastValidator,
    CompressionValidator,
    DefaultValidator,
    ValidatorRegistry,
)
from repro.core.workflow import CampaignResult, GenomicsWorkflow, WorkflowReport

__all__ = [
    "naming",
    "ComputeRequest",
    "JobState",
    "JobRecord",
    "JobTracker",
    "Gateway",
    "LIDCCluster",
    "ComputeOverlay",
    "LIDCClient",
    "SubmissionResult",
    "JobOutcome",
    "JobHandle",
    "ServiceDefinition",
    "ServiceRegistry",
    "ServiceRuntime",
    "ServiceSchema",
    "ParamField",
    "BASE_SCHEMA",
    "make_service",
    "LIDCTestbed",
    "TestbedConfig",
    "GenomicsWorkflow",
    "WorkflowReport",
    "CampaignResult",
    "ApplicationRegistry",
    "BlastApplication",
    "CompressApplication",
    "SleepApplication",
    "ValidatorRegistry",
    "BlastValidator",
    "CompressionValidator",
    "DefaultValidator",
    "ResultCache",
    "CachedResult",
    "CompletionTimePredictor",
    "PlacementDecision",
    "RandomPlacement",
    "RoundRobinPlacement",
    "NearestPlacement",
    "LeastLoadedPlacement",
    "LearnedPlacement",
    "CentralizedController",
    "ControllerUnavailable",
    "HttpGatewayFacade",
    "HttpRequest",
    "HttpResponse",
    "request_to_url",
    "url_to_request",
]
