"""Centralized-controller baseline.

The paper's motivation (§I) is that existing multi-cluster tooling relies on a
*logically centralized* control plane that "struggles to handle dynamic
cluster environments" and is a single point of failure.  To quantify that
claim, this module implements the obvious alternative design: a federation
controller that knows every cluster, picks one per job with an explicit
placement strategy, and talks to cluster gateways over a management API
(bypassing the name-based control plane).

The baseline benchmark compares it against the LIDC overlay under cluster
churn and controller failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.cluster_endpoint import LIDCCluster
from repro.core.placement import LeastLoadedPlacement, PlacementDecision, PlacementStrategy
from repro.core.spec import ComputeRequest, JobRecord, JobState
from repro.exceptions import LIDCError, PlacementError, ValidationFailure
from repro.sim.engine import Environment

__all__ = ["ControllerUnavailable", "CentralizedSubmission", "CentralizedController"]


class ControllerUnavailable(LIDCError):
    """Raised when submitting to a failed central controller."""


@dataclass
class CentralizedSubmission:
    """Record of one submission through the central controller."""

    request: ComputeRequest
    decision: Optional[PlacementDecision]
    record: Optional[JobRecord]
    error: Optional[str] = None
    submitted_at: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.record is not None


class CentralizedController:
    """A single federation controller placing jobs on registered clusters."""

    def __init__(
        self,
        env: Environment,
        clusters: Optional[Sequence[LIDCCluster]] = None,
        strategy: Optional[PlacementStrategy] = None,
    ) -> None:
        self.env = env
        self._clusters: dict[str, LIDCCluster] = {c.name: c for c in (clusters or [])}
        self.strategy: PlacementStrategy = strategy or LeastLoadedPlacement()
        self.alive = True
        self.submissions: list[CentralizedSubmission] = []
        self.rejected_unavailable = 0

    # -- membership (requires manual reconfiguration, unlike the overlay) ----------

    def register_cluster(self, cluster: LIDCCluster) -> None:
        self._clusters[cluster.name] = cluster

    def deregister_cluster(self, name: str) -> Optional[LIDCCluster]:
        return self._clusters.pop(name, None)

    def clusters(self) -> list[LIDCCluster]:
        return [self._clusters[name] for name in sorted(self._clusters)]

    # -- failure injection -------------------------------------------------------------

    def fail(self) -> None:
        """The controller process dies: every new submission is rejected."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # -- submission -----------------------------------------------------------------------

    def submit(self, request: ComputeRequest) -> CentralizedSubmission:
        """Place and admit one request; raises when the controller is down."""
        if not self.alive:
            self.rejected_unavailable += 1
            raise ControllerUnavailable("central controller is unavailable")
        submission = CentralizedSubmission(
            request=request, decision=None, record=None, submitted_at=self.env.now
        )
        try:
            decision = self.strategy.select(request, self.clusters())
            if decision is None:
                raise PlacementError(f"no registered cluster can fit {request.describe()}")
            submission.decision = decision
            cluster = self._clusters[decision.cluster_name]
            submission.record = cluster.gateway.submit_local(request)
        except (PlacementError, ValidationFailure) as exc:
            submission.error = str(exc)
        self.submissions.append(submission)
        return submission

    def try_submit(self, request: ComputeRequest) -> CentralizedSubmission:
        """Like :meth:`submit` but records controller unavailability instead of raising."""
        try:
            return self.submit(request)
        except ControllerUnavailable as exc:
            submission = CentralizedSubmission(
                request=request, decision=None, record=None,
                error=str(exc), submitted_at=self.env.now,
            )
            self.submissions.append(submission)
            return submission

    # -- reporting -------------------------------------------------------------------------

    def placement_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for submission in self.submissions:
            if submission.decision is not None and submission.record is not None:
                counts[submission.decision.cluster_name] = (
                    counts.get(submission.decision.cluster_name, 0) + 1
                )
        return counts

    def completed_jobs(self) -> list[JobRecord]:
        return [
            s.record for s in self.submissions
            if s.record is not None and s.record.state == JobState.COMPLETED
        ]

    def stats(self) -> dict[str, object]:
        accepted = sum(1 for s in self.submissions if s.accepted)
        return {
            "alive": self.alive,
            "clusters": sorted(self._clusters),
            "submissions": len(self.submissions),
            "accepted": accepted,
            "rejected": len(self.submissions) - accepted,
            "rejected_unavailable": self.rejected_unavailable,
            "placement_counts": self.placement_counts(),
        }
