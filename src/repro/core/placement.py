"""Cluster-placement strategies.

In LIDC proper, placement emerges from name-based forwarding (the strategy on
``/ndn/k8s/compute`` plus NACK-based retry).  This module provides *explicit*
placement strategies over a set of clusters, used by

* the centralized-controller baseline (:mod:`repro.core.baseline`), which has
  to pick a cluster itself, and
* the "intelligence in the network" ablation (paper §VI/§VII), where the
  learned strategy ranks clusters by predicted completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from repro.cluster.quantity import Quantity, parse_memory
from repro.core.cluster_endpoint import LIDCCluster
from repro.core.predictor import CompletionTimePredictor
from repro.core.spec import ComputeRequest
from repro.exceptions import PlacementError
from repro.sim.rng import SeededRNG

__all__ = [
    "PlacementDecision",
    "PlacementStrategy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "NearestPlacement",
    "LeastLoadedPlacement",
    "LearnedPlacement",
    "place_or_raise",
    "request_quantity",
]


def request_quantity(request: ComputeRequest) -> Quantity:
    """The Kubernetes resource quantity a request asks for."""
    return Quantity(cpu=request.cpu, memory=parse_memory(f"{request.memory_gb:g}Gi"))


@dataclass(frozen=True)
class PlacementDecision:
    """A chosen cluster plus the score that won."""

    cluster_name: str
    score: float
    reason: str


class PlacementStrategy(Protocol):
    """Chooses a cluster for a request."""

    name: str

    def select(self, request: ComputeRequest,
               clusters: Sequence[LIDCCluster]) -> Optional[PlacementDecision]:
        ...  # pragma: no cover - protocol


def _feasible(request: ComputeRequest, clusters: Sequence[LIDCCluster]) -> list[LIDCCluster]:
    """Clusters that can start the request right now.

    Falls back to *every* cluster when none currently has free capacity — the
    job then queues on whichever cluster the strategy picks (Kubernetes holds
    the pod Pending until resources free up).
    """
    quantity = request_quantity(request)
    feasible = [cluster for cluster in clusters if cluster.cluster.can_fit(quantity)]
    return feasible if feasible else list(clusters)


class RandomPlacement:
    """Uniform random choice among clusters that can fit the request."""

    name = "random"

    def __init__(self, rng: Optional[SeededRNG] = None) -> None:
        self.rng = rng or SeededRNG(0)

    def select(self, request, clusters):
        feasible = _feasible(request, clusters)
        if not feasible:
            return None
        choice = self.rng.choice([c.name for c in feasible], stream="placement")
        return PlacementDecision(cluster_name=choice, score=1.0 / len(feasible),
                                 reason="uniform random over feasible clusters")


class RoundRobinPlacement:
    """Cycle through feasible clusters in name order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def select(self, request, clusters):
        feasible = sorted(_feasible(request, clusters), key=lambda c: c.name)
        if not feasible:
            return None
        choice = feasible[self._counter % len(feasible)]
        self._counter += 1
        return PlacementDecision(cluster_name=choice.name, score=0.0, reason="round robin")


class NearestPlacement:
    """Pick the feasible cluster with the lowest latency from the client site."""

    name = "nearest"

    def __init__(self, latencies_s: dict[str, float]) -> None:
        #: Map of cluster name → latency from the submitting site, seconds.
        self.latencies_s = dict(latencies_s)

    def select(self, request, clusters):
        feasible = _feasible(request, clusters)
        if not feasible:
            return None
        best = min(feasible, key=lambda c: (self.latencies_s.get(c.name, float("inf")), c.name))
        return PlacementDecision(
            cluster_name=best.name,
            score=self.latencies_s.get(best.name, float("inf")),
            reason="lowest client-to-cluster latency",
        )


class LeastLoadedPlacement:
    """Pick the feasible cluster with the fewest active jobs (ties: lowest CPU use)."""

    name = "least-loaded"

    def select(self, request, clusters):
        feasible = _feasible(request, clusters)
        if not feasible:
            return None
        best = min(
            feasible,
            key=lambda c: (c.active_jobs(), c.utilization()["cpu"], c.name),
        )
        return PlacementDecision(
            cluster_name=best.name, score=float(best.active_jobs()),
            reason="fewest active jobs",
        )


class LearnedPlacement:
    """Rank clusters by predicted completion time (paper §VII future work).

    Predicted completion = predicted runtime (from the completion-time
    predictor) + estimated queueing delay on that cluster (active jobs ×
    mean runtime of the application so far).  Falls back to least-loaded
    behaviour until the predictor has seen enough completed jobs.
    """

    name = "learned"

    def __init__(self, predictor: CompletionTimePredictor,
                 fallback: Optional[PlacementStrategy] = None) -> None:
        self.predictor = predictor
        self.fallback = fallback or LeastLoadedPlacement()

    def select(self, request, clusters):
        feasible = _feasible(request, clusters)
        if not feasible:
            return None
        predicted_runtime = self.predictor.predict(request)
        if predicted_runtime is None:
            decision = self.fallback.select(request, feasible)
            if decision is None:
                return None
            return PlacementDecision(
                cluster_name=decision.cluster_name, score=decision.score,
                reason=f"predictor untrained; fell back to {self.fallback.name}",
            )
        scored: list[tuple[float, str]] = []
        for cluster in feasible:
            queue_delay = cluster.active_jobs() * predicted_runtime
            scored.append((predicted_runtime + queue_delay, cluster.name))
        scored.sort()
        best_score, best_name = scored[0]
        return PlacementDecision(
            cluster_name=best_name, score=best_score,
            reason="minimum predicted completion time",
        )


def place_or_raise(strategy: PlacementStrategy, request: ComputeRequest,
                   clusters: Sequence[LIDCCluster]) -> PlacementDecision:
    """Helper: run a strategy and raise :class:`PlacementError` when nothing fits."""
    decision = strategy.select(request, clusters)
    if decision is None:
        raise PlacementError(
            f"no cluster can satisfy {request.describe()} "
            f"(clusters: {[c.name for c in clusters]})"
        )
    return decision
