"""The multi-cluster compute overlay (paper Fig. 1).

The overlay is the decentralized control plane: a set of LIDC clusters and
access routers connected by wide-area links, with prefix announcements (not a
central controller) making every cluster's ``/ndn/k8s/compute`` reachable from
every client.  Clusters can join and leave at any time; the routing layer and
the NACK-retry behaviour of the forwarders adapt placement automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import naming
from repro.core.client import LIDCClient
from repro.core.cluster_endpoint import LIDCCluster
from repro.exceptions import OverlayError
from repro.ndn.cs import CachePolicy
from repro.ndn.face import Face, connect
from repro.ndn.forwarder import Forwarder
from repro.ndn.routing import RoutingDaemon
from repro.ndn.strategy import BestRouteStrategy, LoadBalanceStrategy, Strategy
from repro.sim.engine import Environment
from repro.sim.topology import Link
from repro.sim.trace import Tracer

__all__ = ["OverlayLink", "ComputeOverlay"]


@dataclass(frozen=True)
class OverlayLink:
    """A wide-area adjacency in the overlay."""

    a: str
    b: str
    latency_s: float
    bandwidth_bps: float


class ComputeOverlay:
    """A loosely coupled overlay of compute clusters and access routers."""

    def __init__(self, env: Environment, tracer: Optional[Tracer] = None) -> None:
        self.env = env
        self.tracer = tracer or Tracer(clock=lambda: env.now)
        self.clusters: dict[str, LIDCCluster] = {}
        self.routers: dict[str, Forwarder] = {}
        self._router_daemons: dict[str, RoutingDaemon] = {}
        self._links: list[OverlayLink] = []
        self._faces: dict[tuple[str, str], tuple[Face, Face]] = {}
        self.joins = 0
        self.leaves = 0

    # ------------------------------------------------------------------ membership

    def add_access_router(self, name: str, cs_capacity: int = 4096,
                          cache_results: bool = True) -> Forwarder:
        """Add a client access router (the client's local NDN forwarder)."""
        if name in self.routers or name in self.clusters:
            raise OverlayError(f"overlay node {name!r} already exists")
        router = Forwarder(
            env=self.env, name=name,
            cs_capacity=cs_capacity if cache_results else 0,
            cs_policy=CachePolicy.LRU, tracer=self.tracer,
        )
        self.routers[name] = router
        self._router_daemons[name] = RoutingDaemon(router, node_name=name)
        return router

    def add_cluster(
        self,
        cluster: LIDCCluster,
        connect_to: "list[tuple[str, float]] | list[str] | None" = None,
        default_latency_s: float = 0.02,
        bandwidth_bps: float = 1e9,
        announce: bool = True,
    ) -> LIDCCluster:
        """Add a cluster to the overlay and connect it to existing nodes.

        ``connect_to`` is a list of node names (clusters or routers), each
        optionally paired with a link latency in seconds.
        """
        if cluster.name in self.clusters or cluster.name in self.routers:
            raise OverlayError(f"overlay node {cluster.name!r} already exists")
        self.clusters[cluster.name] = cluster
        self.joins += 1
        self.tracer.record("overlay", "cluster-joined", cluster=cluster.name)
        for entry in connect_to or []:
            if isinstance(entry, tuple):
                peer, latency = entry
            else:
                peer, latency = entry, default_latency_s
            self.connect(cluster.name, peer, latency_s=latency, bandwidth_bps=bandwidth_bps)
        if announce:
            cluster.announce_prefixes()
        return cluster

    def remove_cluster(self, name: str, withdraw: bool = True) -> LIDCCluster:
        """Remove a cluster (graceful leave: withdraw prefixes, close links)."""
        cluster = self.clusters.get(name)
        if cluster is None:
            raise OverlayError(f"no cluster {name!r} in the overlay")
        if withdraw:
            cluster.withdraw_prefixes()
        self._disconnect_all(name)
        del self.clusters[name]
        self.leaves += 1
        self.tracer.record("overlay", "cluster-left", cluster=name)
        return cluster

    def fail_cluster(self, name: str) -> LIDCCluster:
        """Abrupt failure: links drop without any prefix withdrawal."""
        cluster = self.clusters.get(name)
        if cluster is None:
            raise OverlayError(f"no cluster {name!r} in the overlay")
        self._disconnect_all(name)
        del self.clusters[name]
        self.leaves += 1
        self.tracer.record("overlay", "cluster-failed", cluster=name)
        return cluster

    def _disconnect_all(self, name: str) -> None:
        for (a, b), (face_a, face_b) in list(self._faces.items()):
            if name in (a, b):
                # Full forwarder-level removal (not just a face close): each
                # side purges its FIB *and* resolves the PIT entries whose
                # upstream just vanished — retrying over surviving routes or
                # Nacking the consumer (NoRoute) so nothing waits out a
                # lifetime against a dead link.
                self._forwarder_of(a).remove_face(face_a.face_id)
                self._forwarder_of(b).remove_face(face_b.face_id)
                daemon_a, daemon_b = self._daemon_of(a), self._daemon_of(b)
                daemon_a.remove_adjacency(b)
                daemon_b.remove_adjacency(a)
                del self._faces[(a, b)]
        self._links = [link for link in self._links if name not in (link.a, link.b)]

    # ------------------------------------------------------------------ link faults

    def _link_faces(self, a: str, b: str) -> tuple[Face, Face]:
        pair = self._faces.get((a, b)) or self._faces.get((b, a))
        if pair is None:
            raise OverlayError(f"no overlay link between {a!r} and {b!r}")
        return pair

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Mark both ends of the ``a``–``b`` link up or down.

        A downed link silently drops traffic in both directions (counted in
        each face's ``stats.drops``) without tearing down routes — the
        flapping-WAN failure mode, distinct from :meth:`fail_cluster`'s
        clean removal.  Recovery is the same toggle back up.
        """
        face_a, face_b = self._link_faces(a, b)
        face_a.up = up
        face_b.up = up
        self.tracer.record(
            "overlay", "link-up" if up else "link-down", a=a, b=b
        )

    def fail_link(self, a: str, b: str) -> None:
        self.set_link_state(a, b, up=False)

    def heal_link(self, a: str, b: str) -> None:
        self.set_link_state(a, b, up=True)

    def link_up(self, a: str, b: str) -> bool:
        face_a, face_b = self._link_faces(a, b)
        return face_a.up and face_b.up

    def isolate(self, name: str) -> list[tuple[str, str]]:
        """Partition ``name`` from the overlay: down every link it touches.

        Returns the downed links so :meth:`rejoin` (or a chaos driver's
        heal event) can restore exactly the same cut.
        """
        if name not in self.clusters and name not in self.routers:
            raise OverlayError(f"unknown overlay node {name!r}")
        cut = [key for key in self._faces if name in key]
        for a, b in cut:
            self.set_link_state(a, b, up=False)
        self.tracer.record("overlay", "partitioned", node=name, links=len(cut))
        return cut

    def rejoin(self, name: str) -> list[tuple[str, str]]:
        """Heal a partition: bring every link touching ``name`` back up."""
        if name not in self.clusters and name not in self.routers:
            raise OverlayError(f"unknown overlay node {name!r}")
        healed = [key for key in self._faces if name in key]
        for a, b in healed:
            self.set_link_state(a, b, up=True)
        self.tracer.record("overlay", "rejoined", node=name, links=len(healed))
        return healed

    # ------------------------------------------------------------------ wiring

    def _forwarder_of(self, name: str) -> Forwarder:
        if name in self.clusters:
            return self.clusters[name].gateway_nfd
        if name in self.routers:
            return self.routers[name]
        raise OverlayError(f"unknown overlay node {name!r}")

    def _daemon_of(self, name: str) -> RoutingDaemon:
        if name in self.clusters:
            return self.clusters[name].routing
        if name in self._router_daemons:
            return self._router_daemons[name]
        raise OverlayError(f"unknown overlay node {name!r}")

    def connect(self, a: str, b: str, latency_s: float = 0.02,
                bandwidth_bps: float = 1e9, link_cost: Optional[float] = None) -> OverlayLink:
        """Create a bidirectional wide-area link between two overlay nodes."""
        if a == b:
            raise OverlayError("cannot connect a node to itself")
        key = (a, b) if (a, b) not in self._faces else (a, b)
        if (a, b) in self._faces or (b, a) in self._faces:
            raise OverlayError(f"{a!r} and {b!r} are already connected")
        forwarder_a, forwarder_b = self._forwarder_of(a), self._forwarder_of(b)
        link = Link(a, b, latency_s=latency_s, bandwidth_bps=bandwidth_bps)
        face_a, face_b = connect(self.env, forwarder_a, forwarder_b, link=link, label=f"{a}<->{b}")
        self._faces[key] = (face_a, face_b)
        cost = link_cost if link_cost is not None else max(1.0, latency_s * 1000.0)
        RoutingDaemon.peer(self._daemon_of(a), face_a, self._daemon_of(b), face_b, link_cost=cost)
        overlay_link = OverlayLink(a=a, b=b, latency_s=latency_s, bandwidth_bps=bandwidth_bps)
        self._links.append(overlay_link)
        return overlay_link

    # ------------------------------------------------------------------ strategies

    def set_compute_strategy(self, strategy: Strategy) -> None:
        """Install a forwarding strategy for ``/ndn/k8s/compute`` on every access router.

        Cluster gateway NFDs keep best-route so that a request reaching a
        cluster is served locally (the producer face has cost 0) rather than
        being bounced onward.
        """
        for router in self.routers.values():
            router.set_strategy(naming.COMPUTE_PREFIX, strategy)

    def use_nearest_cluster(self) -> None:
        """Route compute requests to the lowest-cost (nearest) cluster."""
        self.set_compute_strategy(BestRouteStrategy())

    def use_load_balancing(self, weighted: bool = False) -> None:
        """Spread compute requests across the clusters announcing the prefix."""
        self.set_compute_strategy(LoadBalanceStrategy(weighted=weighted))

    # ------------------------------------------------------------------ clients

    def client(self, access_router: str, **kwargs) -> LIDCClient:
        """Create a client attached to one of the access routers."""
        return LIDCClient(self.env, self._forwarder_of(access_router), **kwargs)

    # ------------------------------------------------------------------ queries

    def node_names(self) -> list[str]:
        return sorted(list(self.clusters) + list(self.routers))

    def links(self) -> list[OverlayLink]:
        return list(self._links)

    def reachable_compute_origins(self, from_node: str) -> list[str]:
        """Which clusters' compute prefixes the given node currently knows about."""
        return self._daemon_of(from_node).origins_for(naming.COMPUTE_PREFIX)

    def total_active_jobs(self) -> int:
        return sum(cluster.active_jobs() for cluster in self.clusters.values())

    def stats(self) -> dict[str, object]:
        return {
            "clusters": sorted(self.clusters),
            "routers": sorted(self.routers),
            "links": len(self._links),
            "joins": self.joins,
            "leaves": self.leaves,
            "jobs_by_cluster": {
                name: cluster.gateway.tracker.stats() for name, cluster in self.clusters.items()
            },
        }
