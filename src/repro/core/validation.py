"""Application-specific validation (paper §IV-B).

"LIDC allows for application-specific validations.  These validations are
built into the system in a modular manner and can be managed separately for
each application."

Each application registers a validator; the gateway runs the matching
validator before admitting a request.  The two applications the paper uses as
examples are implemented: Magic-BLAST (checks the SRR id) and a file
compression tool (needs a dataset but no SRR semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.core.spec import ComputeRequest
from repro.datalake.repo import DataLake
from repro.exceptions import ValidationFailure
from repro.genomics.sra import SraRegistry, is_valid_srr_id

__all__ = [
    "ValidationResult",
    "Validator",
    "BlastValidator",
    "CompressionValidator",
    "DefaultValidator",
    "ValidatorRegistry",
]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one request."""

    ok: bool
    message: str = "ok"

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ValidationFailure(self.message)


class Validator(Protocol):
    """A per-application validator."""

    def validate(self, request: ComputeRequest, datalake: Optional[DataLake] = None) -> ValidationResult:
        ...  # pragma: no cover - protocol


class BlastValidator:
    """Validator for the Magic-BLAST application.

    Checks that the request carries a syntactically valid SRR id, that the
    sample is known (registry and/or data lake) and that a reference database
    is named.
    """

    def __init__(self, registry: Optional[SraRegistry] = None, require_in_lake: bool = False) -> None:
        self.registry = registry or SraRegistry()
        self.require_in_lake = require_in_lake

    def validate(self, request: ComputeRequest, datalake: Optional[DataLake] = None) -> ValidationResult:
        if not request.dataset:
            return ValidationResult(False, "BLAST requests must name an SRR id (srr=...)")
        if not is_valid_srr_id(request.dataset):
            return ValidationResult(False, f"malformed SRR id {request.dataset!r}")
        if request.dataset not in self.registry and (
            datalake is None or not datalake.has_dataset(request.dataset)
        ):
            return ValidationResult(False, f"unknown SRR id {request.dataset!r}")
        if self.require_in_lake:
            if datalake is None or not datalake.has_dataset(request.dataset):
                return ValidationResult(
                    False, f"SRR id {request.dataset!r} is not loaded in the data lake"
                )
        if not request.reference:
            return ValidationResult(False, "BLAST requests must name a reference database (ref=...)")
        return ValidationResult(True)


class CompressionValidator:
    """Validator for a generic file-compression application.

    Needs a dataset present in the data lake; has no SRR-id semantics, which is
    exactly the contrast the paper draws.
    """

    def validate(self, request: ComputeRequest, datalake: Optional[DataLake] = None) -> ValidationResult:
        if not request.dataset:
            return ValidationResult(False, "compression requests must name a dataset (srr=... or dataset=...)")
        if datalake is not None and not datalake.has_dataset(request.dataset):
            return ValidationResult(False, f"dataset {request.dataset!r} is not in the data lake")
        level = request.params.get("level")
        if level is not None:
            try:
                level_value = int(level)
            except ValueError:
                return ValidationResult(False, f"compression level {level!r} is not an integer")
            if not 1 <= level_value <= 9:
                return ValidationResult(False, f"compression level {level_value} outside [1, 9]")
        return ValidationResult(True)


class DefaultValidator:
    """Fallback validator: accepts anything with positive resources."""

    def validate(self, request: ComputeRequest, datalake: Optional[DataLake] = None) -> ValidationResult:
        return ValidationResult(True)


class ValidatorRegistry:
    """Per-application validator lookup used by the gateway."""

    def __init__(self, default: Optional[Validator] = None) -> None:
        self._validators: dict[str, Validator] = {}
        self._default: Validator = default or DefaultValidator()

    def register(self, app: str, validator: Validator) -> None:
        """Install (or replace) the validator for an application."""
        self._validators[app.upper()] = validator

    def unregister(self, app: str) -> None:
        self._validators.pop(app.upper(), None)

    def validator_for(self, app: str) -> Validator:
        return self._validators.get(app.upper(), self._default)

    def has_validator(self, app: str) -> bool:
        return app.upper() in self._validators

    def registered(self) -> list[str]:
        """The application names that carry an explicit validator."""
        return sorted(self._validators)

    def validate(self, request: ComputeRequest, datalake: Optional[DataLake] = None) -> ValidationResult:
        """Run the registered validator for the request's application."""
        return self.validator_for(request.app).validate(request, datalake)

    @classmethod
    def with_defaults(cls, registry: Optional[SraRegistry] = None) -> "ValidatorRegistry":
        """The registry LIDC ships with: BLAST and COMPRESS validators."""
        validators = cls()
        validators.register("BLAST", BlastValidator(registry=registry))
        validators.register("MAGICBLAST", BlastValidator(registry=registry))
        validators.register("COMPRESS", CompressionValidator())
        return validators
