"""The LIDC semantic naming scheme.

Computation, data and status requests all live under ``/ndn/k8s`` (paper
§III-C, §IV-A):

* ``/ndn/k8s/compute/<params>`` — a computation request whose final component
  encodes the application and its requirements, e.g.
  ``mem=4&cpu=6&app=BLAST&srr=SRR2931415&ref=HUMAN``;
* ``/ndn/k8s/data/<dataset>`` — dataset publication and retrieval;
* ``/ndn/k8s/status/<job-id>`` — job status polling.

This module converts between parameter dictionaries and those names, and
provides canonicalisation so that two requests with the same parameters in a
different order map to the same name (which is what makes result caching by
name possible).

Typed encoding/decoding is schema-driven: the service plane's
:data:`repro.core.service.BASE_SCHEMA` declares the shared fields (app, cpu,
mem, srr, ref) with their aliases, so :func:`canonical_compute_name` and
:func:`parse_typed_compute_name` fold alias spellings (``memory``,
``dataset``) onto the canonical keys.  Legacy ``/ndn/k8s/compute/...`` names
keep parsing identically through :func:`parse_compute_name`.
"""

from __future__ import annotations

import urllib.parse
from typing import Any, Mapping

from repro.core.service import BASE_SCHEMA
from repro.exceptions import InvalidComputeName
from repro.ndn.name import Name

__all__ = [
    "LIDC_ROOT",
    "COMPUTE_PREFIX",
    "DATA_PREFIX",
    "STATUS_PREFIX",
    "encode_params",
    "decode_params",
    "compute_name",
    "parse_compute_name",
    "canonical_compute_name",
    "parse_typed_compute_name",
    "status_name",
    "parse_status_name",
    "data_name",
    "canonical_request_key",
]

LIDC_ROOT = Name("/ndn/k8s")
COMPUTE_PREFIX = LIDC_ROOT.append("compute")
DATA_PREFIX = LIDC_ROOT.append("data")
STATUS_PREFIX = LIDC_ROOT.append("status")

_RESERVED_CHARS = "&="


def encode_params(params: Mapping[str, object]) -> str:
    """Encode a parameter mapping as the paper's ``k=v&k=v`` component.

    Keys are emitted in sorted order so the encoding is canonical.
    """
    if not params:
        raise InvalidComputeName("a compute request needs at least one parameter")
    parts = []
    for key in sorted(params):
        value = params[key]
        key_text = str(key)
        value_text = str(value)
        if any(ch in key_text for ch in _RESERVED_CHARS):
            raise InvalidComputeName(f"parameter key {key_text!r} contains a reserved character")
        parts.append(f"{key_text}={urllib.parse.quote(value_text, safe='')}")
    return "&".join(parts)


def decode_params(component: str) -> dict[str, str]:
    """Decode a ``k=v&k=v`` component back into a dict."""
    if not component:
        raise InvalidComputeName("empty parameter component")
    params: dict[str, str] = {}
    for part in component.split("&"):
        if "=" not in part:
            raise InvalidComputeName(f"malformed parameter {part!r} (expected key=value)")
        key, _, value = part.partition("=")
        if not key:
            raise InvalidComputeName(f"malformed parameter {part!r} (empty key)")
        if key in params:
            raise InvalidComputeName(f"duplicate parameter {key!r}")
        params[key] = urllib.parse.unquote(value)
    return params


def compute_name(params: Mapping[str, object]) -> Name:
    """Build a ``/ndn/k8s/compute/<params>`` name."""
    return COMPUTE_PREFIX.append(encode_params(params))


def parse_compute_name(name: "Name | str") -> dict[str, str]:
    """Parse a compute name back into its parameter dict."""
    name = Name(name)
    if not COMPUTE_PREFIX.is_prefix_of(name):
        raise InvalidComputeName(f"{name} is not under {COMPUTE_PREFIX}")
    if len(name) != len(COMPUTE_PREFIX) + 1:
        raise InvalidComputeName(
            f"{name} must have exactly one parameter component after {COMPUTE_PREFIX}"
        )
    return decode_params(name.last().to_str())


def canonical_compute_name(params: Mapping[str, str]) -> Name:
    """Build a compute name with alias keys folded onto their canonical form.

    ``{"app": "X", "memory": "8"}`` and ``{"app": "X", "mem": "8"}`` produce
    the same name, so alias spellings cannot split on-path content-store
    entries or the gateway result cache.
    """
    return compute_name(BASE_SCHEMA.canonicalise(params))


def parse_typed_compute_name(name: "Name | str") -> tuple[dict[str, Any], dict[str, str]]:
    """Parse a compute name into (typed base fields, extra string params)."""
    return BASE_SCHEMA.parse(parse_compute_name(name))


def status_name(job_id: str) -> Name:
    """Build a ``/ndn/k8s/status/<job-id>`` name."""
    if not job_id:
        raise InvalidComputeName("empty job id")
    return STATUS_PREFIX.append(job_id)


def parse_status_name(name: "Name | str") -> str:
    """Extract the job id from a status name."""
    name = Name(name)
    if not STATUS_PREFIX.is_prefix_of(name) or len(name) < len(STATUS_PREFIX) + 1:
        raise InvalidComputeName(f"{name} is not a status name")
    return name[len(STATUS_PREFIX)].to_str()


def data_name(dataset_id: str) -> Name:
    """Build a ``/ndn/k8s/data/<dataset>`` name."""
    if not dataset_id:
        raise InvalidComputeName("empty dataset id")
    return DATA_PREFIX.append(dataset_id)


def canonical_request_key(params: Mapping[str, object]) -> str:
    """A canonical string key for a request — the basis of result caching.

    Resource amounts (cpu/mem) are excluded: two requests for the same
    application over the same datasets produce the same result regardless of
    the resources they were granted.
    """
    significant = {
        key: value
        for key, value in params.items()
        if key not in ("cpu", "mem", "memory", "req")
    }
    if not significant:
        significant = dict(params)
    return encode_params(significant)
