"""Compute request and job record types."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Optional

from repro.exceptions import InvalidComputeName
from repro.core import naming
from repro.core.service import BASE_SCHEMA
from repro.ndn.name import Name

__all__ = ["ComputeRequest", "JobState", "JobRecord"]


@dataclass(frozen=True)
class ComputeRequest:
    """A location-independent computation request.

    This is the client-side object; its :meth:`to_name` form is what actually
    travels through the network as an Interest name.
    """

    app: str
    cpu: float = 2
    memory_gb: float = 4
    dataset: Optional[str] = None
    reference: Optional[str] = None
    params: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.app:
            raise InvalidComputeName("compute request needs an application name")
        if self.cpu <= 0:
            raise InvalidComputeName(f"cpu must be positive, got {self.cpu}")
        if self.memory_gb <= 0:
            raise InvalidComputeName(f"memory_gb must be positive, got {self.memory_gb}")

    # -- naming ------------------------------------------------------------------

    def to_params(self) -> dict[str, str]:
        """The flat parameter dict encoded into the compute name."""
        params: dict[str, str] = {
            "app": self.app,
            "cpu": f"{self.cpu:g}",
            "mem": f"{self.memory_gb:g}",
        }
        if self.dataset is not None:
            params["srr"] = self.dataset
        if self.reference is not None:
            params["ref"] = self.reference
        for key, value in self.params.items():
            # Reject both the canonical built-in keys and their schema aliases
            # (memory, dataset): a name carrying `mem=...&memory=...` would be
            # rejected by from_params, so to_params must not build it.
            if key in params or BASE_SCHEMA.field_for(key) is not None:
                raise InvalidComputeName(f"parameter {key!r} collides with a built-in field")
            params[key] = str(value)
        return params

    def to_name(self) -> Name:
        """The ``/ndn/k8s/compute/...`` name for this request."""
        return naming.compute_name(self.to_params())

    @classmethod
    def from_params(cls, params: Mapping[str, str]) -> "ComputeRequest":
        """Rebuild a request from a decoded parameter dict.

        Parsing is schema-driven (:data:`repro.core.service.BASE_SCHEMA`):
        alias keys (``memory`` → ``mem``, ``dataset`` → ``srr``) are
        canonicalised at parse time, non-numeric resource values raise
        :class:`InvalidComputeName` rather than a bare ``ValueError``, and
        supplying a field under two spellings at once is rejected.
        """
        typed, extras = BASE_SCHEMA.parse(params)
        return cls(
            app=typed["app"],
            cpu=typed["cpu"],
            memory_gb=typed["mem"],
            dataset=typed["srr"],
            reference=typed["ref"],
            params=extras,
        )

    @classmethod
    def from_name(cls, name: "Name | str") -> "ComputeRequest":
        """Parse a compute Interest name into a request."""
        return cls.from_params(naming.parse_compute_name(name))

    def cache_key(self) -> str:
        """Canonical key for result caching (resource amounts excluded)."""
        return naming.canonical_request_key(self.to_params())

    def describe(self) -> str:
        extras = f" {self.params}" if self.params else ""
        return (
            f"{self.app}(dataset={self.dataset}, ref={self.reference}, "
            f"cpu={self.cpu:g}, mem={self.memory_gb:g}GB){extras}"
        )


class JobState(str, Enum):
    """The four states the paper's status API exposes (§IV-A)."""

    PENDING = "Pending"
    RUNNING = "Running"
    COMPLETED = "Completed"
    FAILED = "Failed"

    def is_terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED)


@dataclass
class JobRecord:
    """Gateway-side record of one accepted computation."""

    job_id: str
    request: ComputeRequest
    cluster: str
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result_name: Optional[Name] = None
    result_size_bytes: Optional[int] = None
    error: Optional[str] = None
    k8s_job_name: Optional[str] = None
    from_cache: bool = False

    @property
    def is_terminal(self) -> bool:
        return self.state.is_terminal()

    def runtime(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def turnaround(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def status_payload(self) -> dict:
        """The JSON document returned for ``/ndn/k8s/status/<job-id>``."""
        payload: dict = {
            "job_id": self.job_id,
            "state": self.state.value,
            "cluster": self.cluster,
            "app": self.request.app,
            "submitted_at": self.submitted_at,
        }
        if self.state == JobState.COMPLETED:
            payload["result_name"] = str(self.result_name) if self.result_name else None
            payload["result_size_bytes"] = self.result_size_bytes
            payload["runtime_s"] = self.runtime()
            payload["from_cache"] = self.from_cache
        elif self.state == JobState.FAILED:
            payload["error"] = self.error or "unknown error"
        return payload
