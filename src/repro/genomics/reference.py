"""Reference databases and the k-mer index used for seeding alignments."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import GenomicsError
from repro.genomics.sequences import FastaRecord, reverse_complement

__all__ = ["KmerIndex", "ReferenceDatabase", "HUMAN_REFERENCE_SIZE_BYTES"]

#: Approximate size of the human reference (GRCh38 FASTA), used for data-lake
#: sizing when the reference is a placeholder.
HUMAN_REFERENCE_SIZE_BYTES = 3_200_000_000


class KmerIndex:
    """An exact k-mer index over a set of reference contigs."""

    def __init__(self, k: int = 11) -> None:
        if k < 4 or k > 32:
            raise GenomicsError(f"k must lie in [4, 32], got {k}")
        self.k = k
        self._index: dict[str, list[tuple[str, int]]] = defaultdict(list)
        self._contig_lengths: dict[str, int] = {}

    def add(self, record: FastaRecord) -> None:
        """Index every k-mer of one contig."""
        sequence = record.sequence.upper()
        self._contig_lengths[record.identifier] = len(sequence)
        for offset in range(0, len(sequence) - self.k + 1):
            kmer = sequence[offset:offset + self.k]
            if "N" in kmer:
                continue
            self._index[kmer].append((record.identifier, offset))

    def lookup(self, kmer: str) -> list[tuple[str, int]]:
        """All (contig, offset) positions of a k-mer."""
        if len(kmer) != self.k:
            raise GenomicsError(f"expected a {self.k}-mer, got length {len(kmer)}")
        return list(self._index.get(kmer.upper(), ()))

    def seeds_for(self, read: str, stride: int = 1) -> list[tuple[int, str, int]]:
        """Seed hits for a read: ``(read_offset, contig, contig_offset)`` triples."""
        read = read.upper()
        seeds = []
        for read_offset in range(0, len(read) - self.k + 1, stride):
            kmer = read[read_offset:read_offset + self.k]
            for contig, contig_offset in self._index.get(kmer, ()):
                seeds.append((read_offset, contig, contig_offset))
        return seeds

    @property
    def distinct_kmers(self) -> int:
        return len(self._index)

    @property
    def total_positions(self) -> int:
        return sum(len(positions) for positions in self._index.values())

    def contig_length(self, contig: str) -> int:
        try:
            return self._contig_lengths[contig]
        except KeyError:
            raise GenomicsError(f"unknown contig {contig!r}") from None


@dataclass
class ReferenceDatabase:
    """A named reference database (the paper's ``HUMAN`` reference).

    Small synthetic references carry their contigs and a k-mer index; paper-
    scale references are represented by a declared size (placeholder mode) —
    the runtime model consumes only the metadata.
    """

    name: str
    organism: str
    contigs: list[FastaRecord] = field(default_factory=list)
    declared_size_bytes: Optional[int] = None
    kmer_size: int = 11
    _index: Optional[KmerIndex] = None

    KNOWN_REFERENCES = {
        "HUMAN": ("Homo sapiens", HUMAN_REFERENCE_SIZE_BYTES),
        "RICE": ("Oryza sativa", 400_000_000),
        "MOUSE": ("Mus musculus", 2_800_000_000),
    }

    @classmethod
    def placeholder(cls, name: str) -> "ReferenceDatabase":
        """A paper-scale reference with no sequence payload."""
        if name not in cls.KNOWN_REFERENCES:
            raise GenomicsError(f"unknown reference database {name!r}")
        organism, size = cls.KNOWN_REFERENCES[name]
        return cls(name=name, organism=organism, declared_size_bytes=size)

    @classmethod
    def from_contigs(cls, name: str, contigs: Iterable[FastaRecord], organism: str = "synthetic",
                     kmer_size: int = 11) -> "ReferenceDatabase":
        """A small, fully-materialised reference."""
        db = cls(name=name, organism=organism, contigs=list(contigs), kmer_size=kmer_size)
        db.build_index()
        return db

    # -- index --------------------------------------------------------------------

    def build_index(self) -> KmerIndex:
        """(Re)build the k-mer index over the contigs."""
        index = KmerIndex(k=self.kmer_size)
        for record in self.contigs:
            index.add(record)
        self._index = index
        return index

    @property
    def index(self) -> KmerIndex:
        if self._index is None:
            if not self.contigs:
                raise GenomicsError(
                    f"reference {self.name!r} is a placeholder and has no index"
                )
            self.build_index()
        assert self._index is not None
        return self._index

    # -- metadata -------------------------------------------------------------------

    @property
    def is_placeholder(self) -> bool:
        return not self.contigs

    @property
    def total_length(self) -> int:
        """Total number of reference bases (declared size for placeholders)."""
        if self.contigs:
            return sum(len(record) for record in self.contigs)
        return self.declared_size_bytes or 0

    @property
    def size_bytes(self) -> int:
        """Approximate on-disk FASTA size."""
        if self.declared_size_bytes is not None:
            return self.declared_size_bytes
        return sum(len(record) for record in self.contigs) + 80 * len(self.contigs)

    def find_contig(self, identifier: str) -> FastaRecord:
        for record in self.contigs:
            if record.identifier == identifier:
                return record
        raise GenomicsError(f"no contig {identifier!r} in reference {self.name!r}")

    def contains_sequence(self, fragment: str) -> bool:
        """Exact substring search (forward or reverse complement) over contigs."""
        fragment = fragment.upper()
        rc = reverse_complement(fragment)
        return any(
            fragment in record.sequence.upper() or rc in record.sequence.upper()
            for record in self.contigs
        )
