"""Synthetic nucleotide sequences, FASTA/FASTQ records and read simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.exceptions import GenomicsError
from repro.sim.rng import SeededRNG

__all__ = [
    "NUCLEOTIDES",
    "reverse_complement",
    "gc_content",
    "FastaRecord",
    "FastqRecord",
    "SequenceGenerator",
    "write_fasta",
    "write_fastq",
]

NUCLEOTIDES = "ACGT"
_COMPLEMENT = str.maketrans("ACGTacgt", "TGCAtgca")


def reverse_complement(sequence: str) -> str:
    """The reverse complement of a DNA sequence."""
    _validate(sequence)
    return sequence.translate(_COMPLEMENT)[::-1]


def gc_content(sequence: str) -> float:
    """Fraction of G/C bases in the sequence."""
    _validate(sequence)
    if not sequence:
        return 0.0
    upper = sequence.upper()
    return (upper.count("G") + upper.count("C")) / len(upper)


def _validate(sequence: str) -> None:
    if not set(sequence.upper()) <= set(NUCLEOTIDES + "N"):
        invalid = sorted(set(sequence.upper()) - set(NUCLEOTIDES + "N"))
        raise GenomicsError(f"invalid nucleotide characters: {invalid}")


@dataclass(frozen=True)
class FastaRecord:
    """A named sequence (reference contigs, genes)."""

    identifier: str
    sequence: str
    description: str = ""

    def __len__(self) -> int:
        return len(self.sequence)

    def to_fasta(self, width: int = 70) -> str:
        header = f">{self.identifier}"
        if self.description:
            header += f" {self.description}"
        lines = [header]
        for offset in range(0, len(self.sequence), width):
            lines.append(self.sequence[offset:offset + width])
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class FastqRecord:
    """A sequenced read with per-base quality scores."""

    identifier: str
    sequence: str
    qualities: str = ""

    def __len__(self) -> int:
        return len(self.sequence)

    def to_fastq(self) -> str:
        qualities = self.qualities or "I" * len(self.sequence)
        return f"@{self.identifier}\n{self.sequence}\n+\n{qualities}\n"

    def mean_quality(self) -> float:
        """Mean Phred quality score of the read."""
        if not self.qualities:
            return 40.0
        return float(np.mean([ord(ch) - 33 for ch in self.qualities]))


class SequenceGenerator:
    """Deterministic generator of genomes and sequencing reads."""

    def __init__(self, rng: Optional[SeededRNG] = None, seed: int = 0) -> None:
        self.rng = rng or SeededRNG(seed)

    # -- genomes -----------------------------------------------------------------

    def random_genome(self, length: int, name: str = "contig-1", gc_bias: float = 0.5) -> FastaRecord:
        """A random genome with the requested GC bias."""
        if length <= 0:
            raise GenomicsError(f"genome length must be positive, got {length}")
        if not 0.0 < gc_bias < 1.0:
            raise GenomicsError(f"gc_bias must lie in (0, 1), got {gc_bias}")
        probabilities = np.array(
            [(1 - gc_bias) / 2, gc_bias / 2, gc_bias / 2, (1 - gc_bias) / 2]
        )
        stream = self.rng.stream(f"genome:{name}")
        indices = stream.choice(4, size=length, p=probabilities)
        sequence = "".join(NUCLEOTIDES[i] for i in indices)
        return FastaRecord(identifier=name, sequence=sequence, description="synthetic genome")

    def mutate(self, record: FastaRecord, mutation_rate: float, name: Optional[str] = None) -> FastaRecord:
        """Introduce point mutations at the given per-base rate."""
        if not 0.0 <= mutation_rate <= 1.0:
            raise GenomicsError(f"mutation rate must lie in [0, 1], got {mutation_rate}")
        stream = self.rng.stream(f"mutate:{record.identifier}")
        bases = list(record.sequence)
        n_mutations = stream.binomial(len(bases), mutation_rate)
        positions = stream.choice(len(bases), size=min(n_mutations, len(bases)), replace=False)
        for pos in positions:
            current = bases[pos]
            alternatives = [b for b in NUCLEOTIDES if b != current.upper()]
            bases[pos] = alternatives[int(stream.integers(0, len(alternatives)))]
        return FastaRecord(
            identifier=name or f"{record.identifier}-mut",
            sequence="".join(bases),
            description=f"mutated copy of {record.identifier} (rate={mutation_rate})",
        )

    # -- reads --------------------------------------------------------------------

    def simulate_reads(
        self,
        genome: FastaRecord,
        read_count: int,
        read_length: int = 100,
        error_rate: float = 0.005,
        prefix: str = "read",
    ) -> list[FastqRecord]:
        """Sample reads uniformly from the genome, with sequencing errors."""
        if read_length > len(genome):
            raise GenomicsError(
                f"read length {read_length} exceeds genome length {len(genome)}"
            )
        stream = self.rng.stream(f"reads:{genome.identifier}:{prefix}")
        reads = []
        max_start = len(genome) - read_length
        for index in range(read_count):
            start = int(stream.integers(0, max_start + 1))
            fragment = genome.sequence[start:start + read_length]
            if stream.random() < 0.5:
                fragment = reverse_complement(fragment)
            bases = list(fragment)
            n_errors = stream.binomial(read_length, error_rate)
            if n_errors:
                error_positions = stream.choice(read_length, size=n_errors, replace=False)
                for pos in error_positions:
                    current = bases[pos]
                    alternatives = [b for b in NUCLEOTIDES if b != current.upper()]
                    bases[pos] = alternatives[int(stream.integers(0, len(alternatives)))]
            qualities = "".join(
                chr(33 + int(q)) for q in stream.integers(30, 41, size=read_length)
            )
            reads.append(
                FastqRecord(
                    identifier=f"{prefix}.{index}",
                    sequence="".join(bases),
                    qualities=qualities,
                )
            )
        return reads

    def random_reads(self, read_count: int, read_length: int = 100,
                     prefix: str = "noise") -> list[FastqRecord]:
        """Reads drawn at random (no relation to any genome) — negative controls."""
        stream = self.rng.stream(f"random-reads:{prefix}")
        reads = []
        for index in range(read_count):
            indices = stream.integers(0, 4, size=read_length)
            sequence = "".join(NUCLEOTIDES[i] for i in indices)
            reads.append(FastqRecord(identifier=f"{prefix}.{index}", sequence=sequence))
        return reads


def write_fasta(records: Iterable[FastaRecord]) -> str:
    """Serialise records to FASTA text."""
    return "".join(record.to_fasta() for record in records)


def write_fastq(records: Iterable[FastqRecord]) -> str:
    """Serialise records to FASTQ text."""
    return "".join(record.to_fastq() for record in records)
