"""Sequence Read Archive accessions (SRR ids) and their registry.

The paper's gateway performs application-specific validation of SRR ids
(§IV-B) and its data-loading tool downloads two specific samples (§V-B):

* ``SRR2931415`` — rice RNA-seq (one of the 99-sample heat/dehydration
  stress time series);
* ``SRR5139395`` — human kidney tumour RNA-seq (one of the 36-sample
  nephrectomy study).

The registry stores per-accession metadata (organism, genome type, read
counts, download size) used by the runtime model and the data lake.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import UnknownAccession

__all__ = ["is_valid_srr_id", "SraAccession", "SraRegistry", "PAPER_ACCESSIONS"]

_SRR_RE = re.compile(r"^[SED]RR\d{6,9}$")


def is_valid_srr_id(accession: str) -> bool:
    """Syntactic validation of an SRA run accession (SRR/ERR/DRR + 6-9 digits)."""
    return bool(_SRR_RE.match(accession or ""))


@dataclass(frozen=True)
class SraAccession:
    """Metadata for one SRA run."""

    accession: str
    organism: str
    genome_type: str  # e.g. "RICE", "KIDNEY" — the label used in Table I
    read_count: int
    read_length: int
    size_bytes: int
    study: str = ""
    layout: str = "SINGLE"

    def __post_init__(self) -> None:
        if not is_valid_srr_id(self.accession):
            raise UnknownAccession(f"malformed SRA accession {self.accession!r}")

    @property
    def base_count(self) -> int:
        """Total number of sequenced bases."""
        return self.read_count * self.read_length


#: The two samples evaluated in the paper's Table I, with sizes representative
#: of the public SRA entries (download sizes; used only for modelling).
PAPER_ACCESSIONS: tuple[SraAccession, ...] = (
    SraAccession(
        accession="SRR2931415",
        organism="Oryza sativa",
        genome_type="RICE",
        read_count=21_500_000,
        read_length=101,
        size_bytes=1_600_000_000,
        study="Rice gene expression in heat stress and dehydration stress",
        layout="SINGLE",
    ),
    SraAccession(
        accession="SRR5139395",
        organism="Homo sapiens",
        genome_type="KIDNEY",
        read_count=62_000_000,
        read_length=100,
        size_bytes=4_700_000_000,
        study="RNA-seq of non-tumor kidney tissues (sorafenib metabolism)",
        layout="PAIRED",
    ),
)


class SraRegistry:
    """An in-memory catalogue of SRA accessions."""

    def __init__(self, include_paper_accessions: bool = True) -> None:
        self._accessions: dict[str, SraAccession] = {}
        if include_paper_accessions:
            for accession in PAPER_ACCESSIONS:
                self.register(accession)

    def register(self, accession: SraAccession) -> SraAccession:
        """Add (or replace) an accession in the registry."""
        self._accessions[accession.accession] = accession
        return accession

    def register_synthetic(
        self,
        accession: str,
        genome_type: str,
        read_count: int,
        read_length: int = 100,
        organism: str = "synthetic",
        bytes_per_read: float = 75.0,
    ) -> SraAccession:
        """Register a synthetic sample sized from its read count."""
        entry = SraAccession(
            accession=accession,
            organism=organism,
            genome_type=genome_type,
            read_count=read_count,
            read_length=read_length,
            size_bytes=int(read_count * bytes_per_read),
            study="synthetic sample",
        )
        return self.register(entry)

    def get(self, accession: str) -> SraAccession:
        """Look up an accession; raises :class:`UnknownAccession` when absent."""
        try:
            return self._accessions[accession]
        except KeyError:
            raise UnknownAccession(f"accession {accession!r} is not in the registry") from None

    def try_get(self, accession: str) -> Optional[SraAccession]:
        return self._accessions.get(accession)

    def __contains__(self, accession: str) -> bool:
        return accession in self._accessions

    def __len__(self) -> int:
        return len(self._accessions)

    def accessions(self) -> list[SraAccession]:
        return sorted(self._accessions.values(), key=lambda acc: acc.accession)

    def by_genome_type(self, genome_type: str) -> list[SraAccession]:
        return [acc for acc in self.accessions() if acc.genome_type == genome_type]

    def validate(self, accession: str, require_known: bool = True) -> tuple[bool, str]:
        """Validate an accession the way the gateway's BLAST validator does.

        Returns ``(ok, message)``.
        """
        if not is_valid_srr_id(accession):
            return False, f"malformed SRR id {accession!r}"
        if require_known and accession not in self:
            return False, f"SRR id {accession!r} not present in the data lake"
        return True, "ok"

    def update(self, accessions: Iterable[SraAccession]) -> None:
        for accession in accessions:
            self.register(accession)
