"""A small-scale Magic-BLAST equivalent: seed-and-extend read alignment.

This is a genuine aligner (k-mer seeding, ungapped extension with a simple
match/mismatch score, best-hit selection) that the tests and examples run on
synthetic genomes, so the end-to-end compute path of the reproduction —
gateway → job → aligner → compressed output → data lake — is real.  The
paper-scale runs in the benchmarks use :mod:`repro.genomics.runtime_model`
instead of executing the aligner on billions of bases.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import GenomicsError
from repro.genomics.reference import ReferenceDatabase
from repro.genomics.sequences import FastqRecord, reverse_complement

__all__ = ["Alignment", "BlastResult", "MagicBlast"]


@dataclass(frozen=True)
class Alignment:
    """One read-to-reference alignment."""

    read_id: str
    contig: str
    read_start: int
    contig_start: int
    length: int
    matches: int
    mismatches: int
    strand: str = "+"

    @property
    def identity(self) -> float:
        """Fraction of aligned positions that match."""
        return self.matches / self.length if self.length else 0.0

    @property
    def score(self) -> int:
        """Simple alignment score: +2 per match, -3 per mismatch."""
        return 2 * self.matches - 3 * self.mismatches

    def to_tab(self) -> str:
        """A BLAST-tabular-style output line."""
        return (
            f"{self.read_id}\t{self.contig}\t{self.identity * 100:.2f}\t{self.length}\t"
            f"{self.mismatches}\t{self.read_start}\t{self.contig_start}\t{self.strand}\t{self.score}"
        )


@dataclass
class BlastResult:
    """The outcome of aligning a read set against a reference."""

    reference: str
    total_reads: int
    aligned_reads: int
    alignments: list[Alignment] = field(default_factory=list)
    output: bytes = b""

    @property
    def alignment_rate(self) -> float:
        return self.aligned_reads / self.total_reads if self.total_reads else 0.0

    @property
    def output_size_bytes(self) -> int:
        return len(self.output)

    def report_text(self) -> str:
        """Human-readable report (decompressed tabular output)."""
        return zlib.decompress(self.output).decode("utf-8") if self.output else ""


class MagicBlast:
    """Seed-and-extend aligner over a :class:`ReferenceDatabase`."""

    def __init__(
        self,
        reference: ReferenceDatabase,
        min_seed_hits: int = 1,
        min_identity: float = 0.8,
        seed_stride: int = 4,
    ) -> None:
        if reference.is_placeholder:
            raise GenomicsError(
                "MagicBlast needs a materialised reference; placeholders are for the runtime model"
            )
        if not 0.0 < min_identity <= 1.0:
            raise GenomicsError(f"min_identity must lie in (0, 1], got {min_identity}")
        self.reference = reference
        self.min_seed_hits = min_seed_hits
        self.min_identity = min_identity
        self.seed_stride = max(1, seed_stride)

    # -- alignment of a single read ------------------------------------------------

    def align_read(self, read: FastqRecord) -> Optional[Alignment]:
        """Best alignment of one read, or ``None`` when it does not map."""
        best: Optional[Alignment] = None
        for strand, sequence in (("+", read.sequence), ("-", reverse_complement(read.sequence))):
            candidate = self._align_oriented(read.identifier, sequence, strand)
            if candidate is None:
                continue
            if best is None or candidate.score > best.score:
                best = candidate
        if best is not None and best.identity >= self.min_identity:
            return best
        return None

    def _align_oriented(self, read_id: str, sequence: str, strand: str) -> Optional[Alignment]:
        index = self.reference.index
        seeds = index.seeds_for(sequence, stride=self.seed_stride)
        if len(seeds) < self.min_seed_hits:
            return None
        # Group seeds by implied alignment diagonal (contig, contig_start - read_start).
        diagonals: dict[tuple[str, int], int] = {}
        for read_offset, contig, contig_offset in seeds:
            key = (contig, contig_offset - read_offset)
            diagonals[key] = diagonals.get(key, 0) + 1
        (contig, diagonal), _count = max(diagonals.items(), key=lambda item: (item[1], item[0][0]))
        return self._extend(read_id, sequence, contig, diagonal, strand)

    def _extend(self, read_id: str, sequence: str, contig: str, diagonal: int,
                strand: str) -> Optional[Alignment]:
        contig_record = self.reference.find_contig(contig)
        contig_seq = contig_record.sequence.upper()
        read_seq = sequence.upper()
        contig_start = diagonal
        read_start = 0
        if contig_start < 0:
            read_start = -contig_start
            contig_start = 0
        length = min(len(read_seq) - read_start, len(contig_seq) - contig_start)
        if length <= 0:
            return None
        matches = sum(
            1 for i in range(length)
            if read_seq[read_start + i] == contig_seq[contig_start + i]
        )
        mismatches = length - matches
        return Alignment(
            read_id=read_id,
            contig=contig,
            read_start=read_start,
            contig_start=contig_start,
            length=length,
            matches=matches,
            mismatches=mismatches,
            strand=strand,
        )

    # -- aligning a whole read set -----------------------------------------------------

    def run(self, reads: Iterable[FastqRecord]) -> BlastResult:
        """Align every read; produce the compressed tabular output file."""
        reads = list(reads)
        alignments = []
        for read in reads:
            alignment = self.align_read(read)
            if alignment is not None:
                alignments.append(alignment)
        header = (
            "# repro-magicblast 1.0\n"
            f"# reference: {self.reference.name}\n"
            "# fields: read, contig, identity, length, mismatches, read_start, "
            "contig_start, strand, score\n"
        )
        body = "\n".join(alignment.to_tab() for alignment in alignments)
        output = zlib.compress((header + body + "\n").encode("utf-8"), level=6)
        return BlastResult(
            reference=self.reference.name,
            total_reads=len(reads),
            aligned_reads=len(alignments),
            alignments=alignments,
            output=output,
        )
