"""Calibrated runtime and output-size model for paper-scale BLAST runs.

Table I of the paper reports four Magic-BLAST runs:

========== ========= ======= ====== === =========== ===========
SRR id     Reference Genome  Memory CPU Run time    Output size
========== ========= ======= ====== === =========== ===========
SRR2931415 HUMAN     RICE    4 GB   2   8h 9m 50s   941 MB
SRR2931415 HUMAN     RICE    4 GB   4   8h 7m 10s   941 MB
SRR5139395 HUMAN     KIDNEY  4 GB   2   24h 16m 12s 2.71 GB
SRR5139395 HUMAN     KIDNEY  6 GB   2   24h 2m 47s  2.71 GB
========== ========= ======= ====== === =========== ===========

The paper's takeaway is that varying the CPU/memory allocation barely moves
the runtime.  We model the runtime as

    T(sample, cpu, mem) = A + B / cpu + C / mem_gb          (seconds)

with per-sample coefficients fitted so that the four table rows are matched
to within a fraction of a percent, the CPU term stays a ~2 % effect and the
memory term a ~3 % effect — reproducing the "no significant change" shape.
Unknown samples get coefficients extrapolated from their base count relative
to the calibrated samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import GenomicsError, UnknownAccession
from repro.genomics.sra import SraAccession, SraRegistry
from repro.sim.rng import SeededRNG

__all__ = ["Table1Row", "TABLE1_ROWS", "RunEstimate", "BlastRuntimeModel", "parse_runtime", "format_runtime"]


def parse_runtime(text: str) -> float:
    """Parse ``"8h9m50s"`` into seconds."""
    seconds = 0.0
    number = ""
    for char in text.replace(" ", ""):
        if char.isdigit():
            number += char
        elif char in "hms":
            if not number:
                raise GenomicsError(f"malformed runtime string {text!r}")
            value = int(number)
            seconds += value * {"h": 3600, "m": 60, "s": 1}[char]
            number = ""
        else:
            raise GenomicsError(f"malformed runtime string {text!r}")
    if number:
        raise GenomicsError(f"malformed runtime string {text!r} (trailing {number!r})")
    return seconds


def format_runtime(seconds: float) -> str:
    """Format seconds as ``"8h9m50s"`` (the paper's notation)."""
    seconds = int(round(seconds))
    hours, remainder = divmod(seconds, 3600)
    minutes, secs = divmod(remainder, 60)
    return f"{hours}h{minutes}m{secs}s"


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    srr_id: str
    reference: str
    genome_type: str
    memory_gb: float
    cpu: int
    run_time_s: float
    output_size_bytes: int

    @property
    def run_time_text(self) -> str:
        return format_runtime(self.run_time_s)


#: The paper's Table I, verbatim (runtimes converted to seconds).
TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row("SRR2931415", "HUMAN", "RICE", 4, 2, parse_runtime("8h9m50s"), 941_000_000),
    Table1Row("SRR2931415", "HUMAN", "RICE", 4, 4, parse_runtime("8h7m10s"), 941_000_000),
    Table1Row("SRR5139395", "HUMAN", "KIDNEY", 4, 2, parse_runtime("24h16m12s"), 2_710_000_000),
    Table1Row("SRR5139395", "HUMAN", "KIDNEY", 6, 2, parse_runtime("24h2m47s"), 2_710_000_000),
)


@dataclass(frozen=True)
class RunEstimate:
    """A modelled run: duration and output size."""

    srr_id: str
    reference: str
    cpu: float
    memory_gb: float
    runtime_s: float
    output_size_bytes: int

    @property
    def runtime_text(self) -> str:
        return format_runtime(self.runtime_s)


@dataclass(frozen=True)
class _SampleCoefficients:
    serial_s: float      # A
    cpu_s: float         # B (divided by the CPU count)
    memory_s: float      # C (divided by the memory in GB)
    output_bytes: int


class BlastRuntimeModel:
    """Runtime / output-size model calibrated against Table I."""

    #: Calibrated coefficients for the two paper samples.
    #:
    #: Rice rows differ only in CPU (2 vs 4): ΔT = 160 s = B (1/2 − 1/4) → B = 640 s.
    #: Kidney rows differ only in memory (4 vs 6 GB): ΔT = 805 s = C (1/4 − 1/6) → C = 9660 s.
    #: The remaining coefficients keep each row exact while giving the other
    #: term a comparable relative magnitude for the sample it was not measured on.
    _CALIBRATED = {
        "SRR2931415": _SampleCoefficients(
            serial_s=28_262.0, cpu_s=640.0, memory_s=3_232.0, output_bytes=941_000_000
        ),
        "SRR5139395": _SampleCoefficients(
            serial_s=84_007.0, cpu_s=1_900.0, memory_s=9_660.0, output_bytes=2_710_000_000
        ),
    }

    #: Reference sample used to extrapolate coefficients for unknown accessions.
    _BASELINE_ACCESSION = "SRR2931415"
    _BASELINE_BASES = 21_500_000 * 101

    def __init__(
        self,
        registry: Optional[SraRegistry] = None,
        rng: Optional[SeededRNG] = None,
        noise_fraction: float = 0.0,
    ) -> None:
        self.registry = registry or SraRegistry()
        self.rng = rng or SeededRNG(0)
        if noise_fraction < 0 or noise_fraction >= 0.5:
            raise GenomicsError(f"noise_fraction must lie in [0, 0.5), got {noise_fraction}")
        self.noise_fraction = noise_fraction

    # -- coefficients -----------------------------------------------------------------

    def coefficients(self, srr_id: str) -> _SampleCoefficients:
        """Calibrated (or extrapolated) coefficients for one sample."""
        if srr_id in self._CALIBRATED:
            return self._CALIBRATED[srr_id]
        accession = self.registry.try_get(srr_id)
        if accession is None:
            raise UnknownAccession(f"no metadata for accession {srr_id!r}")
        scale = accession.base_count / self._BASELINE_BASES
        base = self._CALIBRATED[self._BASELINE_ACCESSION]
        return _SampleCoefficients(
            serial_s=base.serial_s * scale,
            cpu_s=base.cpu_s * scale,
            memory_s=base.memory_s * scale,
            output_bytes=int(base.output_bytes * scale),
        )

    # -- estimation --------------------------------------------------------------------

    def estimate(self, srr_id: str, reference: str = "HUMAN", cpu: float = 2,
                 memory_gb: float = 4) -> RunEstimate:
        """Estimate runtime and output size for one configuration."""
        if cpu <= 0:
            raise GenomicsError(f"cpu must be positive, got {cpu}")
        if memory_gb <= 0:
            raise GenomicsError(f"memory_gb must be positive, got {memory_gb}")
        coeff = self.coefficients(srr_id)
        runtime = coeff.serial_s + coeff.cpu_s / cpu + coeff.memory_s / memory_gb
        if self.noise_fraction:
            jitter = self.rng.normal(0.0, self.noise_fraction, stream=f"runtime:{srr_id}")
            runtime *= max(0.5, 1.0 + jitter)
        return RunEstimate(
            srr_id=srr_id,
            reference=reference,
            cpu=cpu,
            memory_gb=memory_gb,
            runtime_s=runtime,
            output_size_bytes=coeff.output_bytes,
        )

    def runtime_seconds(self, srr_id: str, cpu: float = 2, memory_gb: float = 4) -> float:
        """Just the runtime, in (simulated) seconds."""
        return self.estimate(srr_id, cpu=cpu, memory_gb=memory_gb).runtime_s

    def output_size_bytes(self, srr_id: str) -> int:
        return self.coefficients(srr_id).output_bytes

    # -- validation against the paper -----------------------------------------------------

    def reproduce_table1(self) -> list[tuple[Table1Row, RunEstimate]]:
        """Model estimate next to every paper row (used by the Table I bench)."""
        return [
            (row, self.estimate(row.srr_id, row.reference, cpu=row.cpu, memory_gb=row.memory_gb))
            for row in TABLE1_ROWS
        ]

    def max_relative_error(self) -> float:
        """Largest |model − paper| / paper over Table I (should be ≪ 1 %)."""
        errors = [
            abs(estimate.runtime_s - row.run_time_s) / row.run_time_s
            for row, estimate in self.reproduce_table1()
        ]
        return max(errors)
