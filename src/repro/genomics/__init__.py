"""Genomics workload: the reproduction's Magic-BLAST equivalent.

The paper's evaluation BLASTs two Sequence Read Archive samples (a rice RNA
sample and a human kidney tumour RNA sample) against a human reference
database on different CPU/memory allocations (Table I).  We cannot ship NCBI
Magic-BLAST or the multi-gigabyte datasets, so this package provides:

* :mod:`repro.genomics.sequences` — synthetic DNA/RNA sequences, FASTA/FASTQ
  records and read simulation;
* :mod:`repro.genomics.sra` — an SRA accession registry with the paper's
  SRR2931415 and SRR5139395 samples plus SRR-id validation;
* :mod:`repro.genomics.reference` — reference databases with a k-mer index;
* :mod:`repro.genomics.blast` — a real (small-scale) seed-and-extend aligner
  that exercises the genuine compute path on synthetic data;
* :mod:`repro.genomics.runtime_model` — a runtime / output-size model
  calibrated against Table I, used when simulating paper-scale runs.
"""

from repro.genomics.sequences import (
    FastaRecord,
    FastqRecord,
    SequenceGenerator,
    reverse_complement,
)
from repro.genomics.sra import SraAccession, SraRegistry, is_valid_srr_id
from repro.genomics.reference import KmerIndex, ReferenceDatabase
from repro.genomics.blast import Alignment, BlastResult, MagicBlast
from repro.genomics.runtime_model import (
    BlastRuntimeModel,
    RunEstimate,
    TABLE1_ROWS,
    Table1Row,
)

__all__ = [
    "FastaRecord",
    "FastqRecord",
    "SequenceGenerator",
    "reverse_complement",
    "SraAccession",
    "SraRegistry",
    "is_valid_srr_id",
    "ReferenceDatabase",
    "KmerIndex",
    "MagicBlast",
    "Alignment",
    "BlastResult",
    "BlastRuntimeModel",
    "RunEstimate",
    "Table1Row",
    "TABLE1_ROWS",
]
