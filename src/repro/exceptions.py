"""Exception hierarchy shared across the LIDC reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch reproduction-level failures without swallowing genuine
programming errors (``TypeError``, ``ValueError`` from third-party code, …).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for simulation-kernel errors."""


class SimStopped(SimulationError):
    """Raised internally to unwind a process when the simulation stops."""


class ProcessInterrupt(SimulationError):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.engine.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# ---------------------------------------------------------------------------
# NDN substrate
# ---------------------------------------------------------------------------


class NDNError(ReproError):
    """Base class for NDN-layer errors."""


class NameError_(NDNError):
    """Malformed NDN name or component."""


class TLVDecodeError(NDNError):
    """Wire decoding failed (truncated or malformed TLV)."""


class InterestTimeout(NDNError):
    """An expressed Interest was not satisfied within its lifetime."""

    def __init__(self, name: object, lifetime: float) -> None:
        super().__init__(f"interest {name} timed out after {lifetime}s")
        self.name = name
        self.lifetime = lifetime


class InterestNacked(NDNError):
    """An expressed Interest was answered with a network NACK."""

    def __init__(self, name: object, reason: str) -> None:
        super().__init__(f"interest {name} nacked: {reason}")
        self.name = name
        self.reason = reason


class NoRouteError(NDNError):
    """The FIB has no route for the requested prefix."""


class VerificationError(NDNError):
    """Signature or digest verification failed."""


# ---------------------------------------------------------------------------
# Cluster orchestrator
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster-orchestrator errors."""


class ObjectNotFound(ClusterError):
    """API object lookup failed."""

    def __init__(self, kind: str, name: str, namespace: str | None = None) -> None:
        where = f" in namespace {namespace!r}" if namespace else ""
        super().__init__(f"{kind} {name!r} not found{where}")
        self.kind = kind
        self.name = name
        self.namespace = namespace


class ObjectAlreadyExists(ClusterError):
    """An API object with the same key already exists."""


class SchedulingError(ClusterError):
    """The scheduler could not place a pod."""


class InsufficientResources(SchedulingError):
    """No node has enough free CPU / memory for the pod."""


class QuantityParseError(ClusterError):
    """A Kubernetes-style resource quantity string could not be parsed."""


class StorageError(ClusterError):
    """PV / PVC provisioning or binding error."""


# ---------------------------------------------------------------------------
# Data lake
# ---------------------------------------------------------------------------


class DataLakeError(ReproError):
    """Base class for data-lake errors."""


class DatasetNotFound(DataLakeError):
    """The requested dataset is not present in the catalog."""


# ---------------------------------------------------------------------------
# Genomics workload
# ---------------------------------------------------------------------------


class GenomicsError(ReproError):
    """Base class for genomics workload errors."""


class UnknownAccession(GenomicsError):
    """An SRR accession is not present in the registry."""


# ---------------------------------------------------------------------------
# LIDC core
# ---------------------------------------------------------------------------


class LIDCError(ReproError):
    """Base class for LIDC-core errors."""


class InvalidComputeName(LIDCError):
    """A semantic compute name could not be parsed."""


class ValidationFailure(LIDCError):
    """An application-specific validator rejected the request."""


class UnknownApplication(LIDCError):
    """The requested application is not registered on the gateway."""


class JobNotFound(LIDCError):
    """Status request for an unknown job id."""


class PlacementError(LIDCError):
    """No cluster in the overlay can satisfy the request."""


class OverlayError(LIDCError):
    """Cluster overlay membership error."""
