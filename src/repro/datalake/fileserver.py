"""The file server: serves the data lake's contents over NDN.

Paper §III-C: "This router serves as a gateway to various internal
applications, including a data lake (which serves data under '/ndn/k8s/data')
and a file server that provides Genomics files."

The file server is an NDN producer attached to a forwarder (normally the
cluster's data-lake NFD).  It answers three request shapes:

* ``/ndn/k8s/data/<dataset>`` — the dataset manifest (JSON);
* ``/ndn/k8s/data/<dataset>/seg=<n>`` — one segment of a materialised
  dataset's payload;
* ``/ndn/k8s/data/_catalog`` — the catalogue listing.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.exceptions import DataLakeError, DatasetNotFound
from repro.datalake.repo import DataLake
from repro.ndn.client import Producer
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.ndn.packet import Data, InterestLike, Nack, NackReason, WirePacket
from repro.ndn.security import DigestSigner, HmacSigner
from repro.ndn.segmentation import DEFAULT_SEGMENT_SIZE, segment_content
from repro.sim.engine import Environment

__all__ = ["FileServer"]

CATALOG_COMPONENT = "_catalog"


class FileServer:
    """NDN producer serving a :class:`~repro.datalake.repo.DataLake`."""

    def __init__(
        self,
        env: Environment,
        forwarder: Forwarder,
        datalake: DataLake,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        signer: "DigestSigner | HmacSigner | None" = None,
        freshness_period: float = 60.0,
    ) -> None:
        self.env = env
        self.datalake = datalake
        self.segment_size = segment_size
        self.freshness_period = freshness_period
        self.requests_served = 0
        self.requests_failed = 0
        self._segment_cache: dict[str, list[Data]] = {}
        self.producer = Producer(
            env,
            forwarder,
            prefix=datalake.prefix,
            handler=self._handle,
            signer=signer,
            name=f"fileserver:{datalake.name}",
            freshness_period=freshness_period,
        )

    # -- request handling ------------------------------------------------------------

    def _handle(self, interest: InterestLike) -> "Data | Nack | WirePacket":
        try:
            return self._dispatch(interest)
        except (DatasetNotFound, DataLakeError):
            self.requests_failed += 1
            return interest.nack(NackReason.NO_ROUTE)

    def _dispatch(self, interest: InterestLike) -> Data:
        name = interest.name
        suffix = name.suffix(len(self.datalake.prefix))
        if len(suffix) == 0:
            raise DataLakeError("bare data-prefix request")
        first = suffix[0].to_str()
        self.requests_served += 1

        if first == CATALOG_COMPONENT:
            return self._make_data(name, json.dumps(self.datalake.catalog.listing()).encode("utf-8"))

        dataset_id = first
        record = self.datalake.get_record(dataset_id)

        if len(suffix) == 1:
            # Manifest request.
            return self._make_data(name, record.manifest_bytes())

        second = suffix[1].to_str()
        if second.startswith("seg="):
            segments = self._segments_for(dataset_id)
            index = int(second[len("seg="):])
            if index >= len(segments):
                raise DataLakeError(f"segment {index} out of range for {dataset_id}")
            return segments[index]
        if second == "manifest":
            return self._make_data(name, record.manifest_bytes())
        raise DataLakeError(f"unrecognised data request {name}")

    def _segments_for(self, dataset_id: str) -> list[Data]:
        if dataset_id not in self._segment_cache:
            payload = self.datalake.read_bytes(dataset_id)
            base = self.datalake.content_name(dataset_id)
            self._segment_cache[dataset_id] = segment_content(
                base, payload, segment_size=self.segment_size,
                signer=self.producer.signer, freshness_period=self.freshness_period,
            )
        return self._segment_cache[dataset_id]

    def _make_data(self, name: Name, payload: bytes) -> Data:
        return Data(
            name=name, content=payload, freshness_period=self.freshness_period
        ).sign(self.producer.signer)

    # -- cache maintenance ----------------------------------------------------------------

    def invalidate(self, dataset_id: Optional[str] = None) -> None:
        """Drop cached segments (after re-publication of a dataset)."""
        if dataset_id is None:
            self._segment_cache.clear()
        else:
            self._segment_cache.pop(dataset_id, None)

    def stats(self) -> dict[str, float]:
        return {
            "requests_served": float(self.requests_served),
            "requests_failed": float(self.requests_failed),
            "cached_objects": float(len(self._segment_cache)),
        }
