"""The named data lake.

LIDC pairs every compute cluster with a data lake reachable under the
``/ndn/k8s/data`` namespace (paper §III-C, §IV): raw datasets are retrieved
from it by name, and intermediate/final results are published back to it.

* :mod:`repro.datalake.catalog` — dataset records and the catalogue;
* :mod:`repro.datalake.repo` — the :class:`DataLake` itself (PVC-backed
  storage plus the catalogue plus name construction);
* :mod:`repro.datalake.fileserver` — the NDN producer that serves the lake's
  contents (manifests and segmented payloads) on a forwarder;
* :mod:`repro.datalake.loader` — the data-loading tool of paper §V-B that
  sets up the human reference database and the rice/kidney SRA samples.
"""

from repro.datalake.catalog import DataCatalog, DatasetKind, DatasetRecord
from repro.datalake.repo import DataLake
from repro.datalake.fileserver import FileServer
from repro.datalake.loader import DataLoadingTool, LoadReport

__all__ = [
    "DatasetRecord",
    "DatasetKind",
    "DataCatalog",
    "DataLake",
    "FileServer",
    "DataLoadingTool",
    "LoadReport",
]
