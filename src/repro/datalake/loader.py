"""The data-loading tool (paper §V-B).

"To evaluate the crucial step of creating and loading the PVCs of the data
lake with content to be published, LIDC provides a data loading tool that
downloads and sets up the human reference database and sample Sequence Read
Archive (SRA) genome files."

The tool creates the PVCs, loads the reference database and the SRA samples
(as sized placeholders at paper scale, or as real synthetic payloads for
small-scale runs), registers everything in the data-lake catalogue, and
reports what it loaded.  As the paper notes, this is a one-time operation that
does not contribute to later retrieval delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.datalake.catalog import DatasetKind
from repro.datalake.repo import DataLake
from repro.genomics.reference import ReferenceDatabase
from repro.genomics.sequences import SequenceGenerator, write_fasta, write_fastq
from repro.genomics.sra import SraRegistry

__all__ = ["LoadReport", "DataLoadingTool"]


@dataclass
class LoadReport:
    """What one loader invocation set up."""

    pvc_name: str
    datasets_loaded: list[str] = field(default_factory=list)
    total_bytes: int = 0
    elapsed_s: float = 0.0

    def add(self, dataset_id: str, size_bytes: int) -> None:
        self.datasets_loaded.append(dataset_id)
        self.total_bytes += size_bytes


class DataLoadingTool:
    """Sets up the data lake contents for a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        registry: Optional[SraRegistry] = None,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.registry = registry or SraRegistry()
        self.generator = SequenceGenerator(seed=seed)

    # -- PVC + lake creation --------------------------------------------------------------

    def create_datalake(self, pvc_name: str = "datalake-pvc", size: str = "200Gi",
                        lake_name: Optional[str] = None) -> DataLake:
        """Create the PVC and wrap it in a :class:`DataLake`."""
        pvc = self.cluster.create_pvc(pvc_name, size)
        return DataLake(
            pvc,
            name=lake_name or f"{self.cluster.name}-datalake",
            clock=lambda: self.cluster.env.now,
        )

    # -- paper-scale loading -----------------------------------------------------------------

    def load_paper_datasets(self, lake: DataLake) -> LoadReport:
        """Load the human reference plus the rice and kidney SRA samples (placeholders)."""
        start = self.cluster.env.now
        report = LoadReport(pvc_name=lake.pvc.name)

        reference = ReferenceDatabase.placeholder("HUMAN")
        record = lake.publish_placeholder(
            "human-reference",
            reference.size_bytes,
            kind=DatasetKind.REFERENCE,
            description="GRCh38 human reference database",
            metadata={"organism": reference.organism, "reference": reference.name},
        )
        report.add(record.dataset_id, record.size_bytes)

        for accession in self.registry.accessions():
            record = lake.publish_placeholder(
                accession.accession,
                accession.size_bytes,
                kind=DatasetKind.SRA_SAMPLE,
                description=accession.study,
                metadata={
                    "organism": accession.organism,
                    "genome_type": accession.genome_type,
                    "read_count": str(accession.read_count),
                    "read_length": str(accession.read_length),
                },
            )
            report.add(record.dataset_id, record.size_bytes)

        report.elapsed_s = self.cluster.env.now - start
        return report

    # -- small-scale (materialised) loading ------------------------------------------------------

    def load_synthetic_datasets(
        self,
        lake: DataLake,
        genome_length: int = 20_000,
        read_count: int = 200,
        sample_ids: tuple[str, ...] = ("SRR0000001", "SRR0000002"),
    ) -> LoadReport:
        """Load small synthetic datasets with real payloads (used by tests/examples)."""
        start = self.cluster.env.now
        report = LoadReport(pvc_name=lake.pvc.name)

        genome = self.generator.random_genome(genome_length, name="synthetic-chr1")
        reference_fasta = write_fasta([genome])
        record = lake.publish_bytes(
            "synthetic-reference",
            reference_fasta,
            kind=DatasetKind.REFERENCE,
            description="synthetic reference genome",
            metadata={"length": str(genome_length)},
        )
        report.add(record.dataset_id, record.size_bytes)

        for sample_id in sample_ids:
            reads = self.generator.simulate_reads(
                genome, read_count=read_count, read_length=100, prefix=sample_id
            )
            fastq = write_fastq(reads)
            if sample_id not in self.registry:
                self.registry.register_synthetic(
                    sample_id, genome_type="SYNTHETIC", read_count=read_count
                )
            record = lake.publish_bytes(
                sample_id,
                fastq,
                kind=DatasetKind.SRA_SAMPLE,
                description=f"synthetic SRA sample {sample_id}",
                metadata={"read_count": str(read_count), "genome_type": "SYNTHETIC"},
            )
            report.add(record.dataset_id, record.size_bytes)

        report.elapsed_s = self.cluster.env.now - start
        return report
