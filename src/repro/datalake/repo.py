"""The data lake: PVC-backed named storage with a catalogue.

The lake stores two classes of objects:

* *materialised* datasets (real bytes): synthetic genomes, BLAST outputs of
  small runs, manifests — these are retrievable over NDN segment by segment;
* *placeholder* datasets (declared size only): the paper-scale reference
  database and SRA samples, for which only manifests travel over the network
  while the simulated transfer time is derived from the declared size.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.exceptions import DataLakeError, DatasetNotFound
from repro.cluster.storage import PersistentVolumeClaim
from repro.datalake.catalog import DataCatalog, DatasetKind, DatasetRecord
from repro.ndn.name import Name

__all__ = ["DataLake", "DATA_PREFIX"]

#: The namespace the paper uses for data retrieval.
DATA_PREFIX = Name("/ndn/k8s/data")


class DataLake:
    """A named data lake backed by a PVC."""

    def __init__(
        self,
        pvc: PersistentVolumeClaim,
        prefix: "Name | str" = DATA_PREFIX,
        name: str = "datalake",
        clock=None,
    ) -> None:
        self.pvc = pvc
        self.prefix = Name(prefix)
        self.name = name
        self.catalog = DataCatalog()
        self._clock = clock or (lambda: 0.0)
        self.publish_count = 0
        self.retrieve_count = 0

    # -- naming -----------------------------------------------------------------

    def content_name(self, dataset_id: str) -> Name:
        """The NDN name under which a dataset is served."""
        return self.prefix.append(dataset_id)

    def dataset_id_from_name(self, name: "Name | str") -> str:
        """Extract the dataset id from a ``/ndn/k8s/data/<id>[/...]`` name."""
        name = Name(name)
        if not self.prefix.is_prefix_of(name) or len(name) <= len(self.prefix):
            raise DataLakeError(f"{name} is not inside the data namespace {self.prefix}")
        return name[len(self.prefix)].to_str()

    # -- publication ----------------------------------------------------------------

    def publish_bytes(
        self,
        dataset_id: str,
        payload: "bytes | str",
        kind: "DatasetKind | str" = DatasetKind.OTHER,
        description: str = "",
        metadata: "dict[str, str] | None" = None,
    ) -> DatasetRecord:
        """Publish a materialised dataset (real bytes stored on the PVC)."""
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        path = f"datasets/{dataset_id}"
        self.pvc.write(path, payload, metadata={"dataset_id": dataset_id})
        record = DatasetRecord(
            dataset_id=dataset_id,
            kind=DatasetKind(kind),
            size_bytes=len(payload),
            storage_path=path,
            content_name=self.content_name(dataset_id),
            description=description,
            metadata=dict(metadata or {}),
            published_at=self._clock(),
            has_payload=True,
        )
        self.catalog.register(record)
        self.publish_count += 1
        return record

    def publish_placeholder(
        self,
        dataset_id: str,
        size_bytes: int,
        kind: "DatasetKind | str" = DatasetKind.OTHER,
        description: str = "",
        metadata: "dict[str, str] | None" = None,
    ) -> DatasetRecord:
        """Publish a paper-scale dataset by declared size only."""
        path = f"datasets/{dataset_id}"
        self.pvc.write_placeholder(path, size_bytes, metadata={"dataset_id": dataset_id})
        record = DatasetRecord(
            dataset_id=dataset_id,
            kind=DatasetKind(kind),
            size_bytes=size_bytes,
            storage_path=path,
            content_name=self.content_name(dataset_id),
            description=description,
            metadata=dict(metadata or {}),
            published_at=self._clock(),
            has_payload=False,
        )
        self.catalog.register(record)
        self.publish_count += 1
        return record

    def unpublish(self, dataset_id: str) -> DatasetRecord:
        record = self.catalog.remove(dataset_id)
        if self.pvc.exists(record.storage_path):
            server, path = self.pvc._resolve(record.storage_path)
            server.delete(path)
        return record

    # -- retrieval -------------------------------------------------------------------

    def get_record(self, dataset_id: str) -> DatasetRecord:
        return self.catalog.get(dataset_id)

    def has_dataset(self, dataset_id: str) -> bool:
        return dataset_id in self.catalog

    def read_bytes(self, dataset_id: str) -> bytes:
        """Read a materialised dataset's payload."""
        record = self.catalog.get(dataset_id)
        if not record.has_payload:
            raise DataLakeError(
                f"dataset {dataset_id!r} is a sized placeholder; only its manifest is retrievable"
            )
        self.retrieve_count += 1
        return self.pvc.read(record.storage_path)

    def read_manifest(self, dataset_id: str) -> bytes:
        """The JSON manifest for any dataset (placeholders included)."""
        self.retrieve_count += 1
        return self.catalog.get(dataset_id).manifest_bytes()

    def size_of(self, dataset_id: str) -> int:
        return self.catalog.get(dataset_id).size_bytes

    # -- results convenience ------------------------------------------------------------

    def publish_result(
        self,
        result_id: str,
        payload: Optional[Union[bytes, str]] = None,
        size_bytes: Optional[int] = None,
        source_job: str = "",
        metadata: "dict[str, str] | None" = None,
    ) -> DatasetRecord:
        """Publish a computation result (bytes when available, size otherwise)."""
        meta = {"source_job": source_job, **(metadata or {})}
        if payload is not None:
            return self.publish_bytes(
                result_id, payload, kind=DatasetKind.RESULT,
                description=f"result of job {source_job}", metadata=meta,
            )
        if size_bytes is None:
            raise DataLakeError("publish_result needs either payload bytes or a size")
        return self.publish_placeholder(
            result_id, size_bytes, kind=DatasetKind.RESULT,
            description=f"result of job {source_job}", metadata=meta,
        )

    # -- reporting ------------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "datasets": len(self.catalog),
            "total_bytes": self.catalog.total_bytes(),
            "published": self.publish_count,
            "retrieved": self.retrieve_count,
            "results": len(self.catalog.records(DatasetKind.RESULT)),
        }
