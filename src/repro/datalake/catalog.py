"""Dataset records and the data-lake catalogue."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.exceptions import DatasetNotFound
from repro.ndn.name import Name

__all__ = ["DatasetKind", "DatasetRecord", "DataCatalog"]


class DatasetKind(str, Enum):
    """What a stored dataset is."""

    SRA_SAMPLE = "sra-sample"
    REFERENCE = "reference"
    RESULT = "result"
    INTERMEDIATE = "intermediate"
    OTHER = "other"


@dataclass
class DatasetRecord:
    """Metadata for one dataset published in the lake."""

    dataset_id: str
    kind: DatasetKind
    size_bytes: int
    storage_path: str
    content_name: Name
    description: str = ""
    metadata: dict[str, str] = field(default_factory=dict)
    published_at: float = 0.0
    has_payload: bool = False

    def manifest(self) -> dict:
        """The JSON-serialisable manifest served for this dataset."""
        return {
            "dataset_id": self.dataset_id,
            "kind": self.kind.value,
            "size_bytes": self.size_bytes,
            "content_name": str(self.content_name),
            "description": self.description,
            "metadata": dict(self.metadata),
            "published_at": self.published_at,
            "has_payload": self.has_payload,
        }

    def manifest_bytes(self) -> bytes:
        return json.dumps(self.manifest(), sort_keys=True).encode("utf-8")


class DataCatalog:
    """The catalogue of datasets currently available in a data lake."""

    def __init__(self) -> None:
        self._records: dict[str, DatasetRecord] = {}

    def register(self, record: DatasetRecord) -> DatasetRecord:
        self._records[record.dataset_id] = record
        return record

    def get(self, dataset_id: str) -> DatasetRecord:
        try:
            return self._records[dataset_id]
        except KeyError:
            raise DatasetNotFound(f"dataset {dataset_id!r} is not in the catalog") from None

    def try_get(self, dataset_id: str) -> Optional[DatasetRecord]:
        return self._records.get(dataset_id)

    def remove(self, dataset_id: str) -> DatasetRecord:
        try:
            return self._records.pop(dataset_id)
        except KeyError:
            raise DatasetNotFound(f"dataset {dataset_id!r} is not in the catalog") from None

    def __contains__(self, dataset_id: str) -> bool:
        return dataset_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self, kind: Optional[DatasetKind] = None) -> list[DatasetRecord]:
        records = sorted(self._records.values(), key=lambda rec: rec.dataset_id)
        if kind is not None:
            records = [rec for rec in records if rec.kind == kind]
        return records

    def total_bytes(self) -> int:
        return sum(rec.size_bytes for rec in self._records.values())

    def listing(self) -> dict:
        """A JSON-serialisable listing of the whole catalogue."""
        return {
            "datasets": [rec.manifest() for rec in self.records()],
            "count": len(self),
            "total_bytes": self.total_bytes(),
        }
