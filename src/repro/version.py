"""Version and provenance metadata for the LIDC reproduction."""

__version__ = "1.0.0"

#: The paper this repository reproduces.
__paper__ = (
    "LIDC: A Location Independent Multi-Cluster Computing Framework for "
    "Data Intensive Science (SC-W 2024, DOI 10.1109/SCW63240.2024.00108)"
)
