"""Deterministic fault schedules: the chaos mirror of the workload library.

Generation is split from injection exactly as in :mod:`repro.workload`:

1. :func:`build_schedule` expands a :class:`ChaosSpec` (fault mix x targets
   x horizon) into a concrete, time-ordered list of :class:`FaultEvent`,
   drawing every fault time, target and outage duration from named
   ``SeededRNG`` streams.  The schedule is the reproducibility contract:
   :func:`schedule_hash` pins it, identical seeds produce byte-identical
   schedules, and a recorded schedule replays against any overlay without
   re-consuming entropy.
2. :class:`~repro.chaos.driver.ChaosDriver` walks a schedule on the
   simulation clock and injects each fault through the overlay's own
   control surface (``fail_cluster``/``add_cluster``, link state toggles,
   ``isolate``/``rejoin``, ``crash_shard``, prefix churn).

Disruptive faults are emitted as explicit *paired* events — a kill
schedules its restart, a link-down its link-up, a partition its heal — so
the schedule alone says when the system should be whole again; recovery
never depends on driver-side bookkeeping surviving a replay.

Nothing here reads a wall clock or ambient entropy (reprolint RL002/RL010
apply to this package).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

from repro.sim.rng import SeededRNG

__all__ = [
    "FaultKind",
    "FaultEvent",
    "ChaosSpec",
    "build_schedule",
    "schedule_hash",
    "replay_schedule",
]


class FaultKind(str, Enum):
    """Every fault class the chaos layer can inject."""

    #: Abrupt cluster failure: links drop, no prefix withdrawal.
    NODE_KILL = "node-kill"
    #: Re-add a killed cluster with its original links and announcements.
    NODE_RESTART = "node-restart"
    #: Silently drop traffic on one link, both directions.
    LINK_DOWN = "link-down"
    #: Bring a flapped link back.
    LINK_UP = "link-up"
    #: Down every link touching one node (network partition).
    PARTITION = "partition"
    #: Heal a partition.
    HEAL = "heal"
    #: Crash one shard worker of a sharded gateway (cold restart).
    SHARD_CRASH = "shard-crash"
    #: Withdraw and immediately re-announce a cluster's prefixes.
    PRODUCER_CHURN = "producer-churn"


@dataclass(slots=True, frozen=True)
class FaultEvent:
    """One scheduled fault: sequence number, injection time, kind, target.

    ``target`` is the node name for node faults, ``"a|b"`` for link
    faults, and ``"node/<shard index>"`` for shard crashes.
    """

    seq: int
    t: float
    kind: FaultKind
    target: str

    def line(self) -> str:
        """The canonical text form hashed by :func:`schedule_hash`.

        ``repr`` of the float keeps full precision, so two schedules hash
        equal exactly when they are bit-identical.
        """
        return f"{self.seq} {self.t!r} {self.kind.value} {self.target}"


def schedule_hash(schedule: "list[FaultEvent] | tuple[FaultEvent, ...]") -> str:
    """A stable sha256 over the full fault schedule."""
    digest = hashlib.sha256()
    for event in schedule:
        digest.update(event.line().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class ChaosSpec:
    """What to break: fault counts x eligible targets x time horizon.

    Counts are exact (not rates): ``kills=3`` schedules exactly three
    kill/restart pairs.  Fault times are drawn uniformly over the first
    ``injection_window`` fraction of the horizon so every outage — whose
    duration is uniform in ``[min_outage_s, max_outage_s]`` — can complete
    its paired recovery inside the horizon.
    """

    label: str
    horizon_s: float
    #: Cluster names eligible for kill/restart and partition/heal.
    clusters: tuple[str, ...] = ()
    #: ``(a, b)`` overlay links eligible to flap.
    links: tuple[tuple[str, str], ...] = ()
    #: ``(node name, shard count)`` sharded gateways eligible to crash.
    shards: tuple[tuple[str, int], ...] = ()
    #: Cluster names whose prefix announcements churn.
    producers: tuple[str, ...] = ()
    kills: int = 0
    flaps: int = 0
    partitions: int = 0
    shard_crashes: int = 0
    churns: int = 0
    min_outage_s: float = 0.5
    max_outage_s: float = 5.0
    injection_window: float = 0.8

    def describe(self) -> dict:
        return {
            "label": self.label,
            "horizon_s": self.horizon_s,
            "clusters": list(self.clusters),
            "links": [list(link) for link in self.links],
            "shards": [list(entry) for entry in self.shards],
            "producers": list(self.producers),
            "kills": self.kills,
            "flaps": self.flaps,
            "partitions": self.partitions,
            "shard_crashes": self.shard_crashes,
            "churns": self.churns,
            "outage_s": [self.min_outage_s, self.max_outage_s],
        }

    def event_count(self) -> int:
        """Total events the schedule will contain (pairs count twice)."""
        return (
            2 * (self.kills + self.flaps + self.partitions)
            + self.shard_crashes
            + self.churns
        )

    def _validate(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(f"chaos horizon must be positive, got {self.horizon_s}")
        if not 0.0 < self.injection_window <= 1.0:
            raise ValueError(
                f"injection window must be in (0, 1], got {self.injection_window}"
            )
        if not 0.0 <= self.min_outage_s <= self.max_outage_s:
            raise ValueError(
                f"need 0 <= min_outage_s <= max_outage_s, got "
                f"{self.min_outage_s}..{self.max_outage_s}"
            )
        for count, pool, what in (
            (self.kills, self.clusters, "kills"),
            (self.partitions, self.clusters, "partitions"),
            (self.flaps, self.links, "flaps"),
            (self.shard_crashes, self.shards, "shard crashes"),
            (self.churns, self.producers, "producer churns"),
        ):
            if count < 0:
                raise ValueError(f"fault counts must be >= 0, got {count} {what}")
            if count > 0 and not pool:
                raise ValueError(
                    f"chaos spec {self.label!r} schedules {what} "
                    f"but lists no eligible targets"
                )


def build_schedule(spec: ChaosSpec, rng: SeededRNG) -> list[FaultEvent]:
    """Expand ``spec`` into a concrete, replayable fault schedule.

    Streams are consumed in a fixed per-fault order (time, then target,
    then duration where the fault has one), and fault classes are expanded
    in a fixed class order, so a given (seed, spec) always yields the
    identical schedule.  Events are sorted by injection time with the
    build order breaking ties, then renumbered.
    """
    spec._validate()
    window = spec.horizon_s * spec.injection_window
    raw: list[tuple[float, int, FaultKind, str]] = []

    def outage(at: float) -> float:
        length = rng.uniform(spec.min_outage_s, spec.max_outage_s, stream="fault-durations")
        # Clamp the recovery inside the horizon so the schedule always
        # ends with the overlay whole.
        return min(at + length, spec.horizon_s)

    def emit(at: float, kind: FaultKind, target: str) -> None:
        raw.append((at, len(raw), kind, target))

    for _ in range(spec.kills):
        at = rng.uniform(0.0, window, stream="fault-times")
        target = rng.choice(spec.clusters, stream="fault-targets")
        emit(at, FaultKind.NODE_KILL, target)
        emit(outage(at), FaultKind.NODE_RESTART, target)
    for _ in range(spec.flaps):
        at = rng.uniform(0.0, window, stream="fault-times")
        a, b = rng.choice(spec.links, stream="fault-targets")
        emit(at, FaultKind.LINK_DOWN, f"{a}|{b}")
        emit(outage(at), FaultKind.LINK_UP, f"{a}|{b}")
    for _ in range(spec.partitions):
        at = rng.uniform(0.0, window, stream="fault-times")
        target = rng.choice(spec.clusters, stream="fault-targets")
        emit(at, FaultKind.PARTITION, target)
        emit(outage(at), FaultKind.HEAL, target)
    for _ in range(spec.shard_crashes):
        at = rng.uniform(0.0, window, stream="fault-times")
        node, count = rng.choice(spec.shards, stream="fault-targets")
        index = rng.integer(0, max(0, count - 1), stream="fault-targets")
        emit(at, FaultKind.SHARD_CRASH, f"{node}/{index}")
    for _ in range(spec.churns):
        at = rng.uniform(0.0, window, stream="fault-times")
        target = rng.choice(spec.producers, stream="fault-targets")
        emit(at, FaultKind.PRODUCER_CHURN, target)

    raw.sort(key=lambda item: (item[0], item[1]))
    return [
        FaultEvent(seq=seq, t=at, kind=kind, target=target)
        for seq, (at, _order, kind, target) in enumerate(raw)
    ]


def replay_schedule(lines: "list[str]") -> list[FaultEvent]:
    """Rebuild a schedule from its canonical :meth:`FaultEvent.line` forms."""
    events = []
    for line in lines:
        seq, t, kind, target = line.split(" ", 3)
        events.append(
            FaultEvent(seq=int(seq), t=float(t), kind=FaultKind(kind), target=target)
        )
    return events
