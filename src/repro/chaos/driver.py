"""Inject a fault schedule into a live compute overlay.

The :class:`ChaosDriver` is the execution half of the chaos layer: it walks
a schedule built by :func:`repro.chaos.spec.build_schedule` on the
simulation clock and applies each :class:`~repro.chaos.spec.FaultEvent`
through the overlay's own control surface — no private state is reached
into, so everything the driver does, an operator (or test) could do by
hand:

========================  ====================================================
fault kind                overlay action
========================  ====================================================
``node-kill``             ``overlay.fail_cluster`` (links captured first)
``node-restart``          ``overlay.add_cluster`` with the captured links
``link-down``/``link-up`` ``overlay.set_link_state``
``partition``/``heal``    ``overlay.isolate`` / ``overlay.rejoin``
``shard-crash``           ``ShardedForwarder.crash_shard`` on the gateway
``producer-churn``        withdraw + immediately re-announce prefixes
========================  ====================================================

A fault whose precondition no longer holds — restarting a cluster a
concurrent partition already healed around, flapping a link whose endpoint
is dead, crashing a shard index a rebalance removed — is *skipped and
counted*, never raised: overlapping faults are the point of a chaos
schedule, and the skip decision depends only on overlay state, so replays
of the same (seed, spec) skip identically.

Shard crashes are routed to any cluster whose gateway is a
:class:`~repro.ndn.shard.ShardedForwarder` (discovered automatically) and
reported to a registered :class:`~repro.cluster.scheduler.ShardAutoscaler`
via ``signal_failure`` — closing the loop the issue asks for: gateway
failure signals drive shard scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chaos.spec import FaultEvent, FaultKind
from repro.core.overlay import ComputeOverlay
from repro.exceptions import OverlayError
from repro.sim.engine import Environment

__all__ = ["ChaosDriver", "InjectionRecord"]


@dataclass(slots=True)
class InjectionRecord:
    """What actually happened when one scheduled fault fired."""

    event: FaultEvent
    applied: bool
    detail: str = ""


@dataclass(slots=True)
class _DownedCluster:
    """A killed cluster plus everything needed to restart it faithfully."""

    cluster: object
    #: ``(peer name, latency_s)`` for every link the kill severed.
    links: list[tuple[str, float]] = field(default_factory=list)


class ChaosDriver:
    """Walks a fault schedule against a :class:`ComputeOverlay`."""

    def __init__(
        self,
        env: Environment,
        overlay: ComputeOverlay,
        schedule: Sequence[FaultEvent],
        autoscalers: "Optional[dict[str, object]] | None" = None,
    ) -> None:
        self.env = env
        self.overlay = overlay
        self.schedule = list(schedule)
        #: node name -> ShardAutoscaler to poke on that node's shard crashes.
        self.autoscalers = dict(autoscalers or {})
        self.records: list[InjectionRecord] = []
        self.applied = 0
        self.skipped = 0
        self._downed: dict[str, _DownedCluster] = {}
        self._partitioned: dict[str, list[tuple[str, str]]] = {}
        self._process = None

    # ------------------------------------------------------------------ control

    def start(self):
        """Spawn the injection process; returns it for joining."""
        if self._process is not None:
            raise OverlayError("chaos driver already started")
        self._process = self.env.process(self._run(), name="chaos-driver")
        return self._process

    def _run(self):
        for event in self.schedule:
            delay = event.t - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(event)

    # ---------------------------------------------------------------- injection

    def _apply(self, event: FaultEvent) -> None:
        handler = {
            FaultKind.NODE_KILL: self._kill,
            FaultKind.NODE_RESTART: self._restart,
            FaultKind.LINK_DOWN: self._link_down,
            FaultKind.LINK_UP: self._link_up,
            FaultKind.PARTITION: self._partition,
            FaultKind.HEAL: self._heal,
            FaultKind.SHARD_CRASH: self._shard_crash,
            FaultKind.PRODUCER_CHURN: self._producer_churn,
        }[event.kind]
        applied, detail = handler(event.target)
        self.records.append(InjectionRecord(event=event, applied=applied, detail=detail))
        if applied:
            self.applied += 1
        else:
            self.skipped += 1
        self.overlay.tracer.record(
            "chaos", event.kind.value, target=event.target, applied=applied
        )

    def _kill(self, name: str) -> tuple[bool, str]:
        if name in self._downed:
            return False, "already down"
        if name not in self.overlay.clusters:
            return False, "no such cluster"
        # Heal any partition first so the restart starts from a known link
        # set (the kill severs everything anyway).
        self._partitioned.pop(name, None)
        links = [
            (link.b if link.a == name else link.a, link.latency_s)
            for link in self.overlay.links()
            if name in (link.a, link.b)
        ]
        cluster = self.overlay.fail_cluster(name)
        self._downed[name] = _DownedCluster(cluster=cluster, links=links)
        return True, f"severed {len(links)} link(s)"

    def _restart(self, name: str) -> tuple[bool, str]:
        downed = self._downed.pop(name, None)
        if downed is None:
            return False, "not down"
        # Restore only links whose far end is still alive; a peer that died
        # meanwhile re-links when *it* restarts (its own capture includes us
        # only if our kill came second, so double-links cannot form).
        restorable = [
            (peer, latency) for peer, latency in downed.links
            if peer in self.overlay.clusters or peer in self.overlay.routers
        ]
        self.overlay.add_cluster(downed.cluster, connect_to=restorable)
        return True, f"restored {len(restorable)}/{len(downed.links)} link(s)"

    def _link_down(self, target: str) -> tuple[bool, str]:
        a, b = target.split("|", 1)
        try:
            self.overlay.set_link_state(a, b, up=False)
        except OverlayError as error:
            return False, str(error)
        return True, ""

    def _link_up(self, target: str) -> tuple[bool, str]:
        a, b = target.split("|", 1)
        try:
            self.overlay.set_link_state(a, b, up=True)
        except OverlayError as error:
            return False, str(error)
        return True, ""

    def _partition(self, name: str) -> tuple[bool, str]:
        if name in self._partitioned:
            return False, "already partitioned"
        if name in self._downed or name not in self.overlay.clusters:
            return False, "cluster not alive"
        cut = self.overlay.isolate(name)
        self._partitioned[name] = cut
        return True, f"cut {len(cut)} link(s)"

    def _heal(self, name: str) -> tuple[bool, str]:
        cut = self._partitioned.pop(name, None)
        if cut is None:
            return False, "not partitioned"
        if name not in self.overlay.clusters:
            return False, "cluster died while partitioned"
        healed = self.overlay.rejoin(name)
        return True, f"healed {len(healed)} link(s)"

    def _shard_crash(self, target: str) -> tuple[bool, str]:
        name, _slash, index_text = target.rpartition("/")
        index = int(index_text)
        cluster = self.overlay.clusters.get(name)
        if cluster is None or name in self._downed:
            return False, "cluster not alive"
        gateway = cluster.gateway_nfd
        if not hasattr(gateway, "crash_shard"):
            return False, "gateway is not sharded"
        if index >= len(gateway.shards):
            return False, f"no shard {index} (node has {len(gateway.shards)})"
        aborted = gateway.crash_shard(index)
        autoscaler = self.autoscalers.get(name)
        if autoscaler is not None:
            autoscaler.signal_failure()
        return True, f"aborted {aborted} pending Interest(s)"

    def _producer_churn(self, name: str) -> tuple[bool, str]:
        cluster = self.overlay.clusters.get(name)
        if cluster is None or name in self._downed:
            return False, "cluster not alive"
        cluster.withdraw_prefixes()
        cluster.announce_prefixes()
        return True, "withdrew and re-announced"

    # ---------------------------------------------------------------- reporting

    def report(self) -> dict[str, object]:
        """Injection outcome: per-kind applied counts plus the skip ledger."""
        by_kind: dict[str, int] = {}
        for record in self.records:
            if record.applied:
                key = record.event.kind.value
                by_kind[key] = by_kind.get(key, 0) + 1
        return {
            "events": len(self.schedule),
            "fired": len(self.records),
            "applied": self.applied,
            "skipped": self.skipped,
            "by_kind": by_kind,
            "still_down": sorted(self._downed),
            "still_partitioned": sorted(self._partitioned),
        }
