"""Deterministic chaos layer: seeded fault schedules injected into the overlay.

``spec`` builds replayable fault schedules from named ``SeededRNG``
streams (the chaos mirror of :mod:`repro.workload`); ``driver`` injects
them into a :class:`~repro.core.overlay.ComputeOverlay` through its public
control surface.  See ``README.md`` in this package for the recipe.
"""

from repro.chaos.driver import ChaosDriver, InjectionRecord
from repro.chaos.spec import (
    ChaosSpec,
    FaultEvent,
    FaultKind,
    build_schedule,
    replay_schedule,
    schedule_hash,
)

__all__ = [
    "ChaosSpec",
    "FaultEvent",
    "FaultKind",
    "build_schedule",
    "replay_schedule",
    "schedule_hash",
    "ChaosDriver",
    "InjectionRecord",
]
