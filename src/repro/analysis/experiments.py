"""Experiment runners: one function per experiment id in DESIGN.md.

Every runner builds its own testbed, drives the workload, and returns both a
structured result object and (via :meth:`to_table`) the paper-style table the
benchmark harness prints.  Benchmarks wrap these runners with
pytest-benchmark; tests assert on the structured results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.results import ResultTable, format_bytes, format_seconds
from repro.core.baseline import CentralizedController
from repro.core.client import JobOutcome
from repro.core.framework import CLIENT_EDGE, LIDCTestbed
from repro.core.placement import (
    LearnedPlacement,
    LeastLoadedPlacement,
    NearestPlacement,
    PlacementStrategy,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.core.predictor import CompletionTimePredictor
from repro.core.spec import ComputeRequest, JobState
from repro.core.workflow import GenomicsWorkflow, WorkflowReport, decompose
from repro.genomics.runtime_model import TABLE1_ROWS, Table1Row, format_runtime

__all__ = [
    "EXPERIMENT_RUNNERS",
    "run_experiment",
    "ForwardingExchangeResult",
    "run_forwarding_exchange",
    "Table1Result",
    "run_table1",
    "Table1Measurement",
    "StrategyOutcome",
    "NamePlacementResult",
    "run_fig2_name_placement",
    "ServiceMappingResult",
    "run_fig3_service_mapping",
    "Fig5Decomposition",
    "run_fig5_workflow",
    "OverlayChurnResult",
    "run_overlay_churn",
    "PlacementComparison",
    "run_placement_comparison",
    "CachingAblation",
    "run_caching_ablation",
    "ConcurrentLoadResult",
    "run_concurrent_load",
    "BaselineComparison",
    "run_baseline_comparison",
]


# ---------------------------------------------------------------------------
# Table I — computation performance
# ---------------------------------------------------------------------------


@dataclass
class Table1Measurement:
    """One measured row next to the paper's row."""

    paper: Table1Row
    measured_runtime_s: float
    measured_output_bytes: int
    cluster: str

    @property
    def runtime_relative_error(self) -> float:
        return abs(self.measured_runtime_s - self.paper.run_time_s) / self.paper.run_time_s

    @property
    def output_relative_error(self) -> float:
        return abs(self.measured_output_bytes - self.paper.output_size_bytes) / self.paper.output_size_bytes


@dataclass
class Table1Result:
    """The reproduced Table I."""

    measurements: list[Table1Measurement] = field(default_factory=list)

    @property
    def max_runtime_error(self) -> float:
        return max(m.runtime_relative_error for m in self.measurements)

    def runtime_spread(self, srr_id: str) -> float:
        """Relative spread of measured runtimes across configurations of one sample."""
        runtimes = [m.measured_runtime_s for m in self.measurements if m.paper.srr_id == srr_id]
        if not runtimes:
            return 0.0
        return (max(runtimes) - min(runtimes)) / max(runtimes)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Table I — Computation Performance (paper vs reproduction)",
            columns=["SRR ID", "Ref. DB", "Genome", "Mem(GB)", "CPU",
                     "Paper run time", "Measured run time", "Paper output", "Measured output"],
        )
        for m in self.measurements:
            table.add_row(
                m.paper.srr_id, m.paper.reference, m.paper.genome_type,
                f"{m.paper.memory_gb:g}", m.paper.cpu,
                m.paper.run_time_text, format_runtime(m.measured_runtime_s),
                format_bytes(m.paper.output_size_bytes), format_bytes(m.measured_output_bytes),
            )
        table.add_note(
            "CPU/memory variation changes the measured run time by "
            f"{self.runtime_spread('SRR2931415') * 100:.2f}% (rice) and "
            f"{self.runtime_spread('SRR5139395') * 100:.2f}% (kidney) — "
            "no significant change, matching the paper's takeaway"
        )
        return table


def run_table1(seed: int = 0, rows: Sequence[Table1Row] = TABLE1_ROWS,
               poll_interval_s: float = 600.0) -> Table1Result:
    """Re-run every Table I configuration through the full LIDC stack."""
    result = Table1Result()
    for row in rows:
        testbed = LIDCTestbed.single_cluster(seed=seed, node_cpu=8, node_memory="32Gi")
        client = testbed.client(poll_interval_s=poll_interval_s)
        outcome = testbed.submit_and_wait(
            ComputeRequest(app="BLAST", cpu=row.cpu, memory_gb=row.memory_gb,
                           dataset=row.srr_id, reference=row.reference),
            client=client, fetch_result=False,
        )
        if not outcome.succeeded:
            raise RuntimeError(f"Table I run failed for {row}: {outcome.error}")
        cluster_name = outcome.submission.cluster or ""
        record = testbed.cluster(cluster_name).gateway.tracker.get(outcome.submission.job_id)
        result.measurements.append(
            Table1Measurement(
                paper=row,
                measured_runtime_s=record.runtime() or 0.0,
                measured_output_bytes=record.result_size_bytes or 0,
                cluster=cluster_name,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 2 — transparent data and compute placement based on names
# ---------------------------------------------------------------------------


@dataclass
class NamePlacementResult:
    """Latencies of name-based data and compute resolution on one cluster."""

    data_manifest_latency_s: float
    data_payload_latency_s: float
    compute_ack_latency_s: float
    cached_manifest_latency_s: float
    dataset_bytes: int

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fig. 2 — Transparent data & compute placement based on names",
            columns=["operation", "latency"],
        )
        table.add_row("data manifest fetch (/ndn/k8s/data/<id>)", format_seconds(self.data_manifest_latency_s))
        table.add_row("data payload fetch (segmented)", format_seconds(self.data_payload_latency_s))
        table.add_row("compute request ack (/ndn/k8s/compute/...)", format_seconds(self.compute_ack_latency_s))
        table.add_row("repeat manifest fetch (content-store hit)", format_seconds(self.cached_manifest_latency_s))
        table.add_note("all operations are addressed purely by name; no cluster locations configured")
        return table


def run_fig2_name_placement(seed: int = 0) -> NamePlacementResult:
    testbed = LIDCTestbed.single_cluster(seed=seed, load_synthetic_datasets=True)
    client = testbed.client()

    def scenario():
        start = testbed.env.now
        manifest, _ = yield from client.retrieve_dataset("SRR0000001", fetch_payload=False)
        manifest_latency = testbed.env.now - start

        start = testbed.env.now
        _, payload = yield from client.retrieve_dataset("SRR0000001", fetch_payload=True)
        payload_latency = testbed.env.now - start

        start = testbed.env.now
        submission = yield from client.submit_interest(
            ComputeRequest(app="SLEEP", cpu=1, memory_gb=1, params={"duration": "5"})
        )
        ack_latency = testbed.env.now - start

        start = testbed.env.now
        yield from client.retrieve_dataset("SRR0000001", fetch_payload=False)
        cached_latency = testbed.env.now - start
        return NamePlacementResult(
            data_manifest_latency_s=manifest_latency,
            data_payload_latency_s=payload_latency,
            compute_ack_latency_s=ack_latency,
            cached_manifest_latency_s=cached_latency,
            dataset_bytes=manifest.get("size_bytes", 0),
        )

    return testbed.run_process(scenario())


# ---------------------------------------------------------------------------
# Figs. 3 & 4 — mapping LIDC onto Kubernetes components
# ---------------------------------------------------------------------------


@dataclass
class ServiceMappingResult:
    """Observed Kubernetes objects and the per-hop overhead of the mapping."""

    node_port: int
    gateway_dns: str
    datalake_dns: str
    datalake_cluster_ip: str
    gateway_endpoints: int
    datalake_endpoints: int
    manifest_via_gateway_latency_s: float
    system_pods_running: int

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Figs. 3 & 4 — NDN-to-Kubernetes mapping",
            columns=["kubernetes object", "value"],
        )
        table.add_row("gateway NFD NodePort", self.node_port)
        table.add_row("gateway service DNS", self.gateway_dns)
        table.add_row("data-lake NFD service DNS", self.datalake_dns)
        table.add_row("data-lake ClusterIP", self.datalake_cluster_ip)
        table.add_row("gateway endpoints (pods)", self.gateway_endpoints)
        table.add_row("data-lake endpoints (pods)", self.datalake_endpoints)
        table.add_row("system pods running", self.system_pods_running)
        table.add_row("manifest fetch via gateway NFD", format_seconds(self.manifest_via_gateway_latency_s))
        return table


def run_fig3_service_mapping(seed: int = 0) -> ServiceMappingResult:
    testbed = LIDCTestbed.single_cluster(seed=seed, load_synthetic_datasets=True)
    testbed.run(until=testbed.env.now + 10)  # let deployments come up
    cluster = next(iter(testbed.clusters.values()))
    client = testbed.client()

    def fetch():
        start = testbed.env.now
        yield from client.retrieve_dataset("synthetic-reference", fetch_payload=False)
        return testbed.env.now - start

    latency = testbed.run_process(fetch())
    gateway_service = cluster.nodeport_service
    datalake_service = cluster.datalake_service
    dns_record = cluster.cluster.dns.resolve(datalake_service.dns_name)
    running = len(cluster.cluster.running_pods())
    return ServiceMappingResult(
        node_port=gateway_service.node_port or 0,
        gateway_dns=gateway_service.dns_name,
        datalake_dns=datalake_service.dns_name,
        datalake_cluster_ip=dns_record.cluster_ip,
        gateway_endpoints=len(gateway_service.endpoints.addresses),
        datalake_endpoints=len(datalake_service.endpoints.addresses),
        manifest_via_gateway_latency_s=latency,
        system_pods_running=running,
    )


# ---------------------------------------------------------------------------
# Fig. 5 — workflow protocol decomposition
# ---------------------------------------------------------------------------


@dataclass
class Fig5Decomposition:
    """Per-step latencies of the five-step protocol."""

    report: WorkflowReport

    @property
    def end_to_end_s(self) -> float:
        return self.report.end_to_end_s

    def step_seconds(self, step: str) -> float:
        timing = self.report.step(step)
        return timing.duration_s if timing else 0.0

    def compute_fraction(self) -> float:
        timing = self.report.step("computation_and_status")
        return timing.fraction if timing else 0.0

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fig. 5 — LIDC workflow protocol step decomposition",
            columns=["protocol step", "duration", "fraction of end-to-end"],
        )
        for timing in self.report.steps:
            table.add_row(timing.step, format_seconds(timing.duration_s), f"{timing.fraction * 100:.3f}%")
        table.add_row("end-to-end", format_seconds(self.end_to_end_s), "100%")
        table.add_note("computation dominates; naming/forwarding/status overhead is negligible")
        return table


def run_fig5_workflow(seed: int = 0, srr_id: str = "SRR2931415", cpu: int = 2,
                      memory_gb: float = 4, poll_interval_s: float = 600.0) -> Fig5Decomposition:
    testbed = LIDCTestbed.single_cluster(seed=seed)
    client = testbed.client(poll_interval_s=poll_interval_s)
    workflow = GenomicsWorkflow(client, poll_interval_s=poll_interval_s)
    report = testbed.run_process(workflow.blast(srr_id, cpu=cpu, memory_gb=memory_gb))
    return Fig5Decomposition(report=report)


# ---------------------------------------------------------------------------
# Fig. 1 — multi-cluster overlay under churn
# ---------------------------------------------------------------------------


@dataclass
class OverlayChurnResult:
    """Placement behaviour of the overlay while clusters join and leave."""

    cluster_count: int
    outcomes_before: list[JobOutcome] = field(default_factory=list)
    outcomes_after_leave: list[JobOutcome] = field(default_factory=list)
    outcomes_after_join: list[JobOutcome] = field(default_factory=list)
    removed_cluster: str = ""
    added_cluster: str = ""

    @staticmethod
    def _success_rate(outcomes: list[JobOutcome]) -> float:
        if not outcomes:
            return 0.0
        return sum(1 for o in outcomes if o.succeeded) / len(outcomes)

    @staticmethod
    def _clusters(outcomes: list[JobOutcome]) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in outcomes:
            if outcome.submission.cluster:
                counts[outcome.submission.cluster] = counts.get(outcome.submission.cluster, 0) + 1
        return counts

    @property
    def success_before(self) -> float:
        return self._success_rate(self.outcomes_before)

    @property
    def success_after_leave(self) -> float:
        return self._success_rate(self.outcomes_after_leave)

    @property
    def success_after_join(self) -> float:
        return self._success_rate(self.outcomes_after_join)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fig. 1 — Multi-cluster overlay: placement under churn",
            columns=["phase", "requests", "success rate", "clusters used"],
        )
        phases = [
            (f"initial overlay ({self.cluster_count} clusters)", self.outcomes_before),
            (f"after {self.removed_cluster} leaves", self.outcomes_after_leave),
            (f"after {self.added_cluster} joins", self.outcomes_after_join),
        ]
        for label, outcomes in phases:
            table.add_row(
                label, len(outcomes), f"{self._success_rate(outcomes) * 100:.0f}%",
                ", ".join(f"{k}:{v}" for k, v in sorted(self._clusters(outcomes).items())) or "-",
            )
        table.add_note("no client reconfiguration at any point: requests keep using the same names")
        return table


def run_overlay_churn(seed: int = 0, cluster_count: int = 3, requests_per_phase: int = 6,
                      job_duration_s: float = 60.0) -> OverlayChurnResult:
    testbed = LIDCTestbed.multi_cluster(cluster_count, seed=seed, node_count=1,
                                        node_cpu=4, node_memory="8Gi")
    testbed.overlay.use_load_balancing()
    client = testbed.client(poll_interval_s=10.0)
    result = OverlayChurnResult(cluster_count=cluster_count)

    def request() -> ComputeRequest:
        return ComputeRequest(app="SLEEP", cpu=1, memory_gb=1,
                              params={"duration": f"{job_duration_s:g}"})

    def run_phase(count: int) -> list[JobOutcome]:
        def phase():
            outcomes = []
            for _ in range(count):
                outcome = yield from client.run_workflow(
                    request(), poll_interval_s=10.0, fetch_result=False
                )
                outcomes.append(outcome)
            return outcomes
        return testbed.run_process(phase())

    result.outcomes_before = run_phase(requests_per_phase)

    # Graceful leave of the first cluster.
    result.removed_cluster = sorted(testbed.clusters)[0]
    testbed.overlay.remove_cluster(result.removed_cluster)
    result.outcomes_after_leave = run_phase(requests_per_phase)

    # A brand-new cluster joins; nothing on the client changes.
    new_cluster = testbed.add_cluster(name="cluster-new")
    result.added_cluster = new_cluster.name
    testbed.overlay.use_load_balancing()
    result.outcomes_after_join = run_phase(requests_per_phase)
    return result


# ---------------------------------------------------------------------------
# Placement strategy ablation (paper §VII "intelligence in the network")
# ---------------------------------------------------------------------------


@dataclass
class StrategyOutcome:
    """Aggregate metrics for one placement strategy."""

    strategy: str
    mean_turnaround_s: float
    makespan_s: float
    placements: dict[str, int]
    failures: int


@dataclass
class PlacementComparison:
    """Comparison of placement strategies over the same workload."""

    outcomes: list[StrategyOutcome] = field(default_factory=list)

    def best_strategy(self) -> str:
        return min(self.outcomes, key=lambda o: o.mean_turnaround_s).strategy

    def outcome_for(self, strategy: str) -> StrategyOutcome:
        for outcome in self.outcomes:
            if outcome.strategy == strategy:
                return outcome
        raise KeyError(strategy)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Placement strategy ablation (future-work 'intelligence in the network')",
            columns=["strategy", "mean turnaround", "makespan", "failures", "placement spread"],
        )
        for outcome in self.outcomes:
            spread = ", ".join(f"{k}:{v}" for k, v in sorted(outcome.placements.items()))
            table.add_row(outcome.strategy, format_seconds(outcome.mean_turnaround_s),
                          format_seconds(outcome.makespan_s), outcome.failures, spread)
        table.add_note(f"best strategy on this workload: {self.best_strategy()}")
        return table


def _heterogeneous_testbed(seed: int) -> LIDCTestbed:
    """Three clusters with different sizes and distances from the client edge."""
    testbed = LIDCTestbed(None)
    testbed.config.seed = seed
    testbed.add_cluster(name="small-near", node_count=1, node_cpu=4, node_memory="8Gi",
                        latency_s=0.005)
    testbed.add_cluster(name="medium-mid", node_count=1, node_cpu=8, node_memory="16Gi",
                        latency_s=0.03)
    testbed.add_cluster(name="large-far", node_count=1, node_cpu=16, node_memory="64Gi",
                        latency_s=0.08)
    return testbed


def run_placement_comparison(seed: int = 0, jobs: int = 16,
                             job_duration_s: float = 300.0) -> PlacementComparison:
    """Compare explicit placement strategies through the centralized controller."""
    comparison = PlacementComparison()
    latencies = {"small-near": 0.005, "medium-mid": 0.03, "large-far": 0.08}

    def build_strategies() -> list[tuple[str, PlacementStrategy, Optional[CompletionTimePredictor]]]:
        predictor = CompletionTimePredictor(min_examples=3)
        return [
            ("random", RandomPlacement(), None),
            ("round-robin", RoundRobinPlacement(), None),
            ("nearest", NearestPlacement(latencies), None),
            ("least-loaded", LeastLoadedPlacement(), None),
            ("learned", LearnedPlacement(predictor), predictor),
        ]

    for name, strategy, predictor in build_strategies():
        testbed = _heterogeneous_testbed(seed)
        controller = CentralizedController(
            testbed.env, clusters=list(testbed.clusters.values()), strategy=strategy
        )
        if predictor is not None:
            # Warm the predictor with a few completed jobs before the measured batch.
            for index in range(4):
                warm = controller.submit(
                    ComputeRequest(app="SLEEP", cpu=1, memory_gb=1,
                                   params={"duration": f"{job_duration_s / 2:g}"})
                )
                if warm.record is not None and warm.decision is not None:
                    cluster = testbed.cluster(warm.decision.cluster_name)
                    k8s_job = cluster.cluster.job(warm.record.k8s_job_name)
                    testbed.run(until=k8s_job.completion)
                    record = cluster.gateway.tracker.get(warm.record.job_id)
                    if record.runtime() is not None:
                        predictor.observe(record.request, record.runtime())
        start = testbed.env.now
        submissions = []
        for index in range(jobs):
            submission = controller.submit(
                ComputeRequest(app="SLEEP", cpu=2, memory_gb=4,
                               params={"duration": f"{job_duration_s:g}", "idx": str(index)})
            )
            submissions.append(submission)
            testbed.run(until=testbed.env.now + 5.0)  # small inter-arrival gap
        # Wait for every admitted job to finish.
        pending = [s for s in submissions if s.record is not None]
        for submission in pending:
            cluster = testbed.cluster(submission.decision.cluster_name)
            k8s_job = cluster.cluster.job(submission.record.k8s_job_name)
            if not k8s_job.is_terminal:
                testbed.run(until=k8s_job.completion)
        makespan = testbed.env.now - start
        turnarounds = []
        failures = 0
        for submission in submissions:
            if submission.record is None:
                failures += 1
                continue
            cluster = testbed.cluster(submission.decision.cluster_name)
            record = cluster.gateway.tracker.get(submission.record.job_id)
            if record.state == JobState.COMPLETED and record.turnaround() is not None:
                turnarounds.append(record.turnaround())
            else:
                failures += 1
        comparison.outcomes.append(
            StrategyOutcome(
                strategy=name,
                mean_turnaround_s=sum(turnarounds) / len(turnarounds) if turnarounds else float("inf"),
                makespan_s=makespan,
                placements=controller.placement_counts(),
                failures=failures,
            )
        )
    return comparison


# ---------------------------------------------------------------------------
# Result-caching ablation (paper §VII)
# ---------------------------------------------------------------------------


@dataclass
class CachingAblation:
    """Repeated identical requests with and without result caching."""

    request_count: int
    first_latency_s: float
    cold_latencies_s: list[float] = field(default_factory=list)
    warm_latencies_s: list[float] = field(default_factory=list)
    cache_hits: int = 0

    @property
    def mean_cold_s(self) -> float:
        return sum(self.cold_latencies_s) / len(self.cold_latencies_s) if self.cold_latencies_s else 0.0

    @property
    def mean_warm_s(self) -> float:
        return sum(self.warm_latencies_s) / len(self.warm_latencies_s) if self.warm_latencies_s else 0.0

    @property
    def speedup(self) -> float:
        return self.mean_cold_s / self.mean_warm_s if self.mean_warm_s > 0 else float("inf")

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Result caching ablation (repeated identical requests)",
            columns=["configuration", "mean request latency", "cache hits"],
        )
        table.add_row("caching disabled (every request recomputes)", format_seconds(self.mean_cold_s), 0)
        table.add_row("caching enabled (first request computes)", format_seconds(self.first_latency_s), "-")
        table.add_row("caching enabled (subsequent requests)", format_seconds(self.mean_warm_s), self.cache_hits)
        table.add_note(f"caching speeds repeated identical requests up by {self.speedup:,.0f}x")
        return table


def run_caching_ablation(seed: int = 0, repeats: int = 5,
                         job_duration_s: float = 900.0) -> CachingAblation:
    request = ComputeRequest(app="SLEEP", cpu=1, memory_gb=1,
                             params={"duration": f"{job_duration_s:g}"})

    def run_series(enable_cache: bool) -> tuple[list[float], int, float]:
        testbed = LIDCTestbed.single_cluster(seed=seed, enable_result_cache=enable_cache)
        client = testbed.client(poll_interval_s=10.0)
        latencies = []
        # Sequential handle sessions: each repeat must observe the previous
        # one's published result for the cache to answer it.
        for _ in range(repeats):
            start = testbed.env.now
            handle = client.submit(request, unique=False, fetch_result=False,
                                   poll_interval_s=10.0)
            outcome = testbed.run(until=handle.done)
            if not outcome.succeeded:
                raise RuntimeError(f"caching-ablation job failed: {outcome.error}")
            latencies.append(testbed.env.now - start)
        cluster = next(iter(testbed.clusters.values()))
        edge_cs_hits = testbed.overlay.routers[CLIENT_EDGE].cs.hits
        hits = int(cluster.gateway.cache.hits) + int(edge_cs_hits)
        first = latencies[0]
        return latencies, hits, first

    cold_latencies, _, _ = run_series(enable_cache=False)
    warm_latencies, hits, first = run_series(enable_cache=True)
    return CachingAblation(
        request_count=repeats,
        first_latency_s=first,
        cold_latencies_s=cold_latencies,
        warm_latencies_s=warm_latencies[1:],
        cache_hits=hits,
    )


# ---------------------------------------------------------------------------
# Concurrent load through one client (session-based JobHandle API)
# ---------------------------------------------------------------------------


@dataclass
class ConcurrentLoadResult:
    """Makespan of N jobs driven concurrently vs sequentially by one client."""

    jobs: int
    job_duration_s: float
    concurrent_makespan_s: float
    sequential_makespan_s: float
    concurrent_completed: int
    sequential_completed: int
    max_in_flight: int
    pending_after: int
    clusters_used: dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.concurrent_makespan_s <= 0:
            return float("inf")
        return self.sequential_makespan_s / self.concurrent_makespan_s

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Concurrent job sessions — one client, N in-flight JobHandles",
            columns=["submission mode", "jobs completed", "makespan", "max in flight"],
        )
        table.add_row("sequential (submit, wait, repeat)", self.sequential_completed,
                      format_seconds(self.sequential_makespan_s), 1)
        table.add_row("concurrent (submit_many)", self.concurrent_completed,
                      format_seconds(self.concurrent_makespan_s), self.max_in_flight)
        table.add_note(
            f"concurrent sessions finish {self.speedup:,.1f}x sooner; "
            f"{self.pending_after} pending Interests leaked after completion"
        )
        return table


def run_concurrent_load(seed: int = 0, jobs: int = 20, job_duration_s: float = 120.0,
                        poll_interval_s: float = 10.0,
                        cluster_count: int = 1) -> ConcurrentLoadResult:
    """Submit the same batch of jobs sequentially and concurrently.

    The concurrent half drives every job as an in-flight
    :class:`~repro.core.client.JobHandle` on a single client (one Consumer,
    one access router), which is the workload the old blocking poll-loop
    API could not express.
    """
    def build() -> LIDCTestbed:
        if cluster_count <= 1:
            return LIDCTestbed.single_cluster(
                seed=seed, node_count=4, node_cpu=8, node_memory="32Gi")
        return LIDCTestbed.multi_cluster(
            cluster_count, seed=seed, node_count=2, node_cpu=8, node_memory="32Gi")

    def request(index: int) -> ComputeRequest:
        return ComputeRequest(app="SLEEP", cpu=1, memory_gb=1,
                              params={"duration": f"{job_duration_s:g}", "idx": str(index)})

    # -- sequential baseline ---------------------------------------------------
    sequential_bed = build()
    sequential_client = sequential_bed.client(poll_interval_s=poll_interval_s)
    start = sequential_bed.env.now
    sequential_outcomes = [
        sequential_bed.submit_and_wait(request(index), client=sequential_client,
                                       fetch_result=False)
        for index in range(jobs)
    ]
    sequential_makespan = sequential_bed.env.now - start

    # -- concurrent sessions ---------------------------------------------------
    concurrent_bed = build()
    concurrent_client = concurrent_bed.client(poll_interval_s=poll_interval_s)
    start = concurrent_bed.env.now
    handles = concurrent_client.submit_many(
        [request(index) for index in range(jobs)], fetch_result=False)
    concurrent_bed.run(until=concurrent_client.wait_all(handles))
    concurrent_makespan = concurrent_bed.env.now - start

    clusters_used: dict[str, int] = {}
    for handle in handles:
        if handle.cluster:
            clusters_used[handle.cluster] = clusters_used.get(handle.cluster, 0) + 1
    return ConcurrentLoadResult(
        jobs=jobs,
        job_duration_s=job_duration_s,
        concurrent_makespan_s=concurrent_makespan,
        sequential_makespan_s=sequential_makespan,
        concurrent_completed=sum(1 for h in handles if h.succeeded),
        sequential_completed=sum(1 for o in sequential_outcomes if o.succeeded),
        max_in_flight=concurrent_client.max_in_flight,
        pending_after=concurrent_client.consumer.pending_count(),
        clusters_used=clusters_used,
    )


# ---------------------------------------------------------------------------
# Decentralized LIDC vs centralized controller baseline
# ---------------------------------------------------------------------------


@dataclass
class BaselineComparison:
    """Availability of LIDC vs the centralized baseline under failures."""

    lidc_success_normal: float
    lidc_success_after_cluster_failure: float
    central_success_normal: float
    central_success_after_controller_failure: float
    lidc_placements: dict[str, int] = field(default_factory=dict)
    central_placements: dict[str, int] = field(default_factory=dict)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Decentralized LIDC overlay vs centralized controller baseline",
            columns=["control plane", "normal operation", "after failure injection", "failure injected"],
        )
        table.add_row(
            "LIDC (name-based, decentralized)",
            f"{self.lidc_success_normal * 100:.0f}%",
            f"{self.lidc_success_after_cluster_failure * 100:.0f}%",
            "one whole cluster fails",
        )
        table.add_row(
            "Centralized federation controller",
            f"{self.central_success_normal * 100:.0f}%",
            f"{self.central_success_after_controller_failure * 100:.0f}%",
            "the controller fails",
        )
        table.add_note("LIDC keeps placing jobs on surviving clusters; the centralized design stalls entirely")
        return table


def run_baseline_comparison(seed: int = 0, cluster_count: int = 3,
                            requests_per_phase: int = 6,
                            job_duration_s: float = 60.0) -> BaselineComparison:
    request_params = {"duration": f"{job_duration_s:g}"}

    # --- LIDC overlay ---------------------------------------------------------
    lidc = LIDCTestbed.multi_cluster(cluster_count, seed=seed, node_count=1,
                                     node_cpu=4, node_memory="8Gi")
    lidc.overlay.use_load_balancing()
    client = lidc.client(poll_interval_s=10.0)

    def lidc_phase(count: int) -> list[JobOutcome]:
        def phase():
            outcomes = []
            for _ in range(count):
                outcome = yield from client.run_workflow(
                    ComputeRequest(app="SLEEP", cpu=1, memory_gb=1, params=dict(request_params)),
                    poll_interval_s=10.0, fetch_result=False,
                )
                outcomes.append(outcome)
            return outcomes
        return lidc.run_process(phase())

    normal = lidc_phase(requests_per_phase)
    victim = sorted(lidc.clusters)[0]
    lidc.overlay.fail_cluster(victim)
    degraded = lidc_phase(requests_per_phase)
    lidc_placements: dict[str, int] = {}
    for outcome in normal + degraded:
        if outcome.submission.cluster:
            lidc_placements[outcome.submission.cluster] = (
                lidc_placements.get(outcome.submission.cluster, 0) + 1
            )

    # --- centralized baseline --------------------------------------------------
    central_bed = LIDCTestbed.multi_cluster(cluster_count, seed=seed + 1, node_count=1,
                                            node_cpu=4, node_memory="8Gi")
    controller = CentralizedController(
        central_bed.env, clusters=list(central_bed.clusters.values()),
        strategy=LeastLoadedPlacement(),
    )

    def central_phase(count: int) -> list[bool]:
        results = []
        for _ in range(count):
            submission = controller.try_submit(
                ComputeRequest(app="SLEEP", cpu=1, memory_gb=1, params=dict(request_params))
            )
            if submission.record is None:
                results.append(False)
                continue
            cluster = central_bed.cluster(submission.decision.cluster_name)
            k8s_job = cluster.cluster.job(submission.record.k8s_job_name)
            central_bed.run(until=k8s_job.completion)
            record = cluster.gateway.tracker.get(submission.record.job_id)
            results.append(record.state == JobState.COMPLETED)
        return results

    central_normal = central_phase(requests_per_phase)
    controller.fail()
    central_failed = central_phase(requests_per_phase)

    def rate(values: "list[bool] | list[JobOutcome]") -> float:
        if not values:
            return 0.0
        if isinstance(values[0], bool):
            return sum(1 for v in values if v) / len(values)
        return sum(1 for v in values if v.succeeded) / len(values)

    return BaselineComparison(
        lidc_success_normal=rate(normal),
        lidc_success_after_cluster_failure=rate(degraded),
        central_success_normal=rate(central_normal),
        central_success_after_controller_failure=rate(central_failed),
        lidc_placements=lidc_placements,
        central_placements=controller.placement_counts(),
    )


# ---------------------------------------------------------------------------
# Forwarding-plane exchange (substrate microbenchmark workload)
# ---------------------------------------------------------------------------


@dataclass
class ForwardingExchangeResult:
    """Forwarder-table statistics after a consumer/producer exchange batch."""

    items: int
    repeats: int
    received: int
    cs_hits: int
    cs_evictions: int
    pit_aggregated: int

    @property
    def requests(self) -> int:
        return self.items * self.repeats


def run_forwarding_exchange(
    seed: int = 0,
    items: int = 50,
    repeats: int = 1,
    cs_capacity: int = 0,
    cs_policy: str = "lru",
) -> ForwardingExchangeResult:
    """Drive Interest/Data exchanges through a two-forwarder chain.

    A producer behind the ``origin`` forwarder publishes ``items`` objects;
    a consumer at the ``edge`` forwarder requests each of them ``repeats``
    times.  With a non-zero ``cs_capacity`` the repeats are answered by the
    edge content store.  The result is deterministic in ``seed`` (the
    workload itself is seed-free, but the signature conforms to the sweep
    runner's ``fn(seed=..., **params)`` convention).
    """
    from repro.ndn.client import Consumer, Producer
    from repro.ndn.face import connect
    from repro.ndn.forwarder import Forwarder
    from repro.ndn.routing import RoutingDaemon
    from repro.sim.engine import Environment
    from repro.sim.topology import Link

    env = Environment()
    edge = Forwarder(env, "edge", cs_capacity=cs_capacity, cs_policy=cs_policy)
    origin = Forwarder(env, "origin", cs_capacity=cs_capacity, cs_policy=cs_policy)
    face_a, face_b = connect(env, edge, origin, link=Link("e", "o", latency_s=0.001), label="e-o")
    daemon_edge, daemon_origin = RoutingDaemon(edge), RoutingDaemon(origin)
    RoutingDaemon.peer(daemon_edge, face_a, daemon_origin, face_b)
    producer = Producer(env, origin, "/svc")
    for index in range(items):
        producer.publish(f"/svc/item-{index}", b"payload" * 10)
    daemon_origin.announce("/svc")
    consumer = Consumer(env, edge)
    for _round in range(repeats):
        events = [consumer.express_interest(f"/svc/item-{index}") for index in range(items)]
        env.run(until=env.all_of(events))
    return ForwardingExchangeResult(
        items=items,
        repeats=repeats,
        received=consumer.data_received,
        cs_hits=edge.cs.hits,
        cs_evictions=edge.cs.evictions,
        pit_aggregated=edge.pit.aggregated,
    )


# ---------------------------------------------------------------------------
# Experiment registry (sweep-runner entry points)
# ---------------------------------------------------------------------------

#: Experiment id -> module-level runner.  Every runner takes ``seed`` as a
#: keyword argument, making the whole registry shardable by
#: :func:`repro.analysis.sweep.run_sweep` out of the box.
EXPERIMENT_RUNNERS = {
    "table1": run_table1,
    "fig2_name_placement": run_fig2_name_placement,
    "fig3_service_mapping": run_fig3_service_mapping,
    "fig5_workflow": run_fig5_workflow,
    "overlay_churn": run_overlay_churn,
    "placement_comparison": run_placement_comparison,
    "caching_ablation": run_caching_ablation,
    "concurrent_load": run_concurrent_load,
    "baseline_comparison": run_baseline_comparison,
    "forwarding_exchange": run_forwarding_exchange,
}


def run_experiment(experiment: str, seed: int = 0, **kwargs):
    """Dispatch to a registered experiment runner by id.

    A module-level (hence picklable) entry point: sweep workers can be handed
    ``run_experiment`` with ``experiment`` as a grid axis to shard any mix of
    experiments across processes.
    """
    try:
        runner = EXPERIMENT_RUNNERS[experiment]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENT_RUNNERS))
        raise KeyError(f"unknown experiment {experiment!r} (known: {known})") from None
    return runner(seed=seed, **kwargs)
