"""Per-function effect lattice and the call-graph fixpoint.

The interprocedural layer reduces every function in the project to a small
effect set — the only facts the transitive rules need:

========  =================================================================
BLOCKS            may block the OS thread (``time.sleep``, sockets,
                  subprocess)
WALL_CLOCK        reads a wall clock (``time.time``/``monotonic``/
                  ``perf_counter``, ``datetime.now`` …)
AMBIENT_ENTROPY   draws ambient randomness (``random``/``secrets``
                  modules, ``os.urandom``, ``uuid1``/``uuid4``)
WIRE_DECODE       materialises a packet (zero-arg ``.decode()``,
                  ``Interest``/``Data``/``Nack`` construction)
SET_ITERATION     iterates a set display/constructor (hash-seed order)
========  =================================================================

Direct effects are classified per AST site while the module summary is
built (:mod:`repro.analysis.lint.symbols`); :func:`propagate` then closes
the sets over the project call graph to a fixpoint, recording for each
``(function, effect)`` a *witness* — either the direct sink site or the
call edge the effect arrived through — from which
:func:`witness_chain` reconstructs a full ``caller → … → sink`` path for
finding messages.

Sanctioned sources are *barriers*: ``repro.sim.rng`` is the project's
seeded entropy/clock authority, so its nondeterminism effects never
propagate to callers (exempt by design, mirroring RL002), and the codec
internals in ``repro/ndn/packet.py`` never count as decode sinks — the
contract polices who *asks* for a materialisation, not the code that
implements it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping, Optional, Sequence

from repro.analysis.lint.engine import dotted_name

__all__ = [
    "BLOCKS",
    "WALL_CLOCK",
    "AMBIENT_ENTROPY",
    "WIRE_DECODE",
    "SET_ITERATION",
    "ALL_EFFECTS",
    "EFFECT_BASE_RULE",
    "EFFECT_BARRIERS",
    "FORWARDING_PLANE_FILES",
    "HOT_LOOP_FILES",
    "DETERMINISM_DIRS",
    "DETERMINISM_EXEMPT_FILES",
    "EffectSite",
    "Witness",
    "classify_call",
    "classify_attribute",
    "classify_iteration",
    "propagate",
    "witness_chain",
    "short_name",
    "render_chain",
]

BLOCKS = "BLOCKS"
WALL_CLOCK = "WALL_CLOCK"
AMBIENT_ENTROPY = "AMBIENT_ENTROPY"
WIRE_DECODE = "WIRE_DECODE"
SET_ITERATION = "SET_ITERATION"

ALL_EFFECTS = frozenset(
    {BLOCKS, WALL_CLOCK, AMBIENT_ENTROPY, WIRE_DECODE, SET_ITERATION}
)

#: The line-local rule that owns each effect's direct form.  A sink line
#: waived for its base rule (where that rule applies) is sanctioned and
#: does not propagate.
EFFECT_BASE_RULE: dict[str, str] = {
    BLOCKS: "RL003",
    WALL_CLOCK: "RL002",
    AMBIENT_ENTROPY: "RL002",
    SET_ITERATION: "RL002",
    WIRE_DECODE: "RL001",
}

#: Modules whose listed effects are sanctioned by design and therefore
#: stop at the module boundary instead of propagating to callers.
EFFECT_BARRIERS: dict[str, frozenset[str]] = {
    "/repro/sim/rng.py": frozenset({WALL_CLOCK, AMBIENT_ENTROPY, SET_ITERATION}),
}

#: Modules a transiting packet crosses (shared with RL001/RL011).
FORWARDING_PLANE_FILES: tuple[str, ...] = (
    "/repro/ndn/forwarder.py",
    "/repro/ndn/face.py",
    "/repro/ndn/shard.py",
    "/repro/ndn/strategy.py",
    "/repro/ndn/cs.py",
    "/repro/ndn/pit.py",
    "/repro/ndn/fib.py",
    "/repro/ndn/nametree.py",
)

#: Engine + dispatch-path modules (shared with RL003/RL009).
HOT_LOOP_FILES: tuple[str, ...] = (
    "/repro/sim/engine.py",
    "/repro/ndn/forwarder.py",
    "/repro/ndn/strategy.py",
    "/repro/ndn/face.py",
    "/repro/ndn/nametree.py",
    "/repro/ndn/cs.py",
    "/repro/ndn/pit.py",
    "/repro/ndn/fib.py",
)

#: Determinism scope (shared with RL002/RL010).  The workload generators
#: are in scope by design: their whole value is that a trace reproduces
#: from (seed, spec) alone, so wall clocks and ambient entropy are
#: statically barred there exactly as in the engine.  The chaos layer is
#: held to the same bar: a fault schedule must replay bit-identically
#: from (seed, spec), so its generators and driver get no ambient entropy
#: either.
DETERMINISM_DIRS: tuple[str, ...] = (
    "/repro/sim/",
    "/repro/ndn/",
    "/repro/workload/",
    "/repro/chaos/",
)
DETERMINISM_EXEMPT_FILES: tuple[str, ...] = ("/repro/sim/rng.py",)

#: The codec itself implements decode; its internals are not sinks.
_DECODE_EXEMPT_FILES: tuple[str, ...] = ("/repro/ndn/packet.py",)

_WALL_CLOCK_CHAINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

_ENTROPY_CHAINS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

_BLOCKING_ROOTS = frozenset({"socket", "subprocess"})

_PACKET_TYPES = frozenset({"Interest", "Data", "Nack"})


class EffectSite:
    """One direct effect occurrence inside a function body."""

    __slots__ = ("effect", "line", "col", "desc")

    def __init__(self, effect: str, line: int, col: int, desc: str) -> None:
        self.effect = effect
        self.line = line
        self.col = col
        self.desc = desc

    def as_dict(self) -> dict:
        return {
            "effect": self.effect,
            "line": self.line,
            "col": self.col,
            "desc": self.desc,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "EffectSite":
        return cls(raw["effect"], raw["line"], raw["col"], raw["desc"])


def classify_attribute(chain: str) -> Optional[tuple[str, str]]:
    """Classify a dotted attribute chain as ``(effect, description)``."""
    if chain == "time.sleep":
        return BLOCKS, "time.sleep"
    root = chain.split(".")[0]
    if root in _BLOCKING_ROOTS:
        return BLOCKS, chain
    if chain in _WALL_CLOCK_CHAINS:
        return WALL_CLOCK, chain
    if chain in _ENTROPY_CHAINS:
        return AMBIENT_ENTROPY, chain
    if root in ("random", "secrets") or ".random." in chain:
        return AMBIENT_ENTROPY, chain
    return None


def classify_call(node: ast.Call, module_path: str) -> Optional[tuple[str, str]]:
    """Classify decode/construction call patterns (the RL001 sink forms)."""
    if any(module_path.endswith(s) for s in _DECODE_EXEMPT_FILES):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _PACKET_TYPES:
        return WIRE_DECODE, f"{func.id}(...)"
    if isinstance(func, ast.Attribute) and func.attr == "decode":
        owner = dotted_name(func.value)
        if owner in _PACKET_TYPES:
            return WIRE_DECODE, f"{owner}.decode(...)"
        if not node.args and not node.keywords:
            return WIRE_DECODE, ".decode()"
    return None


def classify_iteration(iter_node: ast.expr) -> Optional[tuple[str, str]]:
    """Classify direct set iteration (the RL002 hash-order sink form)."""
    if isinstance(iter_node, ast.Set):
        return SET_ITERATION, "iteration over a set display"
    if (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
        and iter_node.func.id in ("set", "frozenset")
    ):
        return SET_ITERATION, f"iteration over {iter_node.func.id}(...)"
    return None


class Witness:
    """Why a function carries an effect: a direct sink or a call edge."""

    __slots__ = ("kind", "site", "callee", "line", "col")

    def __init__(
        self,
        kind: str,
        site: Optional[EffectSite] = None,
        callee: str = "",
        line: int = 0,
        col: int = 0,
    ) -> None:
        self.kind = kind  # "direct" | "via"
        self.site = site
        self.callee = callee
        self.line = line
        self.col = col


def propagate(
    direct: Mapping[str, Sequence[EffectSite]],
    edges: Mapping[str, Sequence[tuple[str, int, int]]],
    barred: Mapping[str, frozenset[str]],
) -> dict[str, dict[str, Witness]]:
    """Close per-function effect sets over the call graph to a fixpoint.

    ``direct`` maps a function's qualified name to its direct sink sites,
    ``edges`` maps caller -> [(callee, line, col)], and ``barred`` maps a
    function to effects that must not escape it (sanctioned-source
    barriers).  Returns ``{function: {effect: Witness}}``.  Witnesses are
    assigned the first time an effect reaches a function in a
    breadth-first sweep, so recorded chains are shortest-first and the
    via-pointers can never cycle.
    """
    effects: dict[str, dict[str, Witness]] = {}
    functions = sorted(set(direct) | set(edges))
    for name in functions:
        effects[name] = {}
        for site in direct.get(name, ()):
            if site.effect in barred.get(name, frozenset()):
                continue
            effects[name].setdefault(site.effect, Witness("direct", site=site))
    changed = True
    while changed:
        changed = False
        for caller in functions:
            caller_effects = effects[caller]
            blocked = barred.get(caller, frozenset())
            for callee, line, col in edges.get(caller, ()):
                callee_effects = effects.get(callee)
                if not callee_effects:
                    continue
                for effect in sorted(callee_effects):
                    if effect in caller_effects or effect in blocked:
                        continue
                    caller_effects[effect] = Witness(
                        "via", callee=callee, line=line, col=col
                    )
                    changed = True
    return effects


def witness_chain(
    effects: Mapping[str, Mapping[str, Witness]], start: str, effect: str
) -> tuple[list[str], Optional[EffectSite]]:
    """Follow via-pointers from ``start`` down to the direct sink.

    Returns the function chain (``start`` first) and the sink site, or
    ``(chain, None)`` if the trail dead-ends (defensive; witnesses built
    by :func:`propagate` always terminate).
    """
    chain = [start]
    current = start
    seen = {start}
    while True:
        witness = effects.get(current, {}).get(effect)
        if witness is None:
            return chain, None
        if witness.kind == "direct":
            return chain, witness.site
        if witness.callee in seen:  # defensive: malformed witness table
            return chain, None
        seen.add(witness.callee)
        chain.append(witness.callee)
        current = witness.callee


def short_name(qualname: str) -> str:
    """``repro.ndn.shard.ShardWorkerPool._drain`` -> ``shard.ShardWorkerPool._drain``."""
    parts = qualname.split(".")
    for index, part in enumerate(parts):
        if part and (part[0].isupper() or index == len(parts) - 1):
            module_part = parts[index - 1] if index > 0 else parts[0]
            return ".".join([module_part] + parts[index:])
    return qualname


def render_chain(chain: Iterable[str], sink_desc: str) -> str:
    """``engine.run → shard._drain → time.sleep`` display form."""
    hops = [short_name(name) for name in chain]
    hops.append(sink_desc)
    return " → ".join(hops)
