"""Conservative name-based call graph over module summaries.

:class:`ProjectIndex` links every scanned module's summary into one
whole-program view: a global symbol table (functions, classes, import
bindings, re-exports through package ``__init__`` modules), a class
hierarchy, and resolved call edges, then closes per-function effects over
the graph (:func:`repro.analysis.lint.effects.propagate`).

Resolution strategy, most precise first:

* direct ``name()`` calls resolve through module-level defs and import
  bindings (following package re-export chains);
* ``mod.attr`` dotted calls resolve through the import table into the
  target module's symbols — constructing a class resolves to its
  ``__init__`` (searching ancestors);
* ``self.m()`` / ``cls.m()`` resolves by class-hierarchy approximation:
  every definition of ``m`` in the enclosing class, its ancestors and its
  descendants (override dispatch) becomes an edge;
* a bare-attribute call ``obj.m()`` with an unknown receiver falls back
  to *every* project method named ``m`` — except dunders and names that
  collide with builtin container/string/IO/generator methods
  (:data:`AMBIGUOUS_METHOD_NAMES`), where the flood of false edges would
  drown the signal.  Precision over recall, only at the ambiguity
  frontier, and only for the fallback tier;
* function references in argument position (callbacks,
  ``functools.partial`` targets) become may-call edges, but only when
  they resolve without the fallback tier.

Everything iterates in sorted order, so edges, effects and witness
chains are bit-stable across runs — a prerequisite for ``--baseline``
report diffing.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.lint.effects import EFFECT_BARRIERS, EffectSite, propagate
from repro.analysis.lint.symbols import MODULE_KEY, ModuleSummary

__all__ = ["AMBIGUOUS_METHOD_NAMES", "ProjectIndex"]

#: Method names skipped by the unknown-receiver fallback: they collide
#: with builtin dict/list/set/str/IO/generator/socket/executor APIs, so a
#: bare ``obj.get(...)`` is overwhelmingly a builtin call, not a project
#: one.
AMBIGUOUS_METHOD_NAMES = frozenset(
    {
        "add", "accept", "acquire", "append", "appendleft", "bind",
        "bit_length", "cancel", "clear", "close", "connect", "copy",
        "count", "discard", "done", "encode", "endswith", "extend",
        "findall", "flush", "format", "from_bytes", "get", "group",
        "groups", "hex", "index", "insert", "is_set", "items", "join",
        "keys", "lower", "lstrip", "match", "most_common", "notify",
        "notify_all", "open", "pop", "popitem", "popleft", "put", "read",
        "readline", "readlines", "recv", "release", "remove", "replace",
        "reverse", "rsplit", "rstrip", "run", "search", "seek", "send",
        "set", "setdefault", "sort", "split", "startswith", "strip",
        "sub", "submit",
        "tell", "throw", "to_bytes", "total_seconds", "update", "upper",
        "values", "wait", "write", "writelines",
    }
)

_MAX_REEXPORT_DEPTH = 8


class ProjectIndex:
    """Whole-program symbol, call-graph and effect view."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.summaries: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.summaries.setdefault(summary.key, summary)
        #: dotted module name -> summary (only modules with real names)
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries.values() if s.module
        }
        #: global function qualname -> (module key, local qualname, line)
        self.functions: dict[str, tuple[str, str, int]] = {}
        #: global class qualname -> class info dict
        self.classes: dict[str, dict] = {}
        #: method name -> sorted list of defining class qualnames
        self.method_index: dict[str, list[str]] = {}
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            for local, line in summary.functions.items():
                self.functions[f"{key}.{local}"] = (key, local, line)
            self.functions.setdefault(f"{key}.{MODULE_KEY}", (key, MODULE_KEY, 1))
            for class_local, info in summary.classes.items():
                class_qual = f"{key}.{class_local}"
                self.classes[class_qual] = info
                for method in info["methods"]:
                    self.method_index.setdefault(method, []).append(class_qual)
        for method in self.method_index:
            self.method_index[method].sort()
        self._parents: dict[str, list[str]] = {}
        self._children: dict[str, list[str]] = {}
        self._link_hierarchy()
        #: module key -> local function -> sorted [(callee qual, line, col)]
        self.resolved: dict[str, dict[str, list[tuple[str, int, int]]]] = {}
        #: name -> sorted module keys mentioning it
        self.mentioned_in: dict[str, list[str]] = {}
        self._resolve_all()
        self.effects = propagate(self._direct_effects(), self._edges(), self._barred())

    # ---------------------------------------------------------------- building

    def _link_hierarchy(self) -> None:
        for class_qual in sorted(self.classes):
            key = class_qual.rsplit(".", 1)[0]
            while key and key not in self.summaries:
                key = key.rsplit(".", 1)[0] if "." in key else ""
            summary = self.summaries.get(key)
            if summary is None:
                continue
            parents: list[str] = []
            for base in self.classes[class_qual]["bases"]:
                resolved = self._resolve_class_name(summary, base)
                if resolved is not None:
                    parents.append(resolved)
            self._parents[class_qual] = parents
            for parent in parents:
                self._children.setdefault(parent, []).append(class_qual)
        for children in self._children.values():
            children.sort()

    def _resolve_class_name(
        self, summary: ModuleSummary, dotted: str
    ) -> Optional[str]:
        parts = dotted.split(".")
        head = parts[0]
        if dotted in summary.classes:
            return f"{summary.key}.{dotted}"
        if head in summary.imports:
            target = ".".join([summary.imports[head]] + parts[1:])
            resolved = self._resolve_target(target)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
        return None

    def _resolve_target(
        self, dotted: str, _depth: int = 0
    ) -> Optional[tuple[str, str]]:
        """Resolve a fully dotted path to ``("func"|"class"|"module", qual)``."""
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            summary = self.modules.get(prefix)
            if summary is None:
                continue
            rest = parts[cut:]
            if not rest:
                return "module", prefix
            local = ".".join(rest)
            if local in summary.functions:
                return "func", f"{prefix}.{local}"
            if rest[0] in summary.classes:
                if len(rest) == 1:
                    return "class", f"{prefix}.{rest[0]}"
                if len(rest) == 2 and rest[1] in summary.classes[rest[0]]["methods"]:
                    return "func", f"{prefix}.{rest[0]}.{rest[1]}"
                return None
            if rest[0] in summary.imports:
                # package __init__ re-export: follow the chain
                target = ".".join([summary.imports[rest[0]]] + rest[1:])
                return self._resolve_target(target, _depth + 1)
            return None
        return None

    # ---------------------------------------------------------------- hierarchy

    def _ancestors(self, class_qual: str) -> list[str]:
        out: list[str] = []
        frontier = list(self._parents.get(class_qual, ()))
        seen = {class_qual}
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            frontier.extend(self._parents.get(current, ()))
        return out

    def _descendants(self, class_qual: str) -> list[str]:
        out: list[str] = []
        frontier = list(self._children.get(class_qual, ()))
        seen = {class_qual}
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            frontier.extend(self._children.get(current, ()))
        return out

    def _cha_lookup(self, class_qual: str, method: str) -> list[str]:
        """Every definition of ``method`` visible from ``class_qual``."""
        candidates: list[str] = []
        for candidate in (
            [class_qual] + self._ancestors(class_qual) + self._descendants(class_qual)
        ):
            info = self.classes.get(candidate)
            if info is not None and method in info["methods"]:
                candidates.append(f"{candidate}.{method}")
        return sorted(set(candidates))

    def _init_targets(self, class_qual: str) -> list[str]:
        """The ``__init__`` run by constructing ``class_qual`` (or nearest base's)."""
        for candidate in [class_qual] + self._ancestors(class_qual):
            info = self.classes.get(candidate)
            if info is not None and "__init__" in info["methods"]:
                return [f"{candidate}.__init__"]
        return []

    def _fallback_methods(self, method: str) -> list[str]:
        if method.startswith("__") or method in AMBIGUOUS_METHOD_NAMES:
            return []
        return [
            f"{class_qual}.{method}"
            for class_qual in self.method_index.get(method, ())
        ]

    # ---------------------------------------------------------------- calls

    def _resolve_descriptor(
        self, summary: ModuleSummary, caller_local: str, descriptor: dict
    ) -> list[str]:
        kind = descriptor["kind"]
        if kind in ("name", "refname"):
            return self._resolve_name(summary, descriptor["name"])
        if kind == "attr":
            return self._fallback_methods(descriptor["attr"])
        # dotted / refdotted
        parts = descriptor["dotted"].split(".")
        allow_fallback = kind == "dotted"
        head = parts[0]
        if head in ("self", "cls") and "." in caller_local:
            class_qual = f"{summary.key}.{caller_local.rsplit('.', 1)[0]}"
            if len(parts) == 2:
                found = self._cha_lookup(class_qual, parts[1])
                if found:
                    return found
            return self._fallback_methods(parts[-1]) if allow_fallback else []
        if head in summary.classes and len(parts) == 2:
            return self._cha_lookup(f"{summary.key}.{head}", parts[1])
        if head in summary.imports:
            target = ".".join([summary.imports[head]] + parts[1:])
            resolved = self._resolve_target(target)
            if resolved is not None:
                if resolved[0] == "func":
                    return [resolved[1]]
                if resolved[0] == "class":
                    return self._init_targets(resolved[1])
                return []
            base = self._resolve_target(summary.imports[head])
            if base is not None and base[0] == "class" and len(parts) == 2:
                return self._cha_lookup(base[1], parts[1])
            if base is not None:
                return []  # known project symbol, unknown attribute
            return []  # an external module: stdlib/third-party
        return self._fallback_methods(parts[-1]) if allow_fallback else []

    def _resolve_name(self, summary: ModuleSummary, name: str) -> list[str]:
        if name in summary.functions and "." not in name:
            return [f"{summary.key}.{name}"]
        if name in summary.classes:
            return self._init_targets(f"{summary.key}.{name}")
        if name in summary.imports:
            resolved = self._resolve_target(summary.imports[name])
            if resolved is not None:
                if resolved[0] == "func":
                    return [resolved[1]]
                if resolved[0] == "class":
                    return self._init_targets(resolved[1])
        return []

    def _resolve_all(self) -> None:
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            for name in summary.mentions:
                self.mentioned_in.setdefault(name, []).append(key)
            per_function: dict[str, list[tuple[str, int, int]]] = {}
            for caller_local in sorted(summary.calls):
                edges: set[tuple[str, int, int]] = set()
                for descriptor in summary.calls[caller_local]:
                    for target in self._resolve_descriptor(
                        summary, caller_local, descriptor
                    ):
                        edges.add((target, descriptor["line"], descriptor["col"]))
                if edges:
                    per_function[caller_local] = sorted(edges)
            self.resolved[key] = per_function

    # ---------------------------------------------------------------- effects

    def _edges(self) -> dict[str, list[tuple[str, int, int]]]:
        edges: dict[str, list[tuple[str, int, int]]] = {}
        for key in sorted(self.resolved):
            for caller_local, targets in self.resolved[key].items():
                edges[f"{key}.{caller_local}"] = targets
        return edges

    def _direct_effects(self) -> dict[str, list[EffectSite]]:
        direct: dict[str, list[EffectSite]] = {}
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            for local, sites in summary.effect_sites.items():
                direct[f"{key}.{local}"] = list(sites)
        return direct

    def _barred(self) -> dict[str, frozenset[str]]:
        barred: dict[str, frozenset[str]] = {}
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            effects = frozenset()
            for suffix, barred_effects in EFFECT_BARRIERS.items():
                if summary.path.endswith(suffix):
                    effects = effects | barred_effects
            if effects:
                locals_ = set(summary.functions) | set(summary.effect_sites) | {
                    MODULE_KEY
                }
                for local in locals_:
                    barred[f"{key}.{local}"] = effects
        return barred

    # ---------------------------------------------------------------- queries

    def path_of_function(self, qualname: str) -> Optional[str]:
        entry = self.functions.get(qualname)
        if entry is None:
            # a method qual: strip the method, look for its class's module
            if "." in qualname:
                class_qual, method = qualname.rsplit(".", 1)
                info = self.classes.get(class_qual)
                if info is not None:
                    key = self._module_key_of_class(class_qual)
                    if key is not None:
                        return self.summaries[key].path
            return None
        return self.summaries[entry[0]].path

    def display_of_function(self, qualname: str) -> Optional[str]:
        entry = self.functions.get(qualname)
        if entry is None:
            return None
        return self.summaries[entry[0]].display

    def line_of_function(self, qualname: str) -> int:
        entry = self.functions.get(qualname)
        return entry[2] if entry is not None else 1

    def _module_key_of_class(self, class_qual: str) -> Optional[str]:
        key = class_qual
        while "." in key:
            key = key.rsplit(".", 1)[0]
            if key in self.summaries:
                return key
        return key if key in self.summaries else None

    def calls_from(self, key: str) -> dict[str, list[tuple[str, int, int]]]:
        """Resolved edges for one module, keyed by local function."""
        return self.resolved.get(key, {})

    def referenced_elsewhere(self, name: str, own_key: str) -> bool:
        """Is ``name`` mentioned by any module other than ``own_key``?"""
        return any(key != own_key for key in self.mentioned_in.get(name, ()))

    def incoming_foreign_edges(self, key: str) -> set[str]:
        """Local functions of ``key`` called from another module."""
        called: set[str] = set()
        prefix = f"{key}."
        for other_key in sorted(self.resolved):
            if other_key == key:
                continue
            for targets in self.resolved[other_key].values():
                for target, _line, _col in targets:
                    if target.startswith(prefix):
                        called.add(target[len(prefix):])
        return called
