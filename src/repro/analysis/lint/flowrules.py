"""Dataflow rules RL013-RL016: what the CFG layer sees that call graphs miss.

These rules consume the per-function flow facts that
:func:`repro.analysis.lint.dataflow.analyze_function` stored in each
:class:`~repro.analysis.lint.symbols.ModuleSummary` — they are
:class:`~repro.analysis.lint.engine.SummaryRule` subclasses, so warm cache
runs drive them without re-parsing a single file.

Conditional events (a tracked value passed to a call) are resolved *here*,
one call deep: the event's ``(line, col)`` is matched against the resolved
call graph, and the callee's ``param_escapes`` / ``param_releases``
summary decides whether the event is an escape / a release.  An
unresolved callee (stdlib, third party) is treated asymmetrically by
design: it never *proves* an escape (RL013 stays quiet) and it always
*may* release (RL014 stays quiet) — both choices keep the gating rules
precise at the cost of recall, which is the right trade for a gate.

========  ==============================================================
RL013     escape-then-mutate: a wire buffer/bytearray mutated in place
          after escaping into a cache/CS entry/ledger/attribute or a
          shard boundary (forwarding plane + packet codec).  The
          copy-then-patch idiom (``patched = bytearray(pkt.wire)`` …
          mutate … ``bytes(patched)``) is *proven* clean: ``bytes(x)``
          is a copy, not an alias, and mutation-before-escape never
          matches.
RL014     resource leak: a handle from ``open``/``Pipe``/``Popen``/
          ``lock.acquire()`` with a normal-exit CFG path that neither
          releases it, returns it, nor stores it away (everywhere,
          relaxed profile included; ``with`` satisfies trivially).
RL015     fork-shared state: a module-level mutable global written by
          code reachable from a ``Process(target=...)`` worker
          entrypoint while parent-side code reads it — the write lands
          in the child's copy, the parent silently diverges.
RL016     advisory: allocation churn (displays, comprehensions,
          f-strings, constructor calls) inside loop bodies of hot-path
          functions, with loop depth and per-function counts — the
          machine-generated worklist for the capacity refactor.
========  ==============================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Tuple

from repro.analysis.lint.effects import FORWARDING_PLANE_FILES, HOT_LOOP_FILES
from repro.analysis.lint.engine import Finding, SummaryRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint.callgraph import ProjectIndex
    from repro.analysis.lint.engine import ModuleRecord

__all__ = [
    "EscapeThenMutateRule",
    "ResourceLeakRule",
    "ForkSharedStateRule",
    "HotLoopChurnRule",
    "flow_rules",
]


def _resolve_site(
    index: "ProjectIndex", key: str, func: str, line: int, col: int
) -> Optional[str]:
    """The callee qualname resolved at a recorded call site, or None."""
    edges = index.resolved.get(key, {}).get(func, [])
    for callee, edge_line, edge_col in edges:
        if edge_line == line and edge_col == col:
            return callee
    return None


def _callee_flow(index: "ProjectIndex", callee: str) -> Tuple[Optional[dict], str]:
    """(flow dict, local qualname) for a resolved callee, if summarised."""
    entry = index.functions.get(callee)
    if entry is None:
        return None, ""
    key, local, _line = entry
    summary = index.summaries.get(key)
    if summary is None:
        return None, local
    return summary.flow.get(local, {}), local


def _param_matches(flow: dict, local: str, arg: object, summary_key: str) -> bool:
    """Does the argref land on a summarised parameter name in ``summary_key``?

    ``summary_key`` is ``"param_escapes"`` or ``"param_releases"``.  When
    the position cannot be mapped (nested/starred arg, no params list),
    fall back to "any summarised param" — may-semantics.
    """
    names = flow.get(summary_key, [])
    if not names:
        return False
    params = flow.get("params", [])
    if isinstance(arg, str):
        return arg in names
    if isinstance(arg, int) and params:
        # Method receivers: a leading self/cls is not passed explicitly.
        offset = 1 if "." in local and params[:1] in (["self"], ["cls"]) else 0
        position = arg + offset
        if 0 <= position < len(params):
            return params[position] in names
    return True  # unmappable: any summarised param may be the one


def _hop(function: str, path: str, line: int) -> dict:
    return {"function": function, "path": path, "line": line}


class EscapeThenMutateRule(SummaryRule):
    """RL013: in-place mutation of a buffer after it escaped."""

    id = "RL013"
    title = "no in-place mutation of an escaped wire buffer"
    rationale = (
        "a buffer stored in a cache/CS/ledger or handed to a shard is shared; "
        "patching it afterwards corrupts every future reader"
    )
    #: The forwarding plane plus the codec: the copy-then-patch idiom in
    #: packet.py is in scope precisely so it is *proven* clean, not skipped.
    scope_files = FORWARDING_PLANE_FILES + ("/repro/ndn/packet.py",)

    def check_summaries(
        self, records: Sequence["ModuleRecord"], index: "ProjectIndex"
    ) -> Iterator[Finding]:
        for record in records:
            summary = record.summary
            if summary is None:
                continue
            for func in sorted(summary.flow):
                for candidate in summary.flow[func].get("escape_mutations", []):
                    escape = candidate["escape"]
                    if escape["kind"] == "call":
                        callee = _resolve_site(
                            index, summary.key, func,
                            escape["line"], escape["col"],
                        )
                        if callee is None:
                            continue  # unresolved call proves nothing
                        flow, local = _callee_flow(index, callee)
                        if not flow or not _param_matches(
                            flow, local, escape.get("arg"), "param_escapes"
                        ):
                            continue
                        how = f"escapes via {callee}(...)"
                    else:
                        how = escape["desc"]
                    mutation = candidate["mutation"]
                    finding = Finding(
                        rule=self.id,
                        path=record.display,
                        line=mutation["line"],
                        col=0,
                        message=(
                            f"buffer {candidate['var']!r} "
                            f"({candidate['def_desc']}, line "
                            f"{candidate['def_line']}) {how} at line "
                            f"{escape['line']} and is mutated in place at "
                            f"line {mutation['line']} ({mutation['desc']}); "
                            "mutate before publishing, or copy first"
                        ),
                    )
                    finding.chain = [
                        _hop(f"{summary.key}.{func}", record.display,
                             candidate["def_line"]),
                        _hop(f"escape: {how}", record.display, escape["line"]),
                        _hop(f"mutation: {mutation['desc']}", record.display,
                             mutation["line"]),
                    ]
                    yield finding


class ResourceLeakRule(SummaryRule):
    """RL014: a handle with a normal-exit path that never releases it."""

    id = "RL014"
    title = "no leaked handles (open/Pipe/Popen/acquire)"
    rationale = (
        "an unclosed pipe or file survives as long as the process; under a "
        "worker pool that is a fd-exhaustion countdown"
    )

    def check_summaries(
        self, records: Sequence["ModuleRecord"], index: "ProjectIndex"
    ) -> Iterator[Finding]:
        for record in records:
            summary = record.summary
            if summary is None:
                continue
            for func in sorted(summary.flow):
                for leak in summary.flow[func].get("leaks", []):
                    absolved = False
                    crossed: list[dict] = []
                    for site in leak["sites"]:
                        callee = _resolve_site(
                            index, summary.key, func, site["line"], site["col"]
                        )
                        if callee is None:
                            # Unknown callee may assume ownership (e.g. a
                            # stdlib wrapper); don't gate on a guess.
                            absolved = True
                            break
                        flow, local = _callee_flow(index, callee)
                        if flow and _param_matches(
                            flow, local, site.get("arg"), "param_releases"
                        ):
                            absolved = True
                            break
                        crossed.append(
                            _hop(f"passed to {callee}(...) which never "
                                 "releases it",
                                 index.display_of_function(callee) or "",
                                 site["line"])
                        )
                    if absolved:
                        continue
                    finding = Finding(
                        rule=self.id,
                        path=record.display,
                        line=leak["line"],
                        col=0,
                        message=(
                            f"handle {leak['var']!r} from {leak['desc']} has "
                            "a path to function exit that never closes it; "
                            "release it, return it, store it, or use 'with'"
                        ),
                    )
                    finding.chain = (
                        [_hop(f"{summary.key}.{func}: {leak['desc']}",
                              record.display, leak["line"])]
                        + crossed
                        + [_hop("function exit without release",
                                record.display, leak["line"])]
                    )
                    yield finding


class ForkSharedStateRule(SummaryRule):
    """RL015: worker-written module globals that parent-side code reads."""

    id = "RL015"
    title = "no fork-shared mutable globals"
    rationale = (
        "after fork the child writes its own copy; a parent-side reader "
        "sees pre-fork state forever and the divergence is silent"
    )

    def _roots(self, index: "ProjectIndex") -> list[str]:
        roots: list[str] = []
        for key in sorted(index.summaries):
            summary = index.summaries[key]
            for target in summary.fork_targets:
                if target in summary.functions:
                    roots.append(f"{key}.{target}")
                    continue
                dotted = summary.imports.get(target)
                if dotted and dotted in index.functions:
                    roots.append(dotted)
        return sorted(set(roots))

    def _reachable(self, index: "ProjectIndex", roots: list[str]) -> dict:
        """qual -> predecessor qual (BFS tree for witness chains)."""
        parent: dict[str, Optional[str]] = {root: None for root in roots}
        frontier = list(roots)
        while frontier:
            qual = frontier.pop(0)
            entry = index.functions.get(qual)
            if entry is None:
                continue
            key, local, _line = entry
            for callee, _cline, _ccol in index.resolved.get(key, {}).get(local, []):
                if callee not in parent:
                    parent[callee] = qual
                    frontier.append(callee)
        return parent

    def check_summaries(
        self, records: Sequence["ModuleRecord"], index: "ProjectIndex"
    ) -> Iterator[Finding]:
        roots = self._roots(index)
        if not roots:
            return
        parent = self._reachable(index, roots)
        for record in records:
            summary = record.summary
            if summary is None or not summary.mutable_globals:
                continue
            shared = set(summary.mutable_globals)
            # Parent-side readers: functions of this module NOT reachable
            # from any fork root.
            readers: dict[str, list[Tuple[str, int]]] = {}
            for func in sorted(summary.flow):
                if f"{summary.key}.{func}" in parent:
                    continue
                for name, line in summary.flow[func].get("reads", {}).items():
                    if name in shared:
                        readers.setdefault(name, []).append((func, line))
            if not readers:
                continue
            for func in sorted(summary.flow):
                qual = f"{summary.key}.{func}"
                if qual not in parent:
                    continue
                for name, line in summary.flow[func].get("writes", {}).items():
                    if name not in readers:
                        continue
                    reader_func, reader_line = readers[name][0]
                    # Witness: fork root -> ... -> writer.
                    chain_quals = [qual]
                    hop = parent[qual]
                    while hop is not None:
                        chain_quals.append(hop)
                        hop = parent[hop]
                    chain_quals.reverse()
                    finding = Finding(
                        rule=self.id,
                        path=record.display,
                        line=line,
                        col=0,
                        message=(
                            f"module global {name!r} is written here by "
                            f"worker-side code (reachable from fork target "
                            f"{chain_quals[0]}) and read parent-side by "
                            f"{reader_func} (line {reader_line}); post-fork "
                            "writes never reach the parent"
                        ),
                    )
                    finding.chain = [
                        _hop(q, index.display_of_function(q) or record.display,
                             index.line_of_function(q) or 1)
                        for q in chain_quals
                    ] + [
                        _hop(f"write to {name!r}", record.display, line),
                        _hop(f"parent-side read in {reader_func}",
                             record.display, reader_line),
                    ]
                    yield finding


class HotLoopChurnRule(SummaryRule):
    """RL016 (advisory): allocation churn inside hot-path loop bodies.

    One finding per function, carrying the per-function site count and the
    maximum loop-nest depth — sorted output under ``--show-advisory`` *is*
    the ranked refactor worklist for the capacity open item.
    """

    id = "RL016"
    title = "hot-loop allocation churn (advisory)"
    rationale = (
        "per-packet displays/f-strings/constructors in the engine loop are "
        "the allocator pressure the capacity refactor must remove"
    )
    advisory = True
    scope_files = HOT_LOOP_FILES

    def check_summaries(
        self, records: Sequence["ModuleRecord"], index: "ProjectIndex"
    ) -> Iterator[Finding]:
        for record in records:
            summary = record.summary
            if summary is None:
                continue
            for func in sorted(summary.flow):
                sites = [
                    s for s in summary.flow[func].get("allocs", [])
                    if s["depth"] >= 1
                ]
                if not sites:
                    continue
                max_depth = max(s["depth"] for s in sites)
                examples = ", ".join(
                    f"{s['desc']} (line {s['line']}, depth {s['depth']})"
                    for s in sorted(
                        sites, key=lambda s: (-s["depth"], s["line"])
                    )[:3]
                )
                yield Finding(
                    rule=self.id,
                    path=record.display,
                    line=sites[0]["line"],
                    col=0,
                    message=(
                        f"{func}: {len(sites)} allocation site(s) in loop "
                        f"bodies (max depth {max_depth}): {examples}"
                    ),
                    severity="advisory",
                )


def flow_rules() -> list[SummaryRule]:
    """RL013-RL016, in rule-id order."""
    return [
        EscapeThenMutateRule(),
        ResourceLeakRule(),
        ForkSharedStateRule(),
        HotLoopChurnRule(),
    ]
