"""Content-hash-keyed cache of per-module lint records.

Pre-commit latency is the budget the interprocedural layer must fit in,
and the expensive part of a run is per-module: parsing, the line-local
rule pass, and summary extraction.  All of it depends only on the file's
bytes and the rule configuration, so the cache keys each record on
``sha256(source)`` plus a configuration signature (rule ids, forced
profile, profile map, engine version).  Warm hits skip :mod:`ast`
entirely; the project-level phase (call graph, effect fixpoint,
cross-module rules) always runs fresh, because its output depends on the
whole file set.

The cache is one JSON document, rewritten atomically (temp file +
``os.replace``).  A schema or signature mismatch silently discards the
file — a stale cache must never change lint results, only their cost.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

__all__ = ["CACHE_SCHEMA_ID", "SummaryCache", "config_signature"]

CACHE_SCHEMA_ID = "reprolint-cache/1"


def config_signature(
    rule_ids: list[str],
    engine_version: str,
    forced_profile: Optional[str],
    profile_map: tuple,
) -> str:
    """Hash of everything (besides file content) a cached record depends on."""
    payload = json.dumps(
        {
            "engine": engine_version,
            "rules": sorted(rule_ids),
            "profile": forced_profile,
            "map": list(profile_map),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SummaryCache:
    """Per-file record store keyed on content digest."""

    def __init__(self, path: "str | Path", signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(document, dict)
            or document.get("schema") != CACHE_SCHEMA_ID
            or document.get("signature") != self.signature
        ):
            return
        entries = document.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    @staticmethod
    def digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def get(self, key: str, digest: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            return entry["record"]
        self.misses += 1
        return None

    def put(self, key: str, digest: str, record: dict) -> None:
        self._entries[key] = {"digest": digest, "record": record}
        self._dirty = True

    def prune(self) -> int:
        """Drop entries whose file is gone from disk; returns the count.

        Without this the cache grows monotonically across renames and
        deletions — every path that ever existed keeps its record
        forever.  Runs automatically from :meth:`save`.
        """
        stale = [
            key
            for key, entry in self._entries.items()
            if not Path((entry.get("record") or {}).get("display", "")).is_file()
        ]
        for key in stale:
            del self._entries[key]
            self._dirty = True
        return len(stale)

    def save(self) -> None:
        self.prune()
        if not self._dirty:
            return
        document = {
            "schema": CACHE_SCHEMA_ID,
            "signature": self.signature,
            "files": self._entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(document), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            try:  # best effort: a cache that cannot write is just cold
                tmp.unlink()
            except OSError:
                pass
        self._dirty = False
