"""Project symbol table: one JSON-serialisable summary per module.

:func:`summarize` reduces a parsed :class:`~repro.analysis.lint.engine.SourceFile`
to a :class:`ModuleSummary` — everything the interprocedural layer needs
and nothing that requires re-parsing:

* symbols: module-level functions, classes (with base names and methods),
  import bindings (``local name -> dotted target``), ``__all__`` exports,
* call descriptors per function (direct names, dotted attribute chains,
  bare-attribute method calls, and function references passed as call
  arguments — ``functools.partial`` and callback registration fall out of
  the last form),
* direct effect sites (see :mod:`repro.analysis.lint.effects`), already
  filtered against sanctioning waivers,
* the TLV registry constants and ``TlvTypes.X`` references (for RL007),
* every identifier the module mentions (for the RL012 dead-export scan).

Summaries are plain dicts after :meth:`ModuleSummary.as_dict`, which is
what the content-hash cache persists: a warm run rebuilds the whole
project index without touching :mod:`ast` for unchanged files.

Nested functions and lambdas are folded into their enclosing module-level
function or method: defining a closure counts as (potentially) running
it.  That over-approximates — the price of keeping the graph first-order
— and is the conservative direction for effect analysis.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.lint.dataflow import analyze_function, analyze_module
from repro.analysis.lint.engine import SourceFile, Waiver, dotted_name, norm_path
from repro.analysis.lint.effects import (
    AMBIENT_ENTROPY,
    BLOCKS,
    EFFECT_BASE_RULE,
    DETERMINISM_DIRS,
    DETERMINISM_EXEMPT_FILES,
    FORWARDING_PLANE_FILES,
    HOT_LOOP_FILES,
    SET_ITERATION,
    WALL_CLOCK,
    WIRE_DECODE,
    EffectSite,
    classify_attribute,
    classify_call,
    classify_iteration,
)

__all__ = [
    "MODULE_KEY",
    "TRANSITIVE_RULE_FOR_EFFECT",
    "ModuleSummary",
    "module_name_for_path",
    "summarize",
]

#: Pseudo-function holding module-level (import-time) code.
MODULE_KEY = "<module>"

#: The interprocedural rule a sanctioning waiver must name to stop an
#: effect at its sink (an ``allow[RL009]`` comment on a sleep line).
TRANSITIVE_RULE_FOR_EFFECT: dict[str, str] = {
    BLOCKS: "RL009",
    WALL_CLOCK: "RL010",
    AMBIENT_ENTROPY: "RL010",
    SET_ITERATION: "RL010",
    WIRE_DECODE: "RL011",
}

_TLV_REGISTRY_FILE = "/repro/ndn/tlv.py"
_TLV_REGISTRY_CLASS = "TlvTypes"


def module_name_for_path(path: "str") -> Optional[str]:
    """Dotted module name for a source path, or ``None`` if unmappable.

    ``.../src/repro/ndn/shard.py`` -> ``repro.ndn.shard``;
    ``__init__.py`` maps to its package.
    """
    text = norm_path(path)
    if not text.endswith(".py"):
        return None
    text = text[: -len(".py")]
    if text.endswith("/__init__"):
        text = text[: -len("/__init__")]
    if "/src/" in text:
        tail = text.rsplit("/src/", 1)[1]
    elif "/repro/" in text:
        tail = "repro/" + text.rsplit("/repro/", 1)[1]
    else:
        return None
    parts = tail.split("/")
    if not parts or not all(part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


class ModuleSummary:
    """Everything the project-level rules need from one module."""

    __slots__ = (
        "display",
        "path",
        "module",
        "functions",
        "classes",
        "imports",
        "star_import",
        "exports",
        "mentions",
        "calls",
        "effect_sites",
        "sanctioned",
        "tlv_registry",
        "tlv_refs",
        "flow",
        "mutable_globals",
        "fork_targets",
    )

    def __init__(self, display: str, path: str, module: Optional[str]) -> None:
        self.display = display
        self.path = path
        self.module = module
        #: local qualname ("f", "Class.method") -> def line
        self.functions: dict[str, int] = {}
        #: local class qualname -> {"line", "bases": [...], "methods": {...}}
        self.classes: dict[str, dict] = {}
        #: local binding -> dotted target
        self.imports: dict[str, str] = {}
        self.star_import = False
        self.exports: Optional[list[str]] = None
        self.mentions: set[str] = set()
        #: local function -> [call descriptor dicts]
        self.calls: dict[str, list[dict]] = {}
        #: local function -> [EffectSite]
        self.effect_sites: dict[str, list[EffectSite]] = {}
        #: sinks suppressed by an allow[RL009-011] waiver
        self.sanctioned: list[dict] = []
        self.tlv_registry: Optional[dict[str, list[int]]] = None
        self.tlv_refs: list[list] = []
        #: local function -> dataflow facts (see dataflow.analyze_function)
        self.flow: dict[str, dict] = {}
        #: module-level names bound to mutable containers (RL015)
        self.mutable_globals: list[str] = []
        #: worker entrypoint names passed as Process(target=...) (RL015)
        self.fork_targets: list[str] = []

    @property
    def key(self) -> str:
        """Graph namespace for this module's functions."""
        return self.module or self.path

    def as_dict(self) -> dict:
        return {
            "display": self.display,
            "path": self.path,
            "module": self.module,
            "functions": self.functions,
            "classes": self.classes,
            "imports": self.imports,
            "star_import": self.star_import,
            "exports": self.exports,
            "mentions": sorted(self.mentions),
            "calls": self.calls,
            "effect_sites": {
                func: [site.as_dict() for site in sites]
                for func, sites in self.effect_sites.items()
            },
            "sanctioned": self.sanctioned,
            "tlv_registry": self.tlv_registry,
            "tlv_refs": self.tlv_refs,
            "flow": self.flow,
            "mutable_globals": self.mutable_globals,
            "fork_targets": self.fork_targets,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ModuleSummary":
        summary = cls(raw["display"], raw["path"], raw["module"])
        summary.functions = dict(raw["functions"])
        summary.classes = dict(raw["classes"])
        summary.imports = dict(raw["imports"])
        summary.star_import = raw["star_import"]
        summary.exports = raw["exports"]
        summary.mentions = set(raw["mentions"])
        summary.calls = dict(raw["calls"])
        summary.effect_sites = {
            func: [EffectSite.from_dict(site) for site in sites]
            for func, sites in raw["effect_sites"].items()
        }
        summary.sanctioned = list(raw["sanctioned"])
        summary.tlv_registry = raw["tlv_registry"]
        summary.tlv_refs = list(raw["tlv_refs"])
        summary.flow = dict(raw.get("flow", {}))
        summary.mutable_globals = list(raw.get("mutable_globals", []))
        summary.fork_targets = list(raw.get("fork_targets", []))
        return summary


class _Walker(ast.NodeVisitor):
    """One pass over a module AST collecting the summary raw material."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        self.current = MODULE_KEY
        self.class_stack: list[str] = []
        self.func_depth = 0

    # ------------------------------------------------------------- recording

    def _record_call(self, descriptor: dict) -> None:
        self.summary.calls.setdefault(self.current, []).append(descriptor)

    def _record_site(self, effect: str, node: ast.AST, desc: str) -> None:
        site = EffectSite(
            effect, getattr(node, "lineno", 1), getattr(node, "col_offset", 0), desc
        )
        self.summary.effect_sites.setdefault(self.current, []).append(site)

    # ------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.summary.imports[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.summary.imports[root] = root
            self.summary.mentions.add(alias.name.split(".")[-1])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level and self.summary.module:
            # Level 1 resolves to the containing package: the module name
            # itself for an __init__.py, its parent for a plain module.
            drop = node.level - (1 if self.summary.path.endswith("/__init__.py") else 0)
            parts = self.summary.module.split(".")
            package = parts[: len(parts) - drop] if drop else parts
            base = ".".join(package + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                self.summary.star_import = True
                continue
            local = alias.asname or alias.name
            self.summary.imports[local] = f"{base}.{alias.name}" if base else alias.name
            self.summary.mentions.add(alias.name)

    # ------------------------------------------------------------- defs

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        for base in node.bases:
            self.visit(base)
        for keyword in node.keywords:
            self.visit(keyword.value)
        if self.func_depth == 0:
            qual = ".".join(self.class_stack + [node.name])
            self.summary.classes[qual] = {
                "line": node.lineno,
                "bases": [
                    chain
                    for chain in (dotted_name(base) for base in node.bases)
                    if chain
                ],
                "methods": {},
            }
            self.class_stack.append(node.name)
            for stmt in node.body:
                self.visit(stmt)
            self.class_stack.pop()
        else:
            for stmt in node.body:
                self.visit(stmt)

    def _visit_function(self, node) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            self.visit(default)
        if self.func_depth == 0:
            qual = ".".join(self.class_stack + [node.name])
            self.summary.functions[qual] = node.lineno
            if self.class_stack:
                owner = ".".join(self.class_stack)
                self.summary.classes[owner]["methods"][node.name] = node.lineno
            previous = self.current
            self.current = qual
        else:
            previous = self.current  # nested def: fold into the enclosing node
        self.func_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.func_depth -= 1
        self.current = previous

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # ------------------------------------------------------------- expressions

    def visit_Call(self, node: ast.Call) -> None:
        classified = classify_call(node, self.summary.path)
        if classified is not None:
            self._record_site(classified[0], node, classified[1])
        func = node.func
        descriptor: Optional[dict] = None
        if isinstance(func, ast.Name):
            descriptor = {"kind": "name", "name": func.id}
        elif isinstance(func, ast.Attribute):
            chain = dotted_name(func)
            if chain is not None:
                descriptor = {"kind": "dotted", "dotted": chain}
            else:
                descriptor = {"kind": "attr", "attr": func.attr}
        if descriptor is not None:
            descriptor["line"] = node.lineno
            descriptor["col"] = node.col_offset
            self._record_call(descriptor)
        # Function references in argument position: callback registration
        # and functools.partial targets become may-call edges.
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(value, ast.Name):
                self._record_call(
                    {
                        "kind": "refname",
                        "name": value.id,
                        "line": value.lineno,
                        "col": value.col_offset,
                    }
                )
            elif isinstance(value, ast.Attribute):
                chain = dotted_name(value)
                if chain is not None:
                    self._record_call(
                        {
                            "kind": "refdotted",
                            "dotted": chain,
                            "line": value.lineno,
                            "col": value.col_offset,
                        }
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = dotted_name(node)
        if chain is not None:
            classified = classify_attribute(chain)
            if classified is not None:
                self._record_site(classified[0], node, classified[1])
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == _TLV_REGISTRY_CLASS
        ):
            self.summary.tlv_refs.append([node.attr, node.lineno, node.col_offset])
        self.summary.mentions.add(node.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.summary.mentions.add(node.id)

    def visit_For(self, node: ast.For) -> None:
        classified = classify_iteration(node.iter)
        if classified is not None:
            self._record_site(classified[0], node.iter, classified[1])
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        classified = classify_iteration(node.iter)
        if classified is not None:
            self._record_site(classified[0], node.iter, classified[1])
        self.generic_visit(node)


def _module_exports(tree: ast.Module) -> Optional[list[str]]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                        isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                        for elt in node.value.elts
                    ):
                        return [elt.value for elt in node.value.elts]
    return None


def _tlv_registry(tree: ast.Module) -> Optional[dict[str, list[int]]]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == _TLV_REGISTRY_CLASS:
            constants: dict[str, list[int]] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Constant
                ) and isinstance(stmt.value.value, int):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            constants[target.id] = [stmt.value.value, stmt.lineno]
            return constants
    return None


def _flow_functions(tree: ast.Module) -> list:
    """(qualname, node) pairs for module-level functions and methods,
    mirroring the ``_Walker`` qualname convention (nested defs fold)."""
    found: list = []

    def descend(body, class_stack: list[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append((".".join(class_stack + [node.name]), node))
            elif isinstance(node, ast.ClassDef):
                descend(node.body, class_stack + [node.name])

    descend(tree.body, [])
    return found


def _base_rule_applies(effect: str, path: str) -> bool:
    """Does the line-local owner of ``effect`` lint this path directly?"""
    if effect == BLOCKS:
        return any(path.endswith(suffix) for suffix in HOT_LOOP_FILES)
    if effect == WIRE_DECODE:
        return any(path.endswith(suffix) for suffix in FORWARDING_PLANE_FILES)
    if any(path.endswith(suffix) for suffix in DETERMINISM_EXEMPT_FILES):
        return False
    return any(marker in path for marker in DETERMINISM_DIRS)


def _waiver_at(waivers: list[Waiver], rule: str, line: int) -> Optional[Waiver]:
    for waiver in waivers:
        if waiver.target_line == line and waiver.covers(rule) and waiver.reason:
            return waiver
    return None


def summarize(module: SourceFile) -> Optional[ModuleSummary]:
    """Build the interprocedural summary for one parsed module."""
    if module.tree is None:
        return None
    summary = ModuleSummary(
        module.display, module.path, module_name_for_path(module.path)
    )
    walker = _Walker(summary)
    for stmt in module.tree.body:
        walker.visit(stmt)
    summary.exports = _module_exports(module.tree)
    if summary.path.endswith(_TLV_REGISTRY_FILE):
        summary.tlv_registry = _tlv_registry(module.tree)
    # Dataflow layer: module facts first (they scope the per-function pass),
    # then one CFG + flow extraction per module-level function.  Functions
    # with nothing to report contribute no cache weight.
    summary.mutable_globals, summary.fork_targets = analyze_module(module.tree)
    for qual, node in _flow_functions(module.tree):
        flow = analyze_function(node, summary.mutable_globals)
        if flow:
            summary.flow[qual] = flow
    # Sanctioned sinks: a site whose line is waived for its base rule
    # (where that rule applies directly) or for the transitive rule stops
    # propagating.  The latter is recorded so the driver can surface the
    # waiver as a used, audited suppression.
    filtered: dict[str, list[EffectSite]] = {}
    for func in sorted(summary.effect_sites):
        kept: list[EffectSite] = []
        for site in summary.effect_sites[func]:
            base_rule = EFFECT_BASE_RULE[site.effect]
            if _base_rule_applies(site.effect, summary.path) and _waiver_at(
                module.waivers, base_rule, site.line
            ):
                continue  # the direct finding carries the waiver already
            transitive_rule = TRANSITIVE_RULE_FOR_EFFECT[site.effect]
            waiver = _waiver_at(module.waivers, transitive_rule, site.line)
            if waiver is not None:
                summary.sanctioned.append(
                    {
                        "line": site.line,
                        "rule": transitive_rule,
                        "desc": site.desc,
                        "reason": waiver.reason,
                        "waiver_line": waiver.line,
                    }
                )
                continue
            kept.append(site)
        if kept:
            filtered[func] = kept
    summary.effect_sites = filtered
    return summary
