"""``python -m repro.analysis.lint``: the reprolint command line.

Exit codes: 0 = clean (every finding waived with a reason), 1 = unwaived
findings (or, with ``--baseline``, *new* unwaived findings; or a blown
``--waiver-budget``), 2 = usage error.

Examples::

    python -m repro.analysis.lint src/
    python -m repro.analysis.lint src/ --format json --output reprolint.json
    python -m repro.analysis.lint benchmarks/ --profile relaxed
    python -m repro.analysis.lint src/ --changed-only --diff-base origin/main
    python -m repro.analysis.lint src/ --baseline main-report.json
    python -m repro.analysis.lint src/ --waiver-budget 5
    python -m repro.analysis.lint --list-rules

The per-module phase (parse, line-local rules, summary extraction) is
cached in ``.reprolint-cache.json`` keyed on content hash + rule
configuration; ``--no-cache`` bypasses it.  The project phase (call
graph, effect fixpoint) always runs fresh.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.cache import SummaryCache
from repro.analysis.lint.engine import PROFILES, Linter
from repro.analysis.lint.report import (
    diff_reports,
    parse_json,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.lint.rules import default_rules

__all__ = ["main", "build_parser", "changed_files"]

DEFAULT_CACHE_FILE = ".reprolint-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="reprolint: static enforcement of the zero-copy, "
        "determinism and memory-hygiene contracts",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default=None,
        help="force one profile for every path (default: per-path map — "
        "strict everywhere, relaxed for cluster/benchmarks/tests/examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif is the GitHub "
        "code-scanning upload format",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--show-waived", action="store_true",
        help="include waived findings in text output",
    )
    parser.add_argument(
        "--show-advisory", action="store_true",
        help="include advisory findings (RL012/RL016) in text output",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the per-module summary cache (always re-parse)",
    )
    parser.add_argument(
        "--cache-file", type=Path, default=Path(DEFAULT_CACHE_FILE),
        help=f"summary cache location (default: {DEFAULT_CACHE_FILE})",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="restrict the scan to files changed vs --diff-base "
        "(git diff + untracked), intersected with the given paths",
    )
    parser.add_argument(
        "--diff-base", default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="prior JSON report to diff against: exit 1 only on findings "
        "not present in the baseline (the PR-gate mode)",
    )
    parser.add_argument(
        "--waiver-budget", type=int, default=None, metavar="N",
        help="fail (exit 1) when more than N findings are waived",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    """The catalog with profile membership, scope and gating status.

    Everything a reader previously had to dig out of the ROADMAP rule
    table: which profiles enable the rule, where it applies, and whether
    it gates the exit code or only reports.
    """
    lines = []
    for rule in default_rules():
        profiles = ", ".join(
            sorted(
                name for name, profile in PROFILES.items()
                if rule.id in profile.rule_ids
            )
        )
        scopes = list(rule.scope_dirs) + list(rule.scope_files)
        scope = "all files" if not scopes else ", ".join(scopes)
        if rule.exclude_files:
            scope += f" (except {', '.join(rule.exclude_files)})"
        status = "advisory — never gates" if rule.advisory else "gating"
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
        lines.append(f"       profiles: {profiles or 'none'} | {status}")
        lines.append(f"       scope: {scope}")
    return "\n".join(lines)


def changed_files(base: str, cwd: Optional[Path] = None) -> Optional[set[Path]]:
    """Files changed vs ``base`` plus untracked, or None if git fails."""
    changed: set[Path] = set()
    for argv in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                argv,
                cwd=cwd,
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        root = cwd if cwd is not None else Path.cwd()
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add((root / line).resolve())
    return changed


def _restrict_to_changed(
    linter: Linter, paths: Sequence[str], base: str
) -> Optional[list[Path]]:
    changed = changed_files(base)
    if changed is None:
        return None
    return [
        path
        for path in linter.collect_files(paths)
        if path.resolve() in changed
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")
    baseline = None
    if args.baseline is not None:
        try:
            baseline = parse_json(args.baseline.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"unreadable baseline {args.baseline}: {exc}")
    linter = Linter(profile=args.profile)
    lint_paths: Sequence["str | Path"] = args.paths
    if args.changed_only:
        restricted = _restrict_to_changed(linter, args.paths, args.diff_base)
        if restricted is None:
            parser.error(
                f"--changed-only: git diff against {args.diff_base!r} failed "
                "(not a git checkout, or an unknown ref)"
            )
        if not restricted:
            print(f"reprolint: no files changed vs {args.diff_base}")
            return 0
        lint_paths = restricted
    cache = None
    if not args.no_cache:
        cache = SummaryCache(args.cache_file, linter.config_signature())
    report = linter.lint_paths(lint_paths, cache=cache)
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report, rules=linter.rules)
    else:
        rendered = render_text(
            report,
            show_waived=args.show_waived,
            show_advisory=args.show_advisory,
        )
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
        summary = render_text(report).splitlines()[-1]
        print(f"{summary} -> {args.output}")
    else:
        print(rendered)
    status = 0 if report.ok else 1
    if baseline is not None:
        new, preexisting = diff_reports(report, baseline)
        print(
            f"reprolint baseline: {len(new)} new, "
            f"{len(preexisting)} pre-existing"
        )
        for finding in new:
            print(
                f"  NEW {finding.path}:{finding.line} "
                f"{finding.rule} {finding.message}"
            )
        status = 1 if new else 0
    if args.waiver_budget is not None:
        waived = len(report.waived)
        if waived > args.waiver_budget:
            by_rule = ", ".join(
                f"{rule}: {count}"
                for rule, count in report.waived_by_rule().items()
            )
            print(
                f"reprolint: waiver budget exceeded — {waived} waived "
                f"> budget {args.waiver_budget} ({by_rule})"
            )
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
