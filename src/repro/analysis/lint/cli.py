"""``python -m repro.analysis.lint``: the reprolint command line.

Exit codes: 0 = clean (every finding waived with a reason), 1 = unwaived
findings, 2 = usage error.

Examples::

    python -m repro.analysis.lint src/
    python -m repro.analysis.lint src/ --format json --output reprolint.json
    python -m repro.analysis.lint benchmarks/ --profile relaxed
    python -m repro.analysis.lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.engine import PROFILES, Linter
from repro.analysis.lint.report import render_json, render_text
from repro.analysis.lint.rules import default_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="reprolint: static enforcement of the zero-copy, "
        "determinism and memory-hygiene contracts",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default=None,
        help="force one profile for every path (default: per-path map — "
        "strict everywhere, relaxed for cluster/benchmarks/tests/examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--show-waived", action="store_true",
        help="include waived findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")
    linter = Linter(profile=args.profile)
    report = linter.lint_paths(args.paths)
    if args.format == "json":
        rendered = render_json(report)
    else:
        rendered = render_text(report, show_waived=args.show_waived)
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
        summary = render_text(report).splitlines()[-1]
        print(f"{summary} -> {args.output}")
    else:
        print(rendered)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
