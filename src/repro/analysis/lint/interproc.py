"""Interprocedural rules: RL009-RL011 transitive invariants, RL012 dead exports.

PR 6's line-local rules see a ``time.sleep`` *written in* the engine; they
cannot see one *called from* it through a helper two modules away.  These
rules close that hole: each extends a line-local contract across the
project call graph, firing at the **boundary call site** — the line inside
the protected scope that calls out of it — with the full witness chain
(``engine.run → shard._drain → time.sleep``) in the message and, for JSON
consumers, a structured ``chain`` on the finding.

One finding per boundary crossing: an in-scope function calling another
in-scope function is never flagged (the deeper module owns its own
boundary), so a violation reachable from many entry points produces one
finding at each distinct escape line, not a cascade along every path.

Waivers compose in two places: a waiver on the boundary line suppresses
that crossing, while a waiver naming the transitive rule *on the sink
line* sanctions the sink for every caller (see
:data:`repro.analysis.lint.symbols.TRANSITIVE_RULE_FOR_EFFECT`).

========  ==============================================================
RL009     extends RL003: nothing reachable from the engine run loop or
          the forwarding pipeline may block the OS thread
RL010     extends RL002: no wall clock or ambient entropy reachable from
          ``repro.sim``/``repro.ndn`` through helpers in other packages
          (``repro.sim.rng`` stays the sanctioned source)
RL011     extends RL001: no packet materialisation reachable from the
          forwarding plane (endpoints in ``client.py`` and the codec in
          ``packet.py`` are the sanctioned decode sites)
RL012     advisory: exported defs with no reference anywhere else in the
          scanned tree (call graph + identifier scan)
========  ==============================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.analysis.lint.effects import (
    AMBIENT_ENTROPY,
    BLOCKS,
    DETERMINISM_DIRS,
    DETERMINISM_EXEMPT_FILES,
    FORWARDING_PLANE_FILES,
    HOT_LOOP_FILES,
    WALL_CLOCK,
    WIRE_DECODE,
    render_chain,
    witness_chain,
)
from repro.analysis.lint.engine import Finding, SummaryRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint.callgraph import ProjectIndex
    from repro.analysis.lint.engine import ModuleRecord

__all__ = [
    "TransitiveEffectRule",
    "TransitiveBlockingRule",
    "TransitiveDeterminismRule",
    "TransitiveDecodeRule",
    "DeadExportRule",
    "interprocedural_rules",
]

_EFFECT_LABEL = {
    BLOCKS: "blocking call",
    WALL_CLOCK: "wall-clock read",
    AMBIENT_ENTROPY: "ambient entropy",
    WIRE_DECODE: "packet materialisation",
}


class TransitiveEffectRule(SummaryRule):
    """Shared driver: flag boundary calls whose callee carries an effect."""

    #: Effects this rule polices (checked in sorted order for determinism).
    effects: frozenset[str] = frozenset()
    #: Path suffixes whose functions are sanctioned targets by design.
    exempt_targets: tuple[str, ...] = ()
    #: Human description of the protected scope for messages.
    scope_label: str = ""

    def _target_exempt(self, path: str) -> bool:
        return any(path.endswith(suffix) for suffix in self.exempt_targets)

    def check_summaries(
        self, records: Sequence["ModuleRecord"], index: "ProjectIndex"
    ) -> Iterator[Finding]:
        for record in records:
            summary = record.summary
            if summary is None:
                continue
            for caller_local in sorted(index.calls_from(summary.key)):
                edges = index.calls_from(summary.key)[caller_local]
                for callee, line, col in edges:
                    callee_path = index.path_of_function(callee)
                    if callee_path is None:
                        continue
                    if self.applies_to(callee_path):
                        continue  # in-scope callee: its module owns the boundary
                    if self._target_exempt(callee_path):
                        continue
                    carried = sorted(
                        self.effects & set(index.effects.get(callee, ()))
                    )
                    if not carried:
                        continue
                    effect = carried[0]
                    chain, sink = witness_chain(index.effects, callee, effect)
                    if sink is None:
                        continue
                    caller_qual = f"{summary.key}.{caller_local}"
                    full_chain = [caller_qual] + chain
                    sink_display = index.display_of_function(chain[-1]) or callee_path
                    finding = Finding(
                        rule=self.id,
                        path=record.display,
                        line=line,
                        col=col,
                        message=(
                            f"{_EFFECT_LABEL[effect]} reachable from "
                            f"{self.scope_label}: "
                            f"{render_chain(full_chain, sink.desc)} "
                            f"({sink_display}:{sink.line})"
                        ),
                    )
                    finding.chain = [
                        {
                            "function": qual,
                            "path": index.display_of_function(qual) or "",
                            "line": index.line_of_function(qual),
                        }
                        for qual in full_chain
                    ] + [
                        {
                            "function": sink.desc,
                            "path": sink_display,
                            "line": sink.line,
                        }
                    ]
                    yield finding


class TransitiveBlockingRule(TransitiveEffectRule):
    """RL009: no blocking reachable from the engine/dispatch hot loops."""

    id = "RL009"
    title = "no blocking reachable from hot loops (transitive RL003)"
    rationale = "a helper that sleeps stalls the dispatcher exactly like inline code"
    scope_files = HOT_LOOP_FILES
    effects = frozenset({BLOCKS})
    scope_label = "a hot loop"


class TransitiveDeterminismRule(TransitiveEffectRule):
    """RL010: no wall clock/entropy reachable from sim/ndn entry points."""

    id = "RL010"
    title = "no wall clock or entropy reachable from sim/ndn (transitive RL002)"
    rationale = "a helper in another package breaks determinism as surely as inline code"
    scope_dirs = DETERMINISM_DIRS
    exclude_files = DETERMINISM_EXEMPT_FILES
    effects = frozenset({WALL_CLOCK, AMBIENT_ENTROPY})
    #: repro.sim.rng is the sanctioned clock/entropy authority.
    exempt_targets = DETERMINISM_EXEMPT_FILES
    scope_label = "deterministic sim/ndn code"


class TransitiveDecodeRule(TransitiveEffectRule):
    """RL011: no packet materialisation reachable from the forwarding plane."""

    id = "RL011"
    title = "no decode reachable from the forwarding plane (transitive RL001)"
    rationale = "a decoding helper breaks zero-copy exactly like an inline .decode()"
    scope_files = FORWARDING_PLANE_FILES
    effects = frozenset({WIRE_DECODE})
    #: Endpoints decode by design (the face handoff is the architecture),
    #: and the codec implements decode rather than requesting it.
    exempt_targets = ("/repro/ndn/client.py", "/repro/ndn/packet.py")
    scope_label = "the forwarding plane"


class DeadExportRule(SummaryRule):
    """RL012 (advisory): exported defs nothing else in the tree references.

    A name in ``__all__`` that is defined in the module (imports-only
    re-exports are skipped) and neither mentioned nor called from any
    other scanned module is reported as advisory — it never fails the
    run, because the scanned tree is not the whole world (tests and
    downstream users are legitimate callers) — but the report is the
    place to notice an API that quietly stopped having users.
    """

    id = "RL012"
    title = "dead exports (advisory)"
    rationale = "an export nobody references documents an API that no longer exists"
    advisory = True

    def check_summaries(
        self, records: Sequence["ModuleRecord"], index: "ProjectIndex"
    ) -> Iterator[Finding]:
        for record in records:
            summary = record.summary
            if summary is None or not summary.exports:
                continue
            foreign_calls = index.incoming_foreign_edges(summary.key)
            for name in summary.exports:
                line = summary.functions.get(name)
                if line is None:
                    info = summary.classes.get(name)
                    line = info["line"] if info is not None else None
                if line is None:
                    continue  # re-export or constant: not a local def
                if index.referenced_elsewhere(name, summary.key):
                    continue
                called = name in foreign_calls or any(
                    local == name or local.startswith(f"{name}.")
                    for local in foreign_calls
                )
                if called:
                    continue
                yield Finding(
                    rule=self.id,
                    path=record.display,
                    line=line,
                    col=0,
                    message=(
                        f"dead export: {name!r} is in __all__ but nothing "
                        "else in the scanned tree references it"
                    ),
                    severity="advisory",
                )


def interprocedural_rules() -> list[SummaryRule]:
    """RL009-RL012, in rule-id order."""
    return [
        TransitiveBlockingRule(),
        TransitiveDeterminismRule(),
        TransitiveDecodeRule(),
        DeadExportRule(),
    ]
