"""The reprolint rule catalog: the project's invariants as AST checks.

Each rule encodes a contract the runtime counters and soak tests already
assert dynamically — here they are enforced on every line, statically:

========  ==============================================================
RL001     zero-copy: no packet decode / decoded-object construction in
          forwarding-plane modules (transit stays bytes-only)
RL002     determinism: no wall clocks, ambient randomness, or direct
          set iteration in ``repro.sim`` / ``repro.ndn``
RL003     no blocking calls (sleep/socket/subprocess) in engine and
          dispatcher hot loops
RL004     exception hygiene: no bare ``except``; broad catches need a
          chained re-raise or a waiver with a reason
RL005     no mutable default arguments
RL006     hot-path entry classes declare ``__slots__`` (cheap to hold)
RL007     TLV type numbers: referenced constants exist in ``TlvTypes``
          and no two constants share a number
RL008     ``__all__`` drift: exports exist, public defs are exported
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.analysis.lint.effects import (
    DETERMINISM_DIRS,
    DETERMINISM_EXEMPT_FILES,
    FORWARDING_PLANE_FILES,
    HOT_LOOP_FILES,
)
from repro.analysis.lint.engine import (
    Finding,
    Rule,
    SourceFile,
    SummaryRule,
    dotted_name,
)

__all__ = [
    "ZeroCopyRule",
    "DeterminismRule",
    "NoBlockingRule",
    "ExceptionHygieneRule",
    "MutableDefaultRule",
    "SlotsRule",
    "TlvRegistryRule",
    "ExportDriftRule",
    "default_rules",
]

#: Modules that make up the forwarding plane: everything a transiting
#: packet crosses.  Endpoint modules (client.py: Consumer/Producer) and the
#: codec itself (packet.py defines decode) are intentionally outside.
#: Shared with the effect layer so RL001 and RL011 police one boundary.
_FORWARDING_PLANE = FORWARDING_PLANE_FILES


class ZeroCopyRule(Rule):
    """RL001: a transiting packet is never decoded on the forwarding plane.

    The runtime half of this contract is the ``WirePacket.wire_decodes``
    counter asserted by benches and soaks; this is the static half.  Flags,
    inside forwarding-plane modules only:

    * zero-argument ``.decode()`` calls (the ``WirePacket.decode()``
      materialisation; ``bytes.decode("utf-8")`` with an explicit encoding
      is not a packet decode and stays legal),
    * ``Interest.decode(...)`` / ``Data.decode(...)`` / ``Nack.decode(...)``,
    * decoded-object construction: ``Interest(...)`` / ``Data(...)`` /
      ``Nack(...)``.
    """

    id = "RL001"
    title = "no decode on the forwarding plane"
    rationale = "transit is bytes-only; decoding belongs to endpoints"
    scope_files = _FORWARDING_PLANE

    _PACKET_TYPES = frozenset({"Interest", "Data", "Nack"})

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._PACKET_TYPES:
                yield self.finding(
                    node,
                    f"decoded-object construction {func.id}(...) on the "
                    "forwarding plane; hand the wire buffer on instead",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "decode":
                owner = dotted_name(func.value)
                if owner in self._PACKET_TYPES:
                    yield self.finding(
                        node,
                        f"{owner}.decode(...) on the forwarding plane; "
                        "transit packets must stay wire views",
                    )
                elif not node.args and not node.keywords:
                    yield self.finding(
                        node,
                        ".decode() on the forwarding plane; transiting "
                        "packets must never be materialised",
                    )


#: Wall clocks and ambient entropy.  Everything time-like must come from the
#: engine clock (Environment.now), everything random from repro.sim.rng.
_NONDETERMINISTIC = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


class DeterminismRule(Rule):
    """RL002: simulation and forwarding code is bit-deterministic.

    Flags wall-clock reads, ambient randomness (the ``random`` module,
    ``numpy.random``, ``os.urandom``, ``uuid4``, ``secrets``) and direct
    iteration over set displays/constructors (whose order is hash-seed
    dependent) in ``repro.sim`` and ``repro.ndn``.  The sanctioned sources:
    clocks come from the engine (``Environment.now``), randomness from
    ``repro.sim.rng`` — which is therefore exempt by design, not by waiver.
    """

    id = "RL002"
    title = "determinism: engine clocks and seeded RNG only"
    rationale = "sim runs must be bit-reproducible across hosts and seeds"
    scope_dirs = DETERMINISM_DIRS
    exclude_files = DETERMINISM_EXEMPT_FILES

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in ("random", "secrets"):
                        yield self.finding(
                            node,
                            f"import of nondeterministic module "
                            f"{alias.name!r}; use repro.sim.rng streams",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in (
                    "random",
                    "secrets",
                ):
                    yield self.finding(
                        node,
                        f"import from nondeterministic module "
                        f"{node.module!r}; use repro.sim.rng streams",
                    )
            elif isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is None:
                    continue
                if chain in _NONDETERMINISTIC:
                    yield self.finding(
                        node,
                        f"nondeterministic call {chain}; clocks come from "
                        "the engine, entropy from repro.sim.rng",
                    )
                elif chain.startswith("random.") or ".random." in chain:
                    yield self.finding(
                        node,
                        f"ambient randomness {chain}; draw from a "
                        "repro.sim.rng stream instead",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.iter
                if isinstance(target, ast.Set) or (
                    isinstance(target, ast.Call)
                    and isinstance(target.func, ast.Name)
                    and target.func.id in ("set", "frozenset")
                ):
                    yield self.finding(
                        target,
                        "iteration over an unsorted set: order depends on "
                        "the hash seed; sort or use an ordered container",
                    )


class NoBlockingRule(Rule):
    """RL003: engine and dispatcher hot loops never block the OS thread.

    ``time.sleep``, sockets and subprocesses inside the event loop or the
    dispatch path stall every simulated process at once.  Blocking belongs
    in the fork-worker modules (pipes are their job), never in the engine.
    """

    id = "RL003"
    title = "no blocking calls in hot loops"
    rationale = "one blocked dispatcher stalls every simulated process"
    scope_files = HOT_LOOP_FILES

    _BLOCKING_MODULES = ("socket", "subprocess")

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._BLOCKING_MODULES:
                        yield self.finding(
                            node,
                            f"import of blocking module {alias.name!r} in a "
                            "hot-loop module",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in self._BLOCKING_MODULES:
                    yield self.finding(
                        node,
                        f"import from blocking module {node.module!r} in a "
                        "hot-loop module",
                    )
            elif isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is None:
                    continue
                if chain == "time.sleep" or chain.split(".")[0] in (
                    self._BLOCKING_MODULES
                ):
                    yield self.finding(
                        node,
                        f"blocking call {chain} in a hot-loop module",
                    )


class ExceptionHygieneRule(Rule):
    """RL004: no bare ``except``; broad catches are deliberate or waived.

    A bare ``except:`` (which swallows ``KeyboardInterrupt`` and the
    engine's control-flow exceptions) is always a finding.  ``except
    Exception`` / ``except BaseException`` is a finding *unless* the handler
    re-raises — a bare ``raise`` or ``raise Narrower(...) from exc`` keeps
    the failure visible — or carries a waiver stating why swallowing
    arbitrary errors is the right behaviour (e.g. a kubelet failing the pod
    instead of itself).
    """

    id = "RL004"
    title = "exception hygiene"
    rationale = "broad silent catches hide engine control flow and real bugs"

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    node, "bare except: catches SystemExit/KeyboardInterrupt "
                    "and engine interrupts; name the exception type"
                )
                continue
            broad = self._broad_names(node.type)
            if broad and not self._reraises(node):
                yield self.finding(
                    node,
                    f"except {'/'.join(sorted(broad))} without re-raise: "
                    "narrow the type, chain `raise ... from exc`, or waive "
                    "with a reason",
                )

    def _broad_names(self, type_node: ast.expr) -> set[str]:
        names = set()
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in self._BROAD:
                names.add(candidate.id)
        return names

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise) and (
                node.exc is None or node.cause is not None
            ):
                return True
        return False


class MutableDefaultRule(Rule):
    """RL005: no mutable default arguments.

    A ``def f(x=[])`` default is evaluated once and shared across every
    call — state leaks between invocations (and between simulation runs,
    which breaks determinism too).
    """

    id = "RL005"
    title = "no mutable default arguments"
    rationale = "shared defaults leak state across calls and sim runs"

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
    )

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                label = self._mutable_label(default)
                if label is not None:
                    yield self.finding(
                        default,
                        f"mutable default argument ({label}): evaluated once "
                        "and shared across calls; default to None instead",
                    )

    def _mutable_label(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in self._MUTABLE_CALLS:
                return f"{name}()"
        return None


class SlotsRule(Rule):
    """RL006: hot-path entry classes declare ``__slots__``.

    A 10k-node overlay holds millions of CS/PIT/FIB entries and name-tree
    nodes; an instance ``__dict__`` costs ~300 bytes against ~60 for the
    slotted object.  Any class in a table module whose name marks it as a
    per-entry record (``*Entry``, ``*Record``, ``*Node``, ``NextHop``) must
    be slotted — either a literal ``__slots__`` or
    ``@dataclass(slots=True)``.  Enums are exempt (they cannot be slotted).
    """

    id = "RL006"
    title = "hot-path entries declare __slots__"
    rationale = "entry classes exist in millions; a __dict__ per entry is ~5x"
    scope_files = (
        "/repro/ndn/cs.py",
        "/repro/ndn/pit.py",
        "/repro/ndn/fib.py",
        "/repro/ndn/nametree.py",
        "/repro/ndn/strategy.py",
        "/repro/ndn/shard.py",
        "/repro/ndn/client.py",
    )

    _NAME_SUFFIXES = ("Entry", "Record", "Node")
    _EXTRA_NAMES = frozenset({"NextHop", "PendingInterest"})

    def _is_entry_class(self, node: ast.ClassDef) -> bool:
        name = node.name.lstrip("_")
        return name.endswith(self._NAME_SUFFIXES) or node.name in self._EXTRA_NAMES

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not self._is_entry_class(node):
                continue
            if self._subclasses_enum(node):
                continue
            if not self._declares_slots(node):
                yield self.finding(
                    node,
                    f"hot-path entry class {node.name} lacks __slots__ "
                    "(declare __slots__ or use @dataclass(slots=True))",
                )

    @staticmethod
    def _subclasses_enum(node: ast.ClassDef) -> bool:
        for base in node.bases:
            chain = dotted_name(base) or ""
            if chain.endswith("Enum"):
                return True
        return False

    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                chain = dotted_name(decorator.func) or ""
                if chain.split(".")[-1] == "dataclass":
                    for keyword in decorator.keywords:
                        if (
                            keyword.arg == "slots"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            return True
        return False


class TlvRegistryRule(SummaryRule):
    """RL007: TLV type numbers live in one registry, each number once.

    Reads the ``TlvTypes`` constants and ``TlvTypes.X`` reference lists
    from the module summaries (extracted once per parse, cached with the
    file) and checks (a) no two constants share a type number — a
    duplicate silently corrupts every span scan that matches the first
    occurrence of a type — and (b) every ``TlvTypes.X`` reference
    anywhere in ``repro/ndn`` resolves to a defined constant.
    """

    id = "RL007"
    title = "TLV type registry consistency"
    rationale = "a duplicate or phantom type number corrupts span scans"
    scope_dirs = ("/repro/ndn/",)

    _REGISTRY_FILE = "/repro/ndn/tlv.py"
    _REGISTRY_CLASS = "TlvTypes"

    def check_summaries(self, records, index) -> Iterator[Finding]:
        registry = next(
            (
                r
                for r in records
                if r.summary is not None
                and r.path.endswith(self._REGISTRY_FILE)
            ),
            None,
        )
        if registry is None:
            return  # partial scan without the registry: nothing to check against
        constants = registry.summary.tlv_registry
        if constants is None:
            yield Finding(
                rule=self.id,
                path=registry.display,
                line=1,
                col=0,
                message=f"registry class {self._REGISTRY_CLASS} not found in "
                "the TLV module",
            )
            return
        by_value: dict[int, str] = {}
        for name, (value, line) in constants.items():
            if value in by_value:
                yield Finding(
                    rule=self.id,
                    path=registry.display,
                    line=line,
                    col=0,
                    message=f"duplicate TLV type number {value:#x}: "
                    f"{name} collides with {by_value[value]}",
                )
            else:
                by_value[value] = name
        for record in records:
            if record.summary is None:
                continue
            for attr, line, col in record.summary.tlv_refs:
                if attr not in constants:
                    yield Finding(
                        rule=self.id,
                        path=record.display,
                        line=line,
                        col=col,
                        message=f"TlvTypes.{attr} is not defined in the "
                        "TLV registry",
                    )


class ExportDriftRule(Rule):
    """RL008: ``__all__`` matches reality.

    Every name listed in ``__all__`` must be bound at module top level, no
    name may be listed twice, and every public top-level class or function
    must appear in ``__all__`` (or be renamed ``_private``).  Modules
    without ``__all__`` are skipped — the rule polices drift, it does not
    mandate the convention.
    """

    id = "RL008"
    title = "__all__ drift"
    rationale = "stale exports break star-imports and document a false API"

    def check(self, module: SourceFile) -> Iterator[Finding]:
        exports = self._exports(module.tree)
        if exports is None:
            return
        names, node, star_import = exports
        bound = self._top_level_bindings(module.tree)
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(node, f"__all__ lists {name!r} twice")
            seen.add(name)
            if not star_import and name not in bound:
                yield self.finding(
                    node,
                    f"__all__ exports {name!r} but the module never binds it",
                )
        for defined in self._public_defs(module.tree):
            if defined.name not in seen:
                yield self.finding(
                    defined,
                    f"public definition {defined.name!r} missing from "
                    "__all__ (export it or rename it _private)",
                )

    @staticmethod
    def _exports(
        tree: ast.Module,
    ) -> Optional[tuple[list[str], ast.AST, bool]]:
        star_import = any(
            isinstance(node, ast.ImportFrom)
            and any(alias.name == "*" for alias in node.names)
            for node in tree.body
        )
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                            isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                            for elt in node.value.elts
                        ):
                            names = [elt.value for elt in node.value.elts]
                            return names, node, star_import
        return None

    def _top_level_bindings(self, tree: ast.Module) -> set[str]:
        bound: set[str] = set()

        def visit(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        self._collect_targets(target, bound)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    self._collect_targets(stmt.target, bound)
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(stmt, ast.ImportFrom):
                    for alias in stmt.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
                elif isinstance(stmt, (ast.If, ast.Try)):
                    visit(stmt.body)
                    visit(getattr(stmt, "orelse", []))
                    for handler in getattr(stmt, "handlers", []):
                        visit(handler.body)
                    visit(getattr(stmt, "finalbody", []))
                elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                    visit(stmt.body)

        visit(tree.body)
        return bound

    @staticmethod
    def _collect_targets(target: ast.expr, into: set[str]) -> None:
        if isinstance(target, ast.Name):
            into.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                ExportDriftRule._collect_targets(elt, into)

    @staticmethod
    def _public_defs(tree: ast.Module):
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not stmt.name.startswith("_"):
                    yield stmt


def default_rules() -> list[Rule]:
    """The full catalog, in rule-id order."""
    from repro.analysis.lint.flowrules import flow_rules
    from repro.analysis.lint.interproc import interprocedural_rules

    return [
        ZeroCopyRule(),
        DeterminismRule(),
        NoBlockingRule(),
        ExceptionHygieneRule(),
        MutableDefaultRule(),
        SlotsRule(),
        TlvRegistryRule(),
        ExportDriftRule(),
        *interprocedural_rules(),
        *flow_rules(),
    ]
