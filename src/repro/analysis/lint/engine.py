"""reprolint core: files, waivers, rules, profiles and the driver.

The linter is deliberately self-contained (stdlib :mod:`ast` + :mod:`tokenize`
only) so it can run in CI and in the tier-1 test suite with zero extra
dependencies.  The moving parts:

* :class:`SourceFile` — one parsed module: source text, AST, and the waiver
  comments extracted from its token stream.
* :class:`Rule` / :class:`ProjectRule` — a check over one file, or over the
  whole scanned file set (cross-module symbol tables, e.g. the TLV type
  registry check).
* :class:`Profile` — a named rule subset; profiles are resolved per *path*
  (strict for the forwarding plane and the simulator, relaxed hygiene-only
  for cluster/benchmarks/tests) so one invocation can sweep a mixed tree.
* :class:`Linter` — drives rules over files, applies waivers, and returns a
  :class:`LintReport`.

Waiver syntax
-------------
A finding is suppressed by an in-source comment naming the rule **and** a
reason::

    deadline = time.monotonic() + timeout_s  # lint: allow[RL002] wall-clock IPC timeout

A waiver on its own line suppresses findings on the *next* line instead
(for statements too long to share a line with the comment).  Each waiver
suppresses exactly one line; ``allow[*]`` suppresses every rule on that
line.  A waiver without a reason, or naming an unknown rule, is itself a
finding (``RL000``) — waivers are part of the audited surface, not an
escape hatch.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "Waiver",
    "SourceFile",
    "Rule",
    "ProjectRule",
    "SummaryRule",
    "ModuleRecord",
    "Profile",
    "LintReport",
    "Linter",
    "dotted_name",
    "norm_path",
    "profile_for_path",
    "PROFILES",
    "DEFAULT_PROFILE_MAP",
    "META_RULE_ID",
    "LINT_VERSION",
]

#: Rule id used for linter-level findings (syntax errors, malformed waivers).
#: Deliberately not waivable: a broken waiver must not hide behind itself.
META_RULE_ID = "RL000"

#: Bumped whenever rule/summary semantics change; part of the cache key,
#: so a stale cache from an older linter is discarded, never reused.
LINT_VERSION = "3"


@dataclass(slots=True)
class Finding:
    """One rule violation at a source location.

    ``severity`` is ``"error"`` (gates the exit code) or ``"advisory"``
    (reported, never failing).  Interprocedural findings additionally
    carry ``chain``: the witness call path as a list of
    ``{"function", "path", "line"}`` hops ending at the sink.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str = ""
    severity: str = "error"
    chain: Optional[list] = None

    def as_dict(self) -> dict:
        document = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
            "severity": self.severity,
        }
        if self.chain is not None:
            document["chain"] = self.chain
        return document

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        return cls(
            rule=raw["rule"],
            path=raw["path"],
            line=raw["line"],
            col=raw["col"],
            message=raw["message"],
            waived=raw.get("waived", False),
            waiver_reason=raw.get("waiver_reason", ""),
            severity=raw.get("severity", "error"),
            chain=raw.get("chain"),
        )


_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]\s*(.*)$")


@dataclass(slots=True)
class Waiver:
    """One ``# lint: allow[rule] reason`` comment."""

    line: int
    rules: frozenset[str]
    reason: str
    #: True when the comment is alone on its line — it then covers line + 1.
    standalone: bool

    @property
    def target_line(self) -> int:
        return self.line + 1 if self.standalone else self.line

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules

    def as_dict(self) -> dict:
        return {
            "line": self.line,
            "rules": sorted(self.rules),
            "reason": self.reason,
            "standalone": self.standalone,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Waiver":
        return cls(
            line=raw["line"],
            rules=frozenset(raw["rules"]),
            reason=raw["reason"],
            standalone=raw["standalone"],
        )


def norm_path(path: "str | Path") -> str:
    """Posix-style path with a leading slash, for substring scope matching."""
    text = str(path).replace("\\", "/")
    return text if text.startswith("/") else "/" + text


class SourceFile:
    """A parsed module plus its waivers; the unit every rule operates on."""

    __slots__ = ("path", "display", "source", "tree", "waivers", "parse_error")

    def __init__(self, display: str, source: str) -> None:
        self.display = display
        self.path = norm_path(display)
        self.source = source
        self.parse_error: Optional[str] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=display)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        self.waivers: list[Waiver] = _scan_waivers(source)

    @classmethod
    def load(cls, path: "str | Path", display: Optional[str] = None) -> "SourceFile":
        text = Path(path).read_text(encoding="utf-8")
        return cls(display or str(path), text)

    def waiver_for(self, rule: str, line: int) -> Optional[Waiver]:
        for waiver in self.waivers:
            if waiver.target_line == line and waiver.covers(rule):
                return waiver
        return None


def _scan_waivers(source: str) -> list[Waiver]:
    """Extract waiver comments from the token stream (never from strings)."""
    waivers: list[Waiver] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _WAIVER_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            line = token.start[0]
            prefix = token.line[: token.start[1]]
            waivers.append(
                Waiver(
                    line=line,
                    rules=rules,
                    reason=match.group(2).strip(),
                    standalone=not prefix.strip(),
                )
            )
    except tokenize.TokenError:
        pass  # the AST parse reports the syntax error; waivers stay best-effort
    return waivers


class Rule:
    """Base class: one static check applied file by file.

    Subclasses set ``id``/``title``/``rationale`` and implement
    :meth:`check`.  ``scope_dirs``/``scope_files`` bound where the rule
    applies (substring / suffix match on the normalised path);
    ``exclude_files`` carves out sanctioned exceptions (e.g. the seeded RNG
    module is exempt from the determinism rule *by design*, not by waiver).
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: Advisory rules report (under ``--show-advisory``) but never gate.
    advisory: bool = False
    #: Path substrings, e.g. "/repro/ndn/". Empty = every file.
    scope_dirs: tuple[str, ...] = ()
    #: Path suffixes, e.g. "/repro/sim/engine.py". Checked after scope_dirs.
    scope_files: tuple[str, ...] = ()
    #: Path suffixes exempted even when in scope.
    exclude_files: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(path.endswith(suffix) for suffix in self.exclude_files):
            return False
        if not self.scope_dirs and not self.scope_files:
            return True
        if any(marker in path for marker in self.scope_dirs):
            return True
        return any(path.endswith(suffix) for suffix in self.scope_files)

    def check(self, module: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: "ast.AST | int", message: str) -> Finding:
        """A finding anchored at ``node``; the driver fills in the path."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        return Finding(rule=self.id, path="", line=line, col=col, message=message)


class ProjectRule(Rule):
    """A rule needing the whole scanned file set (cross-module tables)."""

    def check(self, module: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError


class SummaryRule(Rule):
    """A project rule that runs on module summaries and the call graph.

    Unlike :class:`ProjectRule`, a summary rule never needs an AST —
    warm-cache runs can drive it from deserialised summaries alone.
    ``records`` is the in-scope subset (profile + path filtering already
    applied); ``index`` is the whole-program
    :class:`~repro.analysis.lint.callgraph.ProjectIndex`.
    """

    def check(self, module: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_summaries(
        self, records: Sequence["ModuleRecord"], index
    ) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class ModuleRecord:
    """One module's cached-or-fresh lint state: the unit the driver holds.

    ``local_findings`` are the line-local rule results *before* waiver
    application (waivers are applied uniformly at report time, so cached
    and fresh records behave identically).  ``summary`` feeds the
    interprocedural layer; ``source`` is only retained for freshly parsed
    files, for legacy :class:`ProjectRule` instances that still need ASTs.
    """

    display: str
    path: str
    profile_name: str
    waivers: list[Waiver] = field(default_factory=list)
    parse_error: Optional[str] = None
    local_findings: list[Finding] = field(default_factory=list)
    summary: Optional[object] = None
    source: Optional[SourceFile] = None

    def waiver_for(self, rule: str, line: int) -> Optional[Waiver]:
        for waiver in self.waivers:
            if waiver.target_line == line and waiver.covers(rule):
                return waiver
        return None

    def as_dict(self) -> dict:
        return {
            "display": self.display,
            "path": self.path,
            "profile": self.profile_name,
            "waivers": [waiver.as_dict() for waiver in self.waivers],
            "parse_error": self.parse_error,
            "findings": [finding.as_dict() for finding in self.local_findings],
            "summary": self.summary.as_dict() if self.summary is not None else None,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ModuleRecord":
        from repro.analysis.lint.symbols import ModuleSummary

        summary = raw.get("summary")
        return cls(
            display=raw["display"],
            path=raw["path"],
            profile_name=raw["profile"],
            waivers=[Waiver.from_dict(w) for w in raw["waivers"]],
            parse_error=raw["parse_error"],
            local_findings=[Finding.from_dict(f) for f in raw["findings"]],
            summary=ModuleSummary.from_dict(summary) if summary is not None else None,
        )


@dataclass(frozen=True)
class Profile:
    """A named subset of the rule catalog."""

    name: str
    rule_ids: frozenset[str]

    def enables(self, rule: Rule) -> bool:
        return rule.id in self.rule_ids


_ALL_RULE_IDS = frozenset(
    {
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011", "RL012", "RL013", "RL014",
        "RL015", "RL016",
    }
)

PROFILES: dict[str, Profile] = {
    #: Full catalog: the forwarding plane and simulator live here, but the
    #: invariant rules self-scope, so strict is safe for the whole of src/.
    "strict": Profile("strict", _ALL_RULE_IDS),
    #: Hygiene plus resource safety: exception discipline, mutable
    #: defaults, and leaked handles (RL014 applies "everywhere" by
    #: contract — a benchmark that leaks a pipe is as broken as the plane).
    "relaxed": Profile("relaxed", frozenset({"RL004", "RL005", "RL014"})),
}

#: Ordered (path substring, profile name); first match wins, default strict.
DEFAULT_PROFILE_MAP: tuple[tuple[str, str], ...] = (
    ("/repro/cluster/", "relaxed"),
    ("/benchmarks/", "relaxed"),
    ("/tests/", "relaxed"),
    ("/examples/", "relaxed"),
)


def profile_for_path(
    path: str, profile_map: Sequence[tuple[str, str]] = DEFAULT_PROFILE_MAP
) -> str:
    normalised = norm_path(path)
    for marker, name in profile_map:
        if marker in normalised:
            return name
    return "strict"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    profiles_used: dict[str, int] = field(default_factory=dict)

    @property
    def unwaived(self) -> list[Finding]:
        """Gating findings: unwaived errors (advisories never gate)."""
        return [
            finding
            for finding in self.findings
            if not finding.waived and finding.severity == "error"
        ]

    @property
    def waived(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.waived]

    @property
    def advisories(self) -> list[Finding]:
        return [
            finding for finding in self.findings if finding.severity == "advisory"
        ]

    @property
    def ok(self) -> bool:
        return not self.unwaived

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def waived_by_rule(self) -> dict[str, int]:
        """Per-rule waiver counts: the audited surface of the waiver budget."""
        counts: dict[str, int] = {}
        for finding in self.waived:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


class Linter:
    """Drives the rule catalog over a file set and applies waivers.

    ``profile`` forces one profile for every file; the default resolves the
    profile per path via ``profile_map`` (see :data:`DEFAULT_PROFILE_MAP`).
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        profile: Optional[str] = None,
        profile_map: Sequence[tuple[str, str]] = DEFAULT_PROFILE_MAP,
    ) -> None:
        if rules is None:
            from repro.analysis.lint.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)
        if profile is not None and profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; have {sorted(PROFILES)}"
            )
        self.forced_profile = profile
        self.profile_map = tuple(profile_map)

    # ------------------------------------------------------------ file intake

    def collect_files(self, paths: Iterable["str | Path"]) -> list[Path]:
        """Expand files/directories into a sorted, de-duplicated .py list.

        The result is ordered by normalised posix path — independent of
        input order, directory/file mixing, and filesystem enumeration —
        so reports (and therefore ``--baseline`` diffs) are bit-stable
        across runs and hosts.
        """
        out: list[Path] = []
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for candidate in candidates:
                parts = candidate.parts
                if "__pycache__" in parts or any(
                    part.startswith(".") and part not in (".", "..") for part in parts
                ):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    out.append(candidate)
        out.sort(key=lambda p: norm_path(p))
        return out

    # ------------------------------------------------------------ records

    def config_signature(self) -> str:
        """Cache key component: everything but file content a record depends on."""
        from repro.analysis.lint.cache import config_signature

        return config_signature(
            [rule.id for rule in self.rules],
            LINT_VERSION,
            self.forced_profile,
            self.profile_map,
        )

    def _profile_name_for(self, path: str) -> str:
        return self.forced_profile or profile_for_path(path, self.profile_map)

    def _build_record(self, module: SourceFile) -> ModuleRecord:
        """Run the per-module phase: line-local rules + summary extraction."""
        from repro.analysis.lint.symbols import summarize

        profile_name = self._profile_name_for(module.path)
        record = ModuleRecord(
            display=module.display,
            path=module.path,
            profile_name=profile_name,
            waivers=list(module.waivers),
            parse_error=module.parse_error,
            source=module,
        )
        if module.parse_error is not None:
            return record
        profile = PROFILES[profile_name]
        for rule in self.rules:
            if isinstance(rule, (ProjectRule, SummaryRule)):
                continue
            if profile.enables(rule) and rule.applies_to(module.path):
                for found in rule.check(module):
                    if not found.path:
                        found.path = module.display
                    record.local_findings.append(found)
        record.summary = summarize(module)
        return record

    # ------------------------------------------------------------ linting

    def lint_paths(
        self, paths: Iterable["str | Path"], cache=None
    ) -> LintReport:
        """Lint files/directories, optionally through a
        :class:`~repro.analysis.lint.cache.SummaryCache`."""
        records: list[ModuleRecord] = []
        for path in self.collect_files(paths):
            display = str(path)
            try:
                text = Path(path).read_text(encoding="utf-8")
            except OSError as exc:
                records.append(
                    ModuleRecord(
                        display=display,
                        path=norm_path(display),
                        profile_name=self._profile_name_for(norm_path(display)),
                        parse_error=f"unreadable file: {exc}",
                    )
                )
                continue
            if cache is not None:
                digest = cache.digest(text)
                cached = cache.get(norm_path(display), digest)
                if cached is not None:
                    records.append(ModuleRecord.from_dict(cached))
                    continue
                record = self._build_record(SourceFile(display, text))
                cache.put(norm_path(display), digest, record.as_dict())
            else:
                record = self._build_record(SourceFile(display, text))
            records.append(record)
        if cache is not None:
            cache.save()
        return self._finalize(records)

    def lint_source(self, source: str, display: str = "<string>") -> LintReport:
        """Lint one in-memory snippet (the self-test entry point)."""
        return self.lint_modules([SourceFile(display, source)])

    def lint_modules(self, modules: Sequence[SourceFile]) -> LintReport:
        return self._finalize([self._build_record(module) for module in modules])

    def _finalize(self, records: Sequence[ModuleRecord]) -> LintReport:
        """The project phase: cross-module rules, waivers, ordering."""
        report = LintReport(files_checked=len(records))
        raw: list[Finding] = []
        profile_of: dict[str, Profile] = {}
        for record in records:
            profile_of[record.path] = PROFILES[record.profile_name]
            report.profiles_used[record.profile_name] = (
                report.profiles_used.get(record.profile_name, 0) + 1
            )
            if record.parse_error is not None:
                raw.append(
                    Finding(
                        rule=META_RULE_ID,
                        path=record.display,
                        line=1,
                        col=0,
                        message=record.parse_error,
                    )
                )
                continue
            raw.extend(record.local_findings)
        raw.extend(self._project_findings(records, profile_of))
        raw.extend(self._audit_waivers(records))
        sanctioned_used: set[tuple[str, int]] = set()
        raw.extend(self._sanctioned_findings(records, sanctioned_used))
        by_path = {record.path: record for record in records}
        deduped: dict[tuple[str, str, int], Finding] = {}
        for finding in raw:
            deduped.setdefault((finding.rule, finding.path, finding.line), finding)
        used_waivers: set[tuple[str, int]] = set(sanctioned_used)
        for finding in deduped.values():
            record = by_path.get(norm_path(finding.path))
            if (
                record is not None
                and finding.rule != META_RULE_ID
                and not finding.waived
            ):
                waiver = record.waiver_for(finding.rule, finding.line)
                if waiver is not None and waiver.reason:
                    finding.waived = True
                    finding.waiver_reason = waiver.reason
                    used_waivers.add((record.path, waiver.line))
            report.findings.append(finding)
        # A waiver that suppresses nothing is stale: the violation it covered
        # was fixed (or never existed), so the comment now only misleads.
        known = {rule.id for rule in self.rules}
        for record in records:
            if record.parse_error is not None:
                continue  # a broken parse finds nothing; don't pile on
            for waiver in record.waivers:
                if (record.path, waiver.line) in used_waivers:
                    continue
                if not waiver.reason or (waiver.rules - known - {"*"}):
                    continue  # already flagged by _audit_waivers
                report.findings.append(
                    Finding(
                        rule=META_RULE_ID,
                        path=record.display,
                        line=waiver.line,
                        col=0,
                        message="unused waiver: no finding for "
                        f"[{', '.join(sorted(waiver.rules))}] on its line; "
                        "remove the stale comment",
                    )
                )
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
        return report

    def _project_findings(
        self,
        records: Sequence[ModuleRecord],
        profile_of: dict[str, Profile],
    ) -> Iterator[Finding]:
        """Run legacy AST project rules and summary/call-graph rules."""
        summary_rules = [r for r in self.rules if isinstance(r, SummaryRule)]
        legacy_rules = [
            r
            for r in self.rules
            if isinstance(r, ProjectRule) and not isinstance(r, SummaryRule)
        ]
        if summary_rules:
            from repro.analysis.lint.callgraph import ProjectIndex

            index = ProjectIndex(
                record.summary for record in records if record.summary is not None
            )
            for rule in summary_rules:
                in_scope = [
                    record
                    for record in records
                    if record.summary is not None
                    and profile_of[record.path].enables(rule)
                    and rule.applies_to(record.path)
                ]
                if in_scope:
                    yield from rule.check_summaries(in_scope, index)
        for rule in legacy_rules:
            in_scope_sources = []
            for record in records:
                if record.parse_error is not None:
                    continue
                if not (
                    profile_of[record.path].enables(rule)
                    and rule.applies_to(record.path)
                ):
                    continue
                if record.source is None:  # cache hit: reload for the AST
                    try:
                        record.source = SourceFile.load(record.display)
                    except OSError:
                        continue
                in_scope_sources.append(record.source)
            if in_scope_sources:
                yield from rule.check_project(in_scope_sources)

    def _sanctioned_findings(
        self,
        records: Sequence[ModuleRecord],
        used: set[tuple[str, int]],
    ) -> Iterator[Finding]:
        """Surface sink-side transitive waivers as waived findings.

        A ``# lint: allow[RL009-011]`` on a sink line stops the effect
        from propagating at all (see :mod:`repro.analysis.lint.symbols`);
        emitting the suppression as a waived finding keeps it inside the
        audited waiver surface — it counts against the budget and the
        waiver registers as used.
        """
        for record in records:
            if record.summary is None:
                continue
            for entry in record.summary.sanctioned:
                used.add((record.path, entry["waiver_line"]))
                yield Finding(
                    rule=entry["rule"],
                    path=record.display,
                    line=entry["line"],
                    col=0,
                    message=(
                        f"sanctioned sink: {entry['desc']} never propagates "
                        "to callers (waived at source)"
                    ),
                    waived=True,
                    waiver_reason=entry["reason"],
                )

    def _audit_waivers(self, records: Sequence[ModuleRecord]) -> Iterator[Finding]:
        """Malformed waivers are findings: no reason, or an unknown rule id."""
        known = {rule.id for rule in self.rules}
        for record in records:
            for waiver in record.waivers:
                if not waiver.reason:
                    yield Finding(
                        rule=META_RULE_ID,
                        path=record.display,
                        line=waiver.line,
                        col=0,
                        message="waiver without a reason: state why the "
                        "violation is acceptable",
                    )
                unknown = waiver.rules - known - {"*"}
                if unknown:
                    yield Finding(
                        rule=META_RULE_ID,
                        path=record.display,
                        line=waiver.line,
                        col=0,
                        message=f"waiver names unknown rule(s): {sorted(unknown)}",
                    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
