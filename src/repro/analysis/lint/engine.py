"""reprolint core: files, waivers, rules, profiles and the driver.

The linter is deliberately self-contained (stdlib :mod:`ast` + :mod:`tokenize`
only) so it can run in CI and in the tier-1 test suite with zero extra
dependencies.  The moving parts:

* :class:`SourceFile` — one parsed module: source text, AST, and the waiver
  comments extracted from its token stream.
* :class:`Rule` / :class:`ProjectRule` — a check over one file, or over the
  whole scanned file set (cross-module symbol tables, e.g. the TLV type
  registry check).
* :class:`Profile` — a named rule subset; profiles are resolved per *path*
  (strict for the forwarding plane and the simulator, relaxed hygiene-only
  for cluster/benchmarks/tests) so one invocation can sweep a mixed tree.
* :class:`Linter` — drives rules over files, applies waivers, and returns a
  :class:`LintReport`.

Waiver syntax
-------------
A finding is suppressed by an in-source comment naming the rule **and** a
reason::

    deadline = time.monotonic() + timeout_s  # lint: allow[RL002] wall-clock IPC timeout

A waiver on its own line suppresses findings on the *next* line instead
(for statements too long to share a line with the comment).  Each waiver
suppresses exactly one line; ``allow[*]`` suppresses every rule on that
line.  A waiver without a reason, or naming an unknown rule, is itself a
finding (``RL000``) — waivers are part of the audited surface, not an
escape hatch.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "Waiver",
    "SourceFile",
    "Rule",
    "ProjectRule",
    "Profile",
    "LintReport",
    "Linter",
    "dotted_name",
    "norm_path",
    "profile_for_path",
    "PROFILES",
    "DEFAULT_PROFILE_MAP",
    "META_RULE_ID",
]

#: Rule id used for linter-level findings (syntax errors, malformed waivers).
#: Deliberately not waivable: a broken waiver must not hide behind itself.
META_RULE_ID = "RL000"


@dataclass(slots=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str = ""

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        return cls(
            rule=raw["rule"],
            path=raw["path"],
            line=raw["line"],
            col=raw["col"],
            message=raw["message"],
            waived=raw["waived"],
            waiver_reason=raw["waiver_reason"],
        )


_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]\s*(.*)$")


@dataclass(slots=True)
class Waiver:
    """One ``# lint: allow[rule] reason`` comment."""

    line: int
    rules: frozenset[str]
    reason: str
    #: True when the comment is alone on its line — it then covers line + 1.
    standalone: bool

    @property
    def target_line(self) -> int:
        return self.line + 1 if self.standalone else self.line

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def norm_path(path: "str | Path") -> str:
    """Posix-style path with a leading slash, for substring scope matching."""
    text = str(path).replace("\\", "/")
    return text if text.startswith("/") else "/" + text


class SourceFile:
    """A parsed module plus its waivers; the unit every rule operates on."""

    __slots__ = ("path", "display", "source", "tree", "waivers", "parse_error")

    def __init__(self, display: str, source: str) -> None:
        self.display = display
        self.path = norm_path(display)
        self.source = source
        self.parse_error: Optional[str] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=display)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        self.waivers: list[Waiver] = _scan_waivers(source)

    @classmethod
    def load(cls, path: "str | Path", display: Optional[str] = None) -> "SourceFile":
        text = Path(path).read_text(encoding="utf-8")
        return cls(display or str(path), text)

    def waiver_for(self, rule: str, line: int) -> Optional[Waiver]:
        for waiver in self.waivers:
            if waiver.target_line == line and waiver.covers(rule):
                return waiver
        return None


def _scan_waivers(source: str) -> list[Waiver]:
    """Extract waiver comments from the token stream (never from strings)."""
    waivers: list[Waiver] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _WAIVER_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            line = token.start[0]
            prefix = token.line[: token.start[1]]
            waivers.append(
                Waiver(
                    line=line,
                    rules=rules,
                    reason=match.group(2).strip(),
                    standalone=not prefix.strip(),
                )
            )
    except tokenize.TokenError:
        pass  # the AST parse reports the syntax error; waivers stay best-effort
    return waivers


class Rule:
    """Base class: one static check applied file by file.

    Subclasses set ``id``/``title``/``rationale`` and implement
    :meth:`check`.  ``scope_dirs``/``scope_files`` bound where the rule
    applies (substring / suffix match on the normalised path);
    ``exclude_files`` carves out sanctioned exceptions (e.g. the seeded RNG
    module is exempt from the determinism rule *by design*, not by waiver).
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: Path substrings, e.g. "/repro/ndn/". Empty = every file.
    scope_dirs: tuple[str, ...] = ()
    #: Path suffixes, e.g. "/repro/sim/engine.py". Checked after scope_dirs.
    scope_files: tuple[str, ...] = ()
    #: Path suffixes exempted even when in scope.
    exclude_files: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(path.endswith(suffix) for suffix in self.exclude_files):
            return False
        if not self.scope_dirs and not self.scope_files:
            return True
        if any(marker in path for marker in self.scope_dirs):
            return True
        return any(path.endswith(suffix) for suffix in self.scope_files)

    def check(self, module: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: "ast.AST | int", message: str) -> Finding:
        """A finding anchored at ``node``; the driver fills in the path."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        return Finding(rule=self.id, path="", line=line, col=col, message=message)


class ProjectRule(Rule):
    """A rule needing the whole scanned file set (cross-module tables)."""

    def check(self, module: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass(frozen=True)
class Profile:
    """A named subset of the rule catalog."""

    name: str
    rule_ids: frozenset[str]

    def enables(self, rule: Rule) -> bool:
        return rule.id in self.rule_ids


_ALL_RULE_IDS = frozenset(
    {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007", "RL008"}
)

PROFILES: dict[str, Profile] = {
    #: Full catalog: the forwarding plane and simulator live here, but the
    #: invariant rules self-scope, so strict is safe for the whole of src/.
    "strict": Profile("strict", _ALL_RULE_IDS),
    #: Hygiene only: exception discipline and mutable defaults.  Meant for
    #: cluster/benchmarks/tests, where wall clocks and ad-hoc exports are
    #: legitimate.
    "relaxed": Profile("relaxed", frozenset({"RL004", "RL005"})),
}

#: Ordered (path substring, profile name); first match wins, default strict.
DEFAULT_PROFILE_MAP: tuple[tuple[str, str], ...] = (
    ("/repro/cluster/", "relaxed"),
    ("/benchmarks/", "relaxed"),
    ("/tests/", "relaxed"),
    ("/examples/", "relaxed"),
)


def profile_for_path(
    path: str, profile_map: Sequence[tuple[str, str]] = DEFAULT_PROFILE_MAP
) -> str:
    normalised = norm_path(path)
    for marker, name in profile_map:
        if marker in normalised:
            return name
    return "strict"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    profiles_used: dict[str, int] = field(default_factory=dict)

    @property
    def unwaived(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.waived]

    @property
    def waived(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.waived]

    @property
    def ok(self) -> bool:
        return not self.unwaived

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


class Linter:
    """Drives the rule catalog over a file set and applies waivers.

    ``profile`` forces one profile for every file; the default resolves the
    profile per path via ``profile_map`` (see :data:`DEFAULT_PROFILE_MAP`).
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        profile: Optional[str] = None,
        profile_map: Sequence[tuple[str, str]] = DEFAULT_PROFILE_MAP,
    ) -> None:
        if rules is None:
            from repro.analysis.lint.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)
        if profile is not None and profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; have {sorted(PROFILES)}"
            )
        self.forced_profile = profile
        self.profile_map = tuple(profile_map)

    # ------------------------------------------------------------ file intake

    def collect_files(self, paths: Iterable["str | Path"]) -> list[Path]:
        """Expand files/directories into a sorted, de-duplicated .py list."""
        out: list[Path] = []
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for candidate in candidates:
                parts = candidate.parts
                if "__pycache__" in parts or any(
                    part.startswith(".") and part not in (".", "..") for part in parts
                ):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    out.append(candidate)
        return out

    # ------------------------------------------------------------ linting

    def lint_paths(self, paths: Iterable["str | Path"]) -> LintReport:
        modules = [SourceFile.load(path) for path in self.collect_files(paths)]
        return self.lint_modules(modules)

    def lint_source(self, source: str, display: str = "<string>") -> LintReport:
        """Lint one in-memory snippet (the self-test entry point)."""
        return self.lint_modules([SourceFile(display, source)])

    def lint_modules(self, modules: Sequence[SourceFile]) -> LintReport:
        report = LintReport(files_checked=len(modules))
        raw: list[Finding] = []
        profile_of: dict[str, Profile] = {}
        for module in modules:
            name = self.forced_profile or profile_for_path(
                module.path, self.profile_map
            )
            profile = PROFILES[name]
            profile_of[module.path] = profile
            report.profiles_used[name] = report.profiles_used.get(name, 0) + 1
            if module.parse_error is not None:
                raw.append(
                    Finding(
                        rule=META_RULE_ID,
                        path=module.display,
                        line=1,
                        col=0,
                        message=module.parse_error,
                    )
                )
                continue
            for rule in self.rules:
                if isinstance(rule, ProjectRule):
                    continue
                if profile.enables(rule) and rule.applies_to(module.path):
                    for found in rule.check(module):
                        if not found.path:
                            found.path = module.display
                        raw.append(found)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                in_scope = [
                    module
                    for module in modules
                    if module.tree is not None
                    and profile_of[module.path].enables(rule)
                    and rule.applies_to(module.path)
                ]
                if in_scope:
                    raw.extend(rule.check_project(in_scope))
        raw.extend(self._audit_waivers(modules))
        by_path = {module.path: module for module in modules}
        deduped: dict[tuple[str, str, int], Finding] = {}
        for finding in raw:
            deduped.setdefault((finding.rule, finding.path, finding.line), finding)
        used_waivers: set[int] = set()
        for finding in deduped.values():
            module = by_path.get(norm_path(finding.path))
            if module is not None and finding.rule != META_RULE_ID:
                waiver = module.waiver_for(finding.rule, finding.line)
                if waiver is not None and waiver.reason:
                    finding.waived = True
                    finding.waiver_reason = waiver.reason
                    used_waivers.add(id(waiver))
            report.findings.append(finding)
        # A waiver that suppresses nothing is stale: the violation it covered
        # was fixed (or never existed), so the comment now only misleads.
        known = {rule.id for rule in self.rules}
        for module in modules:
            if module.parse_error is not None:
                continue  # a broken parse finds nothing; don't pile on
            for waiver in module.waivers:
                if id(waiver) in used_waivers:
                    continue
                if not waiver.reason or (waiver.rules - known - {"*"}):
                    continue  # already flagged by _audit_waivers
                report.findings.append(
                    Finding(
                        rule=META_RULE_ID,
                        path=module.display,
                        line=waiver.line,
                        col=0,
                        message="unused waiver: no finding for "
                        f"[{', '.join(sorted(waiver.rules))}] on its line; "
                        "remove the stale comment",
                    )
                )
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

    def _audit_waivers(self, modules: Sequence[SourceFile]) -> Iterator[Finding]:
        """Malformed waivers are findings: no reason, or an unknown rule id."""
        known = {rule.id for rule in self.rules}
        for module in modules:
            for waiver in module.waivers:
                if not waiver.reason:
                    yield Finding(
                        rule=META_RULE_ID,
                        path=module.display,
                        line=waiver.line,
                        col=0,
                        message="waiver without a reason: state why the "
                        "violation is acceptable",
                    )
                unknown = waiver.rules - known - {"*"}
                if unknown:
                    yield Finding(
                        rule=META_RULE_ID,
                        path=module.display,
                        line=waiver.line,
                        col=0,
                        message=f"waiver names unknown rule(s): {sorted(unknown)}",
                    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
