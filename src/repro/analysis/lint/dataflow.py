"""Dataflow analyses over the lint CFG (:mod:`repro.analysis.lint.cfg`).

Three layers live here:

* a generic worklist :func:`solve` (forward or backward, caller-supplied
  transfer and join) plus classic :func:`reaching_definitions` built on it;
* :func:`analyze_function` — the per-function pass that extracts the flow
  facts the RL013–RL016 rules consume: buffer escape/mutation orderings,
  handle acquire→exit leak paths, hot-loop allocation sites, and the
  one-call-deep summary bits (``param_escapes`` / ``param_releases``,
  global reads/writes);
* :func:`analyze_module` — module-level facts (mutable globals, fork
  targets) that scope the per-function results.

Everything returned is plain JSON-serialisable data with deterministic
ordering, so results round-trip through :class:`ModuleSummary` and the
``SummaryCache`` byte-identically.

Precision notes (documented so rule behaviour is predictable):

* aliasing is name-level and flow-insensitive — ``y = x`` and
  ``y = memoryview(x)`` merge tracking groups; ``bytes(x)`` and
  ``bytearray(x)`` are copies and start (or stay outside) a new group;
* leak search (RL014) follows *normal* control flow only — edges into
  ``except`` handler heads are skipped, so a handle closed on the happy
  path does not flag merely because any statement may raise (that is
  what ``with`` is for, and RL014 treats ``with`` as trivially clean);
* calls that pass a tracked value to an unknown callee produce
  *conditional* events carrying the call site ``(line, col)``; the
  project phase (``flowrules.py``) matches those against the resolved
  call graph and callee summaries one call deep.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cfg import CFG, build_cfg

__all__ = [
    "solve",
    "reaching_definitions",
    "analyze_function",
    "analyze_module",
    "FunctionFlow",
]

# A function-flow summary is a plain dict; alias for readability in signatures.
FunctionFlow = Dict[str, object]

BUFFER_NAME_RE = re.compile(r"(?:^|_)(?:buf|buffer|wire|frame|payload|blob)(?:_|$|s$)")

MUTATING_BUFFER_METHODS = frozenset(
    {"extend", "append", "insert", "clear", "reverse", "remove", "pop", "sort"}
)
ESCAPE_METHODS = frozenset(
    {
        "append", "add", "put", "put_nowait", "send", "send_bytes", "setdefault",
        "update", "write", "store", "admit", "record", "register", "publish",
        "deliver", "enqueue", "push", "insert", "cache", "appendleft",
    }
)
RELEASE_METHODS = frozenset(
    {
        "close", "release", "terminate", "kill", "wait", "join", "communicate",
        "shutdown", "unlink", "detach", "__exit__",
    }
)
HANDLE_FACTORIES = {"open": "open", "Popen": "popen", "Pipe": "pipe"}
MUTABLE_BUILTIN_FACTORIES = frozenset(
    {
        "dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter",
        "OrderedDict",
    }
)


# ---------------------------------------------------------------------------
# Generic solver
# ---------------------------------------------------------------------------

def solve(
    cfg: CFG,
    init: Callable[[int], object],
    transfer: Callable[[int, object], object],
    join: Callable[[Iterable[object]], object],
    forward: bool = True,
) -> Dict[int, object]:
    """Iterate ``transfer`` over ``cfg`` to a fixpoint.

    ``init(block_id)`` seeds each block's *in* fact (forward) or *out*
    fact (backward); ``join`` merges predecessor-out (forward) or
    successor-in (backward) facts.  Returns the final per-block *out*
    facts (forward) / *in* facts (backward).  Facts must be comparable
    with ``==`` and the (join, transfer) pair monotone for termination.
    """
    out: Dict[int, object] = {bid: init(bid) for bid in cfg.blocks}
    work = sorted(cfg.blocks)
    pending = set(work)
    while work:
        bid = work.pop(0)
        pending.discard(bid)
        block = cfg.block(bid)
        sources = block.pred if forward else block.succ
        incoming = [out[s] for s in sorted(sources)]
        fact = join(incoming) if incoming else init(bid)
        new = transfer(bid, fact)
        if new != out[bid]:
            out[bid] = new
            targets = block.succ if forward else block.pred
            for nxt in sorted(targets):
                if nxt not in pending:
                    pending.add(nxt)
                    work.append(nxt)
    return out


def reaching_definitions(cfg: CFG) -> Dict[int, Set[Tuple[str, int]]]:
    """Classic reaching definitions: per block, the set of ``(name, line)``
    definitions live on entry exit.  Subscript/attribute stores do not
    kill (they mutate, not rebind)."""
    defs_in_block: Dict[int, List[Tuple[str, int]]] = {}
    for bid, block in cfg.blocks.items():
        found: List[Tuple[str, int]] = []
        for stmt in block.stmts:
            for name, line in _bindings_of(stmt):
                found.append((name, line))
        defs_in_block[bid] = found

    def transfer(bid: int, fact: object) -> object:
        live: Set[Tuple[str, int]] = set(fact)  # type: ignore[arg-type]
        for name, line in defs_in_block[bid]:
            live = {(n, l) for (n, l) in live if n != name}
            live.add((name, line))
        return frozenset(live)

    def join(facts: Iterable[object]) -> object:
        merged: Set[Tuple[str, int]] = set()
        for fact in facts:
            merged |= fact  # type: ignore[arg-type]
        return frozenset(merged)

    result = solve(cfg, lambda _bid: frozenset(), transfer, join, forward=True)
    return {bid: set(fact) for bid, fact in result.items()}  # type: ignore[arg-type]


def _bindings_of(stmt: ast.stmt) -> List[Tuple[str, int]]:
    found: List[Tuple[str, int]] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [i.optional_vars for i in stmt.items if i.optional_vars is not None]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                found.append((node.id, stmt.lineno))
    return found


# ---------------------------------------------------------------------------
# Name/alias helpers
# ---------------------------------------------------------------------------

def _ref_name(expr: ast.expr) -> Optional[str]:
    """A Name or dotted-attribute chain rendered as a string, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_callee(call: ast.Call) -> Optional[str]:
    return _ref_name(call.func)


class _Aliases:
    """Union-find over variable names (flow-insensitive alias groups)."""

    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def find(self, name: str) -> str:
        root = name
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(name, name) != root:
            self.parent[name], name = root, self.parent[name]
        return root

    def merge(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic root: the lexicographically smaller name wins.
            lo, hi = sorted((ra, rb))
            self.parent[hi] = lo


# ---------------------------------------------------------------------------
# Event extraction
# ---------------------------------------------------------------------------

class _Event:
    __slots__ = ("kind", "group", "line", "col", "desc", "callee", "arg")

    def __init__(self, kind: str, group: str, line: int, col: int = 0,
                 desc: str = "", callee: Optional[str] = None,
                 arg: object = None) -> None:
        self.kind = kind  # mutate | escape | release | callpass | return
        self.group = group
        self.line = line
        self.col = col
        self.desc = desc
        self.callee = callee
        self.arg = arg  # positional index or keyword name at a call site


class _Origin:
    __slots__ = ("group", "var", "kind", "line", "desc", "block", "index")

    def __init__(self, group: str, var: str, kind: str, line: int, desc: str,
                 block: int, index: int) -> None:
        self.group = group
        self.var = var
        self.kind = kind  # buffer | handle:<what> | param
        self.line = line
        self.desc = desc
        self.block = block  # block id of the acquisition (entry for params)
        self.index = index  # statement-event index within the block


def _is_copy_call(node: ast.expr) -> bool:
    """``bytes(x)`` / ``bytearray(x)`` — a copy, not an alias of ``x``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("bytes", "bytearray")
    )


def _tracked_args(
    call: ast.Call, is_tracked: Callable[[str], bool]
) -> List[Tuple[str, object]]:
    """Tracked names passed as args, with how they were passed.

    Returns ``(name, argref)`` pairs where ``argref`` is the positional
    index, a keyword name, or ``None`` when the value is nested inside a
    display/starred arg (position unknowable).  The argref lets the
    project phase map a call site onto the callee's parameter summary.
    """
    found: List[Tuple[str, object]] = []
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and is_tracked(arg.id):
            found.append((arg.id, position))
        elif isinstance(arg, (ast.List, ast.Tuple, ast.Set)):
            for elt in arg.elts:
                if isinstance(elt, ast.Name) and is_tracked(elt.id):
                    found.append((elt.id, None))
        elif isinstance(arg, ast.Starred) and isinstance(arg.value, ast.Name):
            if is_tracked(arg.value.id):
                found.append((arg.value.id, None))
    for kw in call.keywords:
        if isinstance(kw.value, ast.Name) and is_tracked(kw.value.id):
            found.append((kw.value.id, kw.arg))
    return found


class _FunctionAnalyzer:
    def __init__(self, func: ast.AST, candidate_globals: Sequence[str]) -> None:
        self.func = func
        self.cfg = build_cfg(func)
        self.aliases = _Aliases()
        self.origins: List[_Origin] = []
        self.origin_groups: Set[str] = set()
        self.events: Dict[int, List[_Event]] = {bid: [] for bid in self.cfg.blocks}
        self.candidate_globals = set(candidate_globals)
        self.local_bindings: Set[str] = set()
        self.global_decls: Set[str] = set()
        self.param_names: List[str] = []
        self.global_reads: Dict[str, int] = {}
        self.global_writes: Dict[str, int] = {}

    # -- setup ---------------------------------------------------------

    def _collect_scope(self) -> None:
        args = getattr(self.func, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                self.param_names.append(arg.arg)
                self.local_bindings.add(arg.arg)
        for node in ast.walk(self.func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                self.local_bindings.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node is not self.func:
                    self.local_bindings.add(node.name)
        self.local_bindings -= self.global_decls

    def _collect_aliases(self) -> None:
        for node in ast.walk(self.func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Name):
                self.aliases.merge(target.id, value.id)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "memoryview"
                and value.args
                and isinstance(value.args[0], ast.Name)
            ):
                self.aliases.merge(target.id, value.args[0].id)

    def _group(self, name: str) -> str:
        return self.aliases.find(name)

    def _is_tracked(self, name: str) -> bool:
        return self._group(name) in self.origin_groups

    def _origin_kind(self, group: str) -> Optional[str]:
        kinds = [o.kind for o in self.origins if o.group == group]
        return kinds[0] if kinds else None

    # -- origins -------------------------------------------------------

    def _add_origin(self, var: str, kind: str, line: int, desc: str,
                    block: int, index: int) -> None:
        group = self._group(var)
        self.origins.append(_Origin(group, var, kind, line, desc, block, index))
        self.origin_groups.add(group)

    def _seed_params(self) -> None:
        entry = self.cfg.entry.id
        line = getattr(self.func, "lineno", 0)
        for name in self.param_names:
            if name in ("self", "cls"):
                continue
            if BUFFER_NAME_RE.search(name):
                self._add_origin(name, "buffer", line, f"parameter {name!r}", entry, -1)
            else:
                self._add_origin(name, "param", line, f"parameter {name!r}", entry, -1)

    # -- per-statement event walk --------------------------------------

    def _scan(self) -> None:
        for bid in sorted(self.cfg.blocks):
            block = self.cfg.block(bid)
            for stmt in block.stmts:
                self._scan_stmt(stmt, bid)

    def _scan_stmt(self, stmt: ast.stmt, bid: int) -> None:
        events = self.events[bid]
        in_with_items: Set[int] = set()
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                for node in ast.walk(item.context_expr):
                    in_with_items.add(id(node))

        if isinstance(stmt, ast.Assign):
            self._scan_assign(stmt, bid)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_store_target(stmt.target, stmt, bid, aug=True)
        elif isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Name):
            name = stmt.value.id
            if self._is_tracked(name):
                events.append(_Event("return", self._group(name), stmt.lineno,
                                     desc=f"returned as {name!r}"))

        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._scan_call(node, bid, skip_origin=id(node) in in_with_items)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if (node.id in self.candidate_globals
                        and node.id not in self.local_bindings):
                    line = getattr(node, "lineno", stmt.lineno)
                    if node.id not in self.global_reads:
                        self.global_reads[node.id] = line
                    else:
                        self.global_reads[node.id] = min(
                            self.global_reads[node.id], line
                        )

        for name in self.global_decls:
            if name in self.candidate_globals:
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Name) and sub.id == name
                            and isinstance(sub.ctx, ast.Store)):
                        line = getattr(sub, "lineno", stmt.lineno)
                        if name not in self.global_writes:
                            self.global_writes[name] = line
                        else:
                            self.global_writes[name] = min(
                                self.global_writes[name], line
                            )

    def _scan_assign(self, stmt: ast.Assign, bid: int) -> None:
        events = self.events[bid]
        value = stmt.value
        # Origin creation from the value side.
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
            if isinstance(value, ast.Call):
                callee = _call_callee(value)
                tail = callee.rsplit(".", 1)[-1] if callee else None
                if tail == "bytearray":
                    self._add_origin(target, "buffer", stmt.lineno,
                                     f"{target} = bytearray(...)", bid, len(events))
                elif tail in HANDLE_FACTORIES and tail != "Pipe":
                    kind = HANDLE_FACTORIES[tail]
                    self._add_origin(target, f"handle:{kind}", stmt.lineno,
                                     f"{target} = {callee}(...)", bid, len(events))
        elif (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Tuple)
            and isinstance(value, ast.Call)
        ):
            callee = _call_callee(value)
            if callee and callee.rsplit(".", 1)[-1] == "Pipe":
                for elt in stmt.targets[0].elts:
                    if isinstance(elt, ast.Name):
                        self._add_origin(elt.id, "handle:pipe", stmt.lineno,
                                         f"{elt.id} from {callee}(...)", bid, len(events))
        for target in stmt.targets:
            self._scan_store_target(target, stmt, bid, aug=False)

    def _scan_store_target(self, target: ast.expr, stmt: ast.stmt, bid: int,
                           aug: bool) -> None:
        events = self.events[bid]
        value = getattr(stmt, "value", None)
        # Mutation of a tracked buffer: buf[i] = / buf[i:j] = / buf += ...
        if isinstance(target, ast.Subscript):
            base = _ref_name(target.value)
            if base and "." not in base and self._is_tracked(base):
                group = self._group(base)
                if self._origin_kind(group) == "buffer" or any(
                    o.kind == "buffer" for o in self.origins if o.group == group
                ):
                    events.append(_Event("mutate", group, stmt.lineno,
                                         desc=f"{base}[...] store"))
            # Escape: container[key] = tracked
            if isinstance(value, ast.Name) and self._is_tracked(value.id):
                events.append(_Event("escape", self._group(value.id), stmt.lineno,
                                     desc=f"stored into {base or 'container'}[...]"))
        elif isinstance(target, ast.Attribute):
            # Escape/store: self.x = tracked (or obj.x = tracked)
            if isinstance(value, ast.Name) and self._is_tracked(value.id):
                dest = _ref_name(target) or "attribute"
                events.append(_Event("escape", self._group(value.id), stmt.lineno,
                                     desc=f"stored on {dest}"))
                events.append(_Event("release", self._group(value.id), stmt.lineno,
                                     desc=f"ownership moved to {dest}"))
        elif isinstance(target, ast.Name) and aug:
            if self._is_tracked(target.id):
                group = self._group(target.id)
                if any(o.kind == "buffer" for o in self.origins if o.group == group):
                    events.append(_Event("mutate", group, stmt.lineno,
                                         desc=f"{target.id} augmented in place"))

    def _scan_call(self, call: ast.Call, bid: int, skip_origin: bool) -> None:
        events = self.events[bid]
        line, col = call.lineno, call.col_offset
        callee = _call_callee(call)
        tail = callee.rsplit(".", 1)[-1] if callee else None

        # lock.acquire() outside a with-item creates an obligation on the
        # receiver; with-items never do (the with frame releases).
        if (tail == "acquire" and not skip_origin
                and isinstance(call.func, ast.Attribute)):
            receiver = _ref_name(call.func.value)
            if receiver:
                self._add_origin(receiver, "handle:lock", line,
                                 f"{receiver}.acquire()", bid, len(events))
                return

        # Release / mutation via a method on a tracked receiver.
        if isinstance(call.func, ast.Attribute):
            receiver = _ref_name(call.func.value)
            if receiver:
                base = receiver.split(".", 1)[0]
                tracked_receiver = None
                if "." in receiver and self._group(receiver) in self.origin_groups:
                    tracked_receiver = receiver
                elif self._is_tracked(base) and "." not in receiver:
                    tracked_receiver = base
                if tracked_receiver is not None:
                    group = self._group(tracked_receiver)
                    if tail in RELEASE_METHODS:
                        events.append(_Event("release", group, line,
                                             desc=f"{receiver}.{tail}()"))
                        return
                    if tail in MUTATING_BUFFER_METHODS and any(
                        o.kind == "buffer" for o in self.origins if o.group == group
                    ):
                        events.append(_Event("mutate", group, line,
                                             desc=f"{receiver}.{tail}(...)"))

        # Tracked values flowing out through call arguments.
        for name, argref in _tracked_args(call, self._is_tracked):
            group = self._group(name)
            if tail in ESCAPE_METHODS and isinstance(call.func, ast.Attribute):
                dest = _ref_name(call.func.value) or "container"
                events.append(_Event("escape", group, line,
                                     desc=f"{name!r} passed to {dest}.{tail}(...)"))
                events.append(_Event("release", group, line,
                                     desc=f"ownership moved via {dest}.{tail}(...)"))
            elif callee is not None:
                events.append(_Event("callpass", group, line, col,
                                     desc=f"{name!r} passed to {callee}(...)",
                                     callee=callee, arg=argref))

    # -- path queries --------------------------------------------------

    def _reach(self) -> Dict[int, Set[int]]:
        """Transitive successors per block (function CFGs are small)."""
        reach: Dict[int, Set[int]] = {}
        for bid in self.cfg.blocks:
            seen: Set[int] = set()
            stack = list(self.cfg.block(bid).succ)
            while stack:
                nxt = stack.pop()
                if nxt in seen:
                    continue
                seen.add(nxt)
                stack.extend(self.cfg.block(nxt).succ)
            reach[bid] = seen
        return reach

    def _events_for(self, group: str, kind: str) -> List[Tuple[int, int, _Event]]:
        found: List[Tuple[int, int, _Event]] = []
        for bid in sorted(self.events):
            for idx, event in enumerate(self.events[bid]):
                if event.group == group and event.kind == kind:
                    found.append((bid, idx, event))
        return found

    def _leak_path(self, origin: _Origin) -> Optional[List[_Event]]:
        """Min-conditional-call path origin → exit avoiding releases.

        Returns the callpass events on the cheapest leaking path, or None
        if every normal path releases/returns/stores the handle.  Edges
        into exception handlers are not followed (see module docstring).
        """
        group = origin.group
        release_kinds = ("release", "return")
        block_release_at: Dict[int, List[int]] = {}
        block_callpasses: Dict[int, List[Tuple[int, _Event]]] = {}
        for bid, events in self.events.items():
            for idx, event in enumerate(events):
                if event.group != group:
                    continue
                if event.kind in release_kinds:
                    block_release_at.setdefault(bid, []).append(idx)
                elif event.kind == "callpass":
                    block_callpasses.setdefault(bid, []).append((idx, event))

        def normal_succ(bid: int) -> List[int]:
            return sorted(
                s for s in self.cfg.block(bid).succ
                if self.cfg.block(s).label != "except"
            )

        exit_id = self.cfg.exit.id
        # Start: the acquisition block, considering only events after the
        # acquisition index.
        # origin.index is the event-slot at the time of acquisition, so any
        # event recorded at that slot or later happened after the acquire.
        start = origin.block
        start_releases = [i for i in block_release_at.get(start, []) if i >= origin.index]
        start_passes = [
            (i, e) for i, e in block_callpasses.get(start, []) if i >= origin.index
        ]
        if start_releases:
            # The straight-line remainder of the acquisition block releases
            # before control can leave it: no leak on normal paths.
            return None
        # Dijkstra with cost = number of conditional call sites crossed.
        best: Dict[int, Tuple[int, List[_Event]]] = {
            start: (len(start_passes), [e for _i, e in start_passes])
        }
        frontier = [start]
        while frontier:
            frontier.sort(key=lambda b: best[b][0])
            bid = frontier.pop(0)
            cost, passes = best[bid]
            if bid == exit_id:
                return passes
            for nxt in normal_succ(bid):
                if nxt == start:
                    continue
                if block_release_at.get(nxt):
                    # Entering this block releases before any further exit.
                    first_release = min(block_release_at[nxt])
                    extra = [
                        e for i, e in block_callpasses.get(nxt, [])
                        if i < first_release
                    ]
                    _ = extra  # path is absorbed; not a leak continuation
                    continue
                extra = [e for _i, e in block_callpasses.get(nxt, [])]
                new_cost = cost + len(extra)
                if nxt not in best or new_cost < best[nxt][0]:
                    best[nxt] = (new_cost, passes + extra)
                    if nxt not in frontier:
                        frontier.append(nxt)
        return None

    # -- result assembly -----------------------------------------------

    def _escape_mutations(self, reach: Dict[int, Set[int]]) -> List[Dict[str, object]]:
        found: List[Dict[str, object]] = []
        seen_keys: Set[Tuple[str, str, int, int]] = set()
        buffer_groups = sorted(
            {o.group for o in self.origins if o.kind == "buffer"}
        )
        for group in buffer_groups:
            origin = min(
                (o for o in self.origins if o.group == group and o.kind == "buffer"),
                key=lambda o: o.line,
            )
            mutations = self._events_for(group, "mutate")
            if not mutations:
                continue
            escapes = [
                (bid, idx, event, "definite")
                for bid, idx, event in self._events_for(group, "escape")
            ] + [
                (bid, idx, event, "call")
                for bid, idx, event in self._events_for(group, "callpass")
            ]
            for ebid, eidx, eev, ekind in escapes:
                for mbid, midx, mev in mutations:
                    ordered = (
                        mbid in reach.get(ebid, set())
                        or (mbid == ebid and midx > eidx)
                    )
                    if not ordered:
                        continue
                    key = (group, ekind, eev.line, mev.line)
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    found.append({
                        "var": origin.var,
                        "def_line": origin.line,
                        "def_desc": origin.desc,
                        "escape": {
                            "line": eev.line,
                            "col": eev.col,
                            "desc": eev.desc,
                            "kind": ekind,
                            "callee": eev.callee,
                            "arg": eev.arg,
                        },
                        "mutation": {"line": mev.line, "desc": mev.desc},
                    })
                    break  # one mutation witness per escape site is enough
        found.sort(key=lambda c: (c["def_line"], c["escape"]["line"]))  # type: ignore[index]
        return found

    def _leaks(self) -> List[Dict[str, object]]:
        found: List[Dict[str, object]] = []
        seen_groups: Set[str] = set()
        for origin in sorted(
            (o for o in self.origins if o.kind.startswith("handle:")),
            key=lambda o: (o.line, o.var),
        ):
            if origin.group in seen_groups:
                continue
            seen_groups.add(origin.group)
            passes = self._leak_path(origin)
            if passes is None:
                continue
            found.append({
                "var": origin.var,
                "kind": origin.kind.split(":", 1)[1],
                "line": origin.line,
                "desc": origin.desc,
                "sites": [
                    {"line": e.line, "col": e.col, "callee": e.callee,
                     "arg": e.arg}
                    for e in passes
                ],
            })
        return found

    def _allocs(self) -> List[Dict[str, object]]:
        sites: List[Dict[str, object]] = []

        def visit(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_depth = depth
                desc: Optional[str] = None
                if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                    child_depth = depth + 1
                elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp)):
                    kind = {"ListComp": "list", "SetComp": "set",
                            "DictComp": "dict"}[type(child).__name__]
                    if depth >= 1:
                        desc = f"{kind} comprehension"
                    child_depth = depth + 1
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                        ast.ClassDef, ast.Lambda)):
                    continue  # nested scopes analysed separately
                elif depth >= 1:
                    if isinstance(child, ast.List):
                        desc = "list display"
                    elif isinstance(child, ast.Dict):
                        desc = "dict display"
                    elif isinstance(child, ast.Set):
                        desc = "set display"
                    elif isinstance(child, ast.JoinedStr):
                        desc = "f-string"
                    elif isinstance(child, ast.Call):
                        callee = _call_callee(child)
                        tail = callee.rsplit(".", 1)[-1] if callee else None
                        if tail and (
                            tail[:1].isupper() or tail in MUTABLE_BUILTIN_FACTORIES
                        ):
                            desc = f"{callee}(...)"
                if desc is not None:
                    sites.append({
                        "line": child.lineno,
                        "col": child.col_offset,
                        "desc": desc,
                        "depth": child_depth if isinstance(
                            child, (ast.ListComp, ast.SetComp, ast.DictComp)
                        ) else depth,
                    })
                visit(child, child_depth)

        visit(self.func, 0)
        # Inside an f-string every FormattedValue walk would double count;
        # the JoinedStr site already covers it (walk continues harmlessly —
        # nested displays inside f-strings are rare and still real allocs).
        sites.sort(key=lambda s: (s["line"], s["col"]))  # type: ignore[index]
        return sites

    def _param_summaries(self) -> Tuple[List[str], List[str]]:
        escapes: Set[str] = set()
        releases: Set[str] = set()
        entry = self.cfg.entry.id
        param_origins = [
            o for o in self.origins
            if o.block == entry and o.index == -1 and o.var in self.param_names
        ]
        for origin in param_origins:
            for _bid, _idx, event in self._events_for(origin.group, "escape"):
                _ = event
                escapes.add(origin.var)
            for _bid, _idx, event in self._events_for(origin.group, "release"):
                _ = event
                releases.add(origin.var)
        return sorted(escapes), sorted(releases)

    def run(self) -> FunctionFlow:
        self._collect_scope()
        self._collect_aliases()
        self._seed_params()
        self._scan()
        reach = self._reach()
        param_escapes, param_releases = self._param_summaries()
        flow: FunctionFlow = {}
        escape_mutations = self._escape_mutations(reach)
        if escape_mutations:
            flow["escape_mutations"] = escape_mutations
        leaks = self._leaks()
        if leaks:
            flow["leaks"] = leaks
        allocs = self._allocs()
        if allocs:
            flow["allocs"] = allocs
        if param_escapes or param_releases:
            flow["params"] = list(self.param_names)
        if param_escapes:
            flow["param_escapes"] = param_escapes
        if param_releases:
            flow["param_releases"] = param_releases
        if self.global_reads:
            flow["reads"] = {n: self.global_reads[n] for n in sorted(self.global_reads)}
        writes = dict(self.global_writes)
        for name, line in self._mutation_writes().items():
            writes[name] = min(writes.get(name, line), line)
        if writes:
            flow["writes"] = {n: writes[n] for n in sorted(writes)}
        return flow

    def _mutation_writes(self) -> Dict[str, int]:
        """Candidate globals mutated in place (``G[k] = …``, ``G.append``…)."""
        writes: Dict[str, int] = {}
        for node in ast.walk(self.func):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, (ast.Subscript, ast.Attribute)):
                        target = t
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, (ast.Subscript, ast.Attribute)
            ):
                target = node.target
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in (
                    "append", "add", "update", "setdefault", "extend", "insert",
                    "pop", "clear", "remove", "discard", "appendleft",
                ):
                    target = node.func
            if target is None:
                continue
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.candidate_globals
                and base.id not in self.local_bindings
            ):
                line = getattr(node, "lineno", 1)
                writes[base.id] = min(writes.get(base.id, line), line)
        return writes


def analyze_function(func: ast.AST, candidate_globals: Sequence[str] = ()) -> FunctionFlow:
    """Run the per-function dataflow pass; returns a JSON-ready flow dict.

    Empty keys are omitted, so a boring function yields ``{}`` and costs
    nothing in the summary cache.
    """
    return _FunctionAnalyzer(func, candidate_globals).run()


# ---------------------------------------------------------------------------
# Module-level facts
# ---------------------------------------------------------------------------

def analyze_module(tree: ast.Module) -> Tuple[List[str], List[str]]:
    """Return ``(mutable_globals, fork_targets)`` for a module AST.

    ``mutable_globals`` — module-level names bound to mutable containers
    (displays or mutable factory calls).  ``fork_targets`` — local names
    referenced as ``target=`` in ``*.Process(...)`` calls anywhere in the
    module: the worker-side entrypoints for RL015 reachability.
    """
    mutable: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        is_mutable = isinstance(value, (ast.List, ast.Dict, ast.Set))
        if isinstance(value, ast.Call):
            callee = _call_callee(value)
            tail = callee.rsplit(".", 1)[-1] if callee else None
            if tail in MUTABLE_BUILTIN_FACTORIES:
                is_mutable = True
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable.add(target.id)

    fork_targets: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _call_callee(node)
        tail = callee.rsplit(".", 1)[-1] if callee else None
        if tail != "Process":
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                ref = _ref_name(kw.value)
                if ref:
                    fork_targets.add(ref.rsplit(".", 1)[-1])
    return sorted(mutable), sorted(fork_targets)
