"""reprolint reporters: human text and machine JSON.

The JSON document is the CI artifact format; its schema is versioned and
round-tripped by the self-test suite:

.. code-block:: json

    {
      "schema": "reprolint-report/1",
      "profiles": {"strict": 40, "relaxed": 12},
      "summary": {"files": 52, "findings": 9, "waived": 9,
                  "unwaived": 0, "ok": true, "by_rule": {"RL002": 2}},
      "findings": [{"rule": "RL002", "path": "...", "line": 10, "col": 4,
                    "message": "...", "waived": true,
                    "waiver_reason": "..."}]
    }
"""

from __future__ import annotations

import json

from repro.analysis.lint.engine import Finding, LintReport

__all__ = ["render_text", "render_json", "parse_json", "JSON_SCHEMA_ID"]

JSON_SCHEMA_ID = "reprolint-report/1"


def render_text(report: LintReport, show_waived: bool = False) -> str:
    """One ``path:line:col RLxxx message`` row per finding, plus a summary."""
    lines: list[str] = []
    for finding in report.findings:
        if finding.waived and not show_waived:
            continue
        suffix = f" (waived: {finding.waiver_reason})" if finding.waived else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1} "
            f"{finding.rule} {finding.message}{suffix}"
        )
    unwaived = len(report.unwaived)
    waived = len(report.waived)
    lines.append(
        f"reprolint: {report.files_checked} files, "
        f"{unwaived} finding{'s' if unwaived != 1 else ''}"
        f" ({waived} waived)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The versioned machine-readable report (the CI artifact)."""
    document = {
        "schema": JSON_SCHEMA_ID,
        "profiles": dict(sorted(report.profiles_used.items())),
        "summary": {
            "files": report.files_checked,
            "findings": len(report.findings),
            "waived": len(report.waived),
            "unwaived": len(report.unwaived),
            "ok": report.ok,
            "by_rule": report.by_rule(),
        },
        "findings": [finding.as_dict() for finding in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def parse_json(text: str) -> LintReport:
    """Rebuild a :class:`LintReport` from :func:`render_json` output."""
    document = json.loads(text)
    schema = document.get("schema")
    if schema != JSON_SCHEMA_ID:
        raise ValueError(f"unsupported report schema {schema!r}")
    report = LintReport(
        findings=[Finding.from_dict(raw) for raw in document["findings"]],
        files_checked=document["summary"]["files"],
        profiles_used=dict(document.get("profiles", {})),
    )
    return report
