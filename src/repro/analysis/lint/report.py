"""reprolint reporters: human text, machine JSON, and baseline diffing.

The JSON document is the CI artifact format; its schema is versioned and
round-tripped by the self-test suite:

.. code-block:: json

    {
      "schema": "reprolint-report/2",
      "profiles": {"strict": 40, "relaxed": 12},
      "summary": {"files": 52, "findings": 9, "waived": 9,
                  "unwaived": 0, "advisory": 1, "ok": true,
                  "by_rule": {"RL002": 2}, "waived_by_rule": {"RL004": 3}},
      "findings": [{"rule": "RL002", "path": "...", "line": 10, "col": 4,
                    "message": "...", "severity": "error", "waived": true,
                    "waiver_reason": "...",
                    "chain": [{"function": "...", "path": "...", "line": 1}]}]
    }

Schema ``/2`` adds per-finding ``severity`` (``error`` | ``advisory``),
the optional witness ``chain`` on interprocedural findings, and the
``advisory`` / ``waived_by_rule`` summary keys.  ``/1`` documents (from
a pre-upgrade baseline) still parse: the new fields default.

:func:`diff_reports` is the PR-gate primitive: given the current report
and a baseline (typically main), it splits unwaived error findings into
*new* and *pre-existing* by matching on ``(rule, path, message)`` as a
multiset — line numbers are deliberately excluded so unrelated edits
that shift a finding a few lines do not resurrect it as "new".
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.lint.engine import Finding, LintReport

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "parse_json",
    "diff_reports",
    "JSON_SCHEMA_ID",
    "SARIF_SCHEMA_URI",
]

JSON_SCHEMA_ID = "reprolint-report/2"

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Schemas :func:`parse_json` accepts (older baselines must keep parsing).
_ACCEPTED_SCHEMAS = ("reprolint-report/1", JSON_SCHEMA_ID)


def render_text(
    report: LintReport,
    show_waived: bool = False,
    show_advisory: bool = False,
) -> str:
    """One ``path:line:col RLxxx message`` row per finding, plus a summary."""
    lines: list[str] = []
    for finding in report.findings:
        if finding.waived and not show_waived:
            continue
        if finding.severity == "advisory" and not show_advisory:
            continue
        suffix = f" (waived: {finding.waiver_reason})" if finding.waived else ""
        if finding.severity == "advisory":
            suffix += " [advisory]"
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1} "
            f"{finding.rule} {finding.message}{suffix}"
        )
    unwaived = len(report.unwaived)
    waived = len(report.waived)
    advisories = len(report.advisories)
    summary = (
        f"reprolint: {report.files_checked} files, "
        f"{unwaived} finding{'s' if unwaived != 1 else ''}"
        f" ({waived} waived)"
    )
    if advisories:
        summary += f", {advisories} advisory"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The versioned machine-readable report (the CI artifact)."""
    document = {
        "schema": JSON_SCHEMA_ID,
        "profiles": dict(sorted(report.profiles_used.items())),
        "summary": {
            "files": report.files_checked,
            "findings": len(report.findings),
            "waived": len(report.waived),
            "unwaived": len(report.unwaived),
            "advisory": len(report.advisories),
            "ok": report.ok,
            "by_rule": report.by_rule(),
            "waived_by_rule": report.waived_by_rule(),
        },
        "findings": [finding.as_dict() for finding in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def _sarif_location(path: str, line: int, col: int = 0,
                    message: "str | None" = None) -> dict:
    location = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/").lstrip("/")},
            "region": {"startLine": max(line, 1), "startColumn": col + 1},
        }
    }
    if message is not None:
        location["message"] = {"text": message}
    return location


def render_sarif(report: LintReport, rules=None) -> str:
    """SARIF 2.1.0 — the GitHub code-scanning upload format.

    Rule metadata comes from ``rules`` (default: the full catalog), so
    every catalog rule appears in ``tool.driver.rules`` even when it
    found nothing.  Witness chains map to ``codeFlows``/``threadFlows``
    — the structure code-scanning renders as a step-through path — and
    waived findings carry an ``inSource`` suppression, so they annotate
    without alerting.
    """
    from repro.analysis.lint.engine import LINT_VERSION

    if rules is None:
        from repro.analysis.lint.rules import default_rules

        rules = default_rules()
    rule_index = {rule.id: position for position, rule in enumerate(rules)}
    descriptors = [
        {
            "id": rule.id,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": "note" if rule.advisory else "error"
            },
            "properties": {"advisory": rule.advisory},
        }
        for rule in rules
    ]
    results = []
    for finding in report.findings:
        result = {
            "ruleId": finding.rule,
            "level": "note" if finding.severity == "advisory" else "error",
            "message": {"text": finding.message},
            "locations": [
                _sarif_location(finding.path, finding.line, finding.col)
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        if finding.waived:
            result["suppressions"] = [
                {"kind": "inSource", "justification": finding.waiver_reason}
            ]
        if finding.chain:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": _sarif_location(
                                        hop.get("path") or finding.path,
                                        hop.get("line") or 1,
                                        message=hop.get("function", ""),
                                    )
                                }
                                for hop in finding.chain
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": LINT_VERSION,
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def parse_json(text: str) -> LintReport:
    """Rebuild a :class:`LintReport` from :func:`render_json` output."""
    document = json.loads(text)
    schema = document.get("schema")
    if schema not in _ACCEPTED_SCHEMAS:
        raise ValueError(f"unsupported report schema {schema!r}")
    report = LintReport(
        findings=[Finding.from_dict(raw) for raw in document["findings"]],
        files_checked=document["summary"]["files"],
        profiles_used=dict(document.get("profiles", {})),
    )
    return report


def _diff_key(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule, finding.path, finding.message)


def diff_reports(
    current: LintReport, baseline: LintReport
) -> tuple[list[Finding], list[Finding]]:
    """Split current unwaived error findings into (new, pre-existing).

    Matching is a multiset over ``(rule, path, message)``: each baseline
    occurrence absorbs at most one current occurrence, so a second copy
    of a known violation still counts as new.
    """
    budget = Counter(_diff_key(f) for f in baseline.unwaived)
    new: list[Finding] = []
    preexisting: list[Finding] = []
    for finding in current.unwaived:
        key = _diff_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            preexisting.append(finding)
        else:
            new.append(finding)
    return new, preexisting
